"""The shard router: one server face over N shard processes.

:class:`RouterService` is a drop-in replacement for
:class:`~repro.server.service.QueryService` — same ``open(kind, params,
ctx)`` contract, so the ordinary :class:`~repro.server.app
.SpatialQueryServer` machinery (sessions, paging, deadlines, admission
control, metrics) serves cluster queries unchanged.  Instead of running
the engine, ``open`` **scatters**: it starts one sub-session per shard
(each shard is an ordinary single-node server reached through a
:class:`~repro.server.client.QueryClient`) and returns a stream that
**gathers** the shard rows:

* ``window`` — every shard filters locally with ``primary_only`` (a row
  streams only from the shard owning its primary tile), so concatenating
  the shard streams is exact with no router-side dedup.
* ``spatial_join`` — every shard runs its owned-tiles slice of the
  global grid join; the canonical-tile rule makes the concatenation an
  exact partition of the single-node result (zero duplicates, exact
  multiplicity).
* ``knn`` — shards return their local top-k *with exact distances*; the
  router k-way merges the sorted streams and dedups halo replicas by id.
* ``sql`` — broadcast (DDL/admin); rowcounts sum, rows come from the
  leader shard only.

**Partial failure** is typed: a dead shard raises ``SHARD_FAILED`` to
the client mid-stream, unless the session opted in with
``partial: true`` — then the stream skips the shard and reports it in
the close summary's ``failed_shards``.  Per-shard deadlines ride the
normal ``deadline_ms`` session mechanism on each sub-session.

Writes go through the router-only ``put`` op: each row is placed on its
primary shard and halo-replicated (see
:mod:`repro.cluster.partition`), and — when the leader is replicated —
the router waits for the follower to ack the commit LSN before
acknowledging the client (semi-synchronous replication, the contract
the kill-the-leader failover test holds it to).

``RouterService.lock`` is ``None`` deliberately: the single-node service
serialises engine work behind one lock, but the router's whole point is
that shards work concurrently — each shard connection has its own lock
instead, and router sessions interleave freely on the fetch pool.
"""

from __future__ import annotations

import heapq
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import ReproError, RetriableError, ServerError
from repro.geometry.wkt import from_wkt
from repro.obs import trace
from repro.server import protocol
from repro.server.app import SpatialQueryServer
from repro.server.client import QueryClient, RemoteError
from repro.server.metrics import aggregate_snapshots
from repro.server.service import BadRequest
from repro.cluster.partition import ClusterError, GridPartitioner

__all__ = ["ShardFailed", "ShardHandle", "RouterService", "RouterServer"]

#: sub-session page size the gather streams fetch with
GATHER_PAGE = 1024


class ShardFailed(ServerError):
    """A shard died (or answered with an error) mid-scatter."""

    wire_code = protocol.ERR_SHARD_FAILED

    def __init__(self, shard: int, cause: str):
        super().__init__(f"shard {shard} failed: {cause}")
        self.shard = shard
        self.cause = cause


class ShardHandle:
    """One shard connection plus the lock that serialises requests on it.

    Router sessions run on a thread pool; the JSON-lines client is one
    socket with strictly ordered request/response, so every wire call
    goes through :meth:`request`'s lock.  :meth:`replace` swaps in a new
    client after failover without disturbing concurrent callers.
    """

    def __init__(self, shard: int, client: QueryClient):
        self.shard = shard
        self.client = client
        self.lock = threading.Lock()

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        with self.lock:
            return self.client.request(op, **fields)

    def start(
        self,
        kind: str,
        params: Dict[str, Any],
        deadline_ms: Optional[int] = None,
    ) -> Dict[str, Any]:
        fields: Dict[str, Any] = {"kind": kind, "params": params}
        if deadline_ms is not None:
            fields["deadline_ms"] = deadline_ms
        return self.request("start", **fields)

    def fetch(self, session_id: str, n: int) -> Tuple[List[Any], bool]:
        response = self.request("fetch", session=session_id, n=n)
        return response["rows"], bool(response["eof"])

    def close_session(self, session_id: str) -> None:
        try:
            self.request("close", session=session_id)
        except (ReproError, OSError):
            pass  # a dead shard has no sessions left to leak

    def replace(self, client: QueryClient) -> None:
        with self.lock:
            try:
                self.client.close()
            except OSError:
                pass
            self.client = client


class _SubSession:
    """Router-side record of one started shard sub-session."""

    __slots__ = ("handle", "session_id", "extra")

    def __init__(self, handle: ShardHandle, session_id: str, extra: Dict[str, Any]):
        self.handle = handle
        self.session_id = session_id
        self.extra = extra


class _GatherStream:
    """Iterator over scattered sub-sessions with failure bookkeeping.

    Exposes the ``info`` dict :meth:`ServerSession.close_info` ships in
    the close summary (per-shard row counts, shards skipped under
    partial-results mode).  ``rows_fn`` decides the gather order —
    concatenation for window/join/sql, k-way merge for knn.
    """

    def __init__(self, service: "RouterService", subs, rows_fn):
        self._service = service
        self._subs: List[_SubSession] = subs
        self.info: Dict[str, Any] = {
            "shards": len(service.handles),
            "rows_per_shard": {},
            "failed_shards": [],
        }
        self._gen = rows_fn(self)
        self._closed = False

    def __iter__(self):
        return self

    def __next__(self):
        return next(self._gen)

    # -- helpers the gather generators use -----------------------------
    def drain(self, sub: _SubSession, page: int = GATHER_PAGE):
        """Yield one sub-session's rows, paging until eof."""
        count = 0
        eof = False
        try:
            while not eof:
                rows, eof = sub.handle.fetch(sub.session_id, page)
                count += len(rows)
                for row in rows:
                    yield row
        finally:
            self.info["rows_per_shard"][str(sub.handle.shard)] = count
            if eof:
                sub.handle.close_session(sub.session_id)

    def shard_failed(self, sub: _SubSession, exc: BaseException) -> None:
        """Record a failure; re-raise typed unless partial mode allows it."""
        self._service.note_failure(sub.handle)
        self.info["failed_shards"].append(
            {"shard": sub.handle.shard, "error": str(exc)}
        )
        if not self._service.allow_partial:
            raise ShardFailed(sub.handle.shard, str(exc)) from exc

    def close(self) -> None:
        """Close surviving sub-sessions; stitch shard spans if tracing."""
        if self._closed:
            return
        self._closed = True
        self._gen.close()
        for sub in self._subs:
            sub.handle.close_session(sub.session_id)
        self._service.stitch_traces()


class RouterService:
    """Scatter-gather session factory over the shard fleet."""

    #: no global engine lock — concurrency across shards is the point
    lock = None

    def __init__(
        self,
        handles: List[ShardHandle],
        partitioner: GridPartitioner,
        leader: int = 0,
        follower=None,
        replicated: bool = False,
        allow_partial: bool = False,
        shard_deadline_ms: Optional[int] = None,
        commit_timeout: float = 5.0,
        id_column: str = "id",
    ):
        if not handles:
            raise ClusterError("a router needs at least one shard")
        if partitioner.nshards != len(handles):
            raise ClusterError(
                f"partitioner built for {partitioner.nshards} shard(s) but "
                f"{len(handles)} handle(s) given"
            )
        self.handles = handles
        self.partitioner = partitioner
        self.leader = leader
        self.follower = follower
        self.replicated = replicated
        self.allow_partial = allow_partial
        self.shard_deadline_ms = shard_deadline_ms
        self.commit_timeout = commit_timeout
        self.id_column = id_column
        self.failures: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # QueryService contract
    # ------------------------------------------------------------------
    def open(self, kind: str, params: Dict[str, Any], ctx) -> Tuple[Any, Dict[str, Any]]:
        opener = getattr(self, f"_open_{kind}", None)
        if opener is None:
            raise BadRequest(f"unknown query kind {kind!r}")
        with trace.span("router.scatter", ctx, kind=kind, shards=len(self.handles)):
            return opener(dict(params), ctx)

    def _scatter(
        self,
        kind: str,
        shard_params,
        deadline_ms: Optional[int],
        handles: Optional[List[ShardHandle]] = None,
    ) -> Tuple[List[_SubSession], List[Tuple[ShardHandle, BaseException]]]:
        """Start one sub-session per shard; collect per-shard failures.

        ``handles`` restricts the fan-out (window pruning); the default
        is every shard.
        """
        deadline_ms = deadline_ms if deadline_ms is not None else self.shard_deadline_ms
        subs: List[_SubSession] = []
        failed: List[Tuple[ShardHandle, BaseException]] = []
        for handle in self.handles if handles is None else handles:
            try:
                response = handle.start(kind, shard_params(handle.shard), deadline_ms)
            except (RemoteError, RetriableError, OSError) as exc:
                failed.append((handle, exc))
                continue
            extra = {
                k: v
                for k, v in response.items()
                if k not in ("id", "ok", "session")
            }
            subs.append(_SubSession(handle, response["session"], extra))
        return subs, failed

    def _gather(self, kind, shard_params, params, rows_fn, handles=None):
        """Scatter, then wrap the surviving sub-sessions in a stream."""
        deadline_ms = params.get("shard_deadline_ms")
        subs, failed = self._scatter(kind, shard_params, deadline_ms, handles)
        allow_partial = bool(params.get("partial", self.allow_partial))
        stream = _GatherStream(self, subs, rows_fn)
        for handle, exc in failed:
            self.note_failure(handle)
            stream.info["failed_shards"].append(
                {"shard": handle.shard, "error": str(exc)}
            )
            if not allow_partial:
                stream.close()
                raise ShardFailed(handle.shard, str(exc)) from exc
        return stream

    # -- kinds ----------------------------------------------------------
    def _open_window(self, params, ctx):
        part = self.partitioner
        # Scatter pruning: the shard-side window_owner rule guarantees a
        # row's emitter owns a tile overlapping the search region, so
        # shards whose tiles miss the (distance-expanded) window would
        # stream nothing — skip them entirely.
        handles = self.handles
        wkt = params.get("wkt")
        if wkt is not None:
            try:
                window = from_wkt(str(wkt)).mbr
            except Exception:
                window = None  # shard-side validation raises the typed error
            if window is not None:
                expand = 0.0
                operator = str(params.get("operator", "SDO_RELATE")).upper()
                if operator == "SDO_WITHIN_DISTANCE":
                    expand = float(params.get("distance", 0.0))
                targets = part.shards_for_mbr(window, expand=expand)
                handles = [h for h in self.handles if h.shard in targets]

        def shard_params(shard: int) -> Dict[str, Any]:
            p = dict(params)
            p.pop("partial", None)
            p.pop("shard_deadline_ms", None)
            p.update(
                cluster=part.for_shard(shard).to_wire(),
                primary_only=True,
                emit_ids=True,
                id_column=params.get("id_column", self.id_column),
            )
            return p

        def rows(stream: _GatherStream):
            for sub in stream._subs:
                try:
                    yield from stream.drain(sub)
                except (RemoteError, RetriableError, OSError) as exc:
                    stream.shard_failed(sub, exc)

        return self._gather("window", shard_params, params, rows, handles), {}

    def _open_spatial_join(self, params, ctx):
        part = self.partitioner
        distance = float(params.get("distance", 0.0))
        if distance > part.halo:
            raise BadRequest(
                f"within-distance {distance} exceeds the cluster halo "
                f"{part.halo}; reload with a wider halo"
            )

        def shard_params(shard: int) -> Dict[str, Any]:
            p = dict(params)
            p.pop("partial", None)
            p.pop("shard_deadline_ms", None)
            p.update(
                cluster=part.for_shard(shard).to_wire(),
                id_column=params.get("id_column", self.id_column),
            )
            return p

        def rows(stream: _GatherStream):
            for sub in stream._subs:
                try:
                    yield from stream.drain(sub)
                except (RemoteError, RetriableError, OSError) as exc:
                    stream.shard_failed(sub, exc)

        extra = {"strategy": "GRID", "shards": len(self.handles)}
        return self._gather("spatial_join", shard_params, params, rows), extra

    def _open_knn(self, params, ctx):
        k = int(params.get("k", 1))

        def shard_params(shard: int) -> Dict[str, Any]:
            p = dict(params)
            p.pop("partial", None)
            p.pop("shard_deadline_ms", None)
            p.update(
                with_distance=True,
                id_column=params.get("id_column", self.id_column),
            )
            return p

        def rows(stream: _GatherStream):
            # Streaming k-way merge: each shard stream arrives sorted by
            # (distance, id); halo replicas of one row carry identical
            # keys on every shard, so an id-set dedup suffices.
            iterators = []
            for sub in stream._subs:
                try:
                    iterators.append(list(stream.drain(sub)))
                except (RemoteError, RetriableError, OSError) as exc:
                    stream.shard_failed(sub, exc)
            merged = heapq.merge(*iterators, key=lambda r: (r[1], r[0]))
            seen = set()
            emitted = 0
            for row in merged:
                if emitted >= k:
                    break
                rid = row[0]
                if rid in seen:
                    continue
                seen.add(rid)
                emitted += 1
                yield row

        return self._gather("knn", shard_params, params, rows), {"k": k}

    def _open_sql(self, params, ctx):
        def shard_params(shard: int) -> Dict[str, Any]:
            p = dict(params)
            p.pop("partial", None)
            p.pop("shard_deadline_ms", None)
            return p

        def rows(stream: _GatherStream):
            rowcount = 0
            for sub in stream._subs:
                try:
                    drained = list(stream.drain(sub))
                except (RemoteError, RetriableError, OSError) as exc:
                    stream.shard_failed(sub, exc)
                    continue
                rowcount += int(sub.extra.get("rowcount", 0))
                if sub.handle.shard == self.leader:
                    yield from drained
            stream.info["rowcount"] = rowcount

        stream = self._gather("sql", shard_params, params, rows)
        extra: Dict[str, Any] = {"broadcast": len(stream._subs)}
        if stream._subs:
            extra["columns"] = stream._subs[0].extra.get("columns", [])
            extra["message"] = stream._subs[0].extra.get("message")
        return stream, extra

    # ------------------------------------------------------------------
    # Writes (router-only op)
    # ------------------------------------------------------------------
    def put(self, table: str, rows: Iterable[Any]) -> Dict[str, Any]:
        """Place ``[id, wkt]`` rows: primary + halo replicas, semi-sync.

        Batches one INSERT list per target shard, commits the leader's
        batch durably, and — when replicated — blocks until the follower
        has acked the commit LSN.  Acknowledged rows therefore survive a
        leader kill -9 by construction.
        """
        part = self.partitioner
        statements: Dict[int, List[str]] = {}
        placed = 0
        replicas = 0
        for row in rows:
            try:
                row_id, wkt = row
            except (TypeError, ValueError):
                raise BadRequest("put rows must be [id, wkt] pairs") from None
            try:
                geom = from_wkt(wkt)
            except ReproError as exc:
                raise BadRequest(f"bad geometry for id {row_id!r}: {exc}") from None
            targets = part.shards_for_mbr(geom.mbr)
            statement = (
                f"insert into {table} values "
                f"({_sql_literal(row_id)}, sdo_geometry('{wkt}'))"
            )
            for shard in sorted(targets):
                statements.setdefault(shard, []).append(statement)
            placed += 1
            replicas += len(targets) - 1
        lsn: Optional[int] = None
        for shard in sorted(statements):
            handle = self.handles[shard]
            commit = self.replicated and shard == self.leader
            try:
                response = handle.start(
                    "sql", {"statements": statements[shard], "commit": commit}
                )
                if commit:
                    lsn = response.get("lsn")
                handle.close_session(response["session"])
            except (RemoteError, RetriableError, OSError) as exc:
                self.note_failure(handle)
                raise ShardFailed(shard, str(exc)) from exc
        if lsn is not None and self.follower is not None:
            self.follower.wait_for(lsn, timeout=self.commit_timeout)
        return {
            "placed": placed,
            "replicas": replicas,
            "shards": sorted(statements),
            "lsn": lsn,
        }

    # ------------------------------------------------------------------
    # Topology / failover
    # ------------------------------------------------------------------
    def topology(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "shards": len(self.handles),
            "leader": self.leader,
            "replicated": self.replicated,
            "partitioner": self.partitioner.to_wire(),
            "failures": dict(self.failures),
        }
        if self.follower is not None:
            out["follower"] = self.follower.status()
        return out

    def note_failure(self, handle: ShardHandle) -> None:
        self.failures[handle.shard] = self.failures.get(handle.shard, 0) + 1

    def shard_stats(self, raw: bool = True) -> List[Dict[str, Any]]:
        """Per-shard stats snapshots (dead shards are skipped)."""
        snaps = []
        for handle in self.handles:
            try:
                snaps.append(handle.request("stats", raw=raw)["stats"])
            except (ReproError, OSError):
                self.note_failure(handle)
        return snaps

    def stitch_traces(self) -> None:
        """Adopt shards' finished spans into the router's tracer."""
        tracer = trace.get_tracer()
        if tracer is None:
            return
        for handle in self.handles:
            try:
                spans = handle.request("trace.drain")["spans"]
            except (ReproError, OSError):
                continue
            if spans:
                tracer.adopt(spans, shard=handle.shard)


class RouterServer(SpatialQueryServer):
    """A :class:`SpatialQueryServer` whose service is a router.

    ``db`` is ``None`` — the router holds no engine, only shard clients —
    and the extra-ops table gains the router verbs (``put``,
    ``topology``).  Stats and metrics aggregate the shard fleet: latency
    histograms merge bucket-exact through ``latency_raw``, counters sum,
    and per-shard storage/meter sections stay visible under ``shards``.
    """

    def __init__(self, db=None, *args: Any, router: RouterService, **kwargs: Any):
        super().__init__(db, *args, service=router, **kwargs)

    @property
    def router(self) -> RouterService:
        return self.service

    def _register_extra_ops(self) -> None:
        super()._register_extra_ops()
        self._extra_ops["put"] = self._op_put
        self._extra_ops["topology"] = self._op_topology

    async def _op_put(self, request_id, message) -> Dict[str, Any]:
        table = message.get("table")
        rows = message.get("rows")
        if not table or not isinstance(rows, list):
            raise BadRequest("put needs a table name and a rows list")
        started = time.perf_counter()
        result = await self._run_blocking(self.router.put, table, rows)
        self.metrics.record_query(
            "put", time.perf_counter() - started, len(rows)
        )
        return protocol.ok_response(request_id, **result)

    async def _op_topology(self, request_id, message) -> Dict[str, Any]:
        return protocol.ok_response(
            request_id, **await self._run_blocking(self.router.topology)
        )

    def _stats_payload(self, raw: bool = False) -> Dict[str, Any]:
        snaps = self.router.shard_stats(raw=True)
        snaps.append(
            dict(self.metrics.snapshot(len(self._sessions), raw=True),
                 shard_id="router")
        )
        aggregate = aggregate_snapshots(snaps)
        aggregate["topology"] = self.router.topology()
        return aggregate


def _sql_literal(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"
