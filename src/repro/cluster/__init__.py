"""Sharded multi-node query service.

The cluster layer scales the single-node server of :mod:`repro.server`
out to N shard processes behind one **router**:

* :mod:`repro.cluster.partition` — placement.  A single *global*
  :class:`~repro.core.grid_partition.GridSpec` tiles the data domain;
  each shard owns a contiguous block of tile ids, every row lives on the
  shard owning its MBR's low-corner (primary) tile and is *halo
  replicated* to any other shard whose owned tiles its MBR — expanded by
  the configured halo distance — overlaps.  A hash partitioner covers
  non-spatial keys.
* :mod:`repro.cluster.router` — scatter-gather.  One router session fans
  a query out as per-shard sub-sessions (window / knn / sql /
  spatial_join), streams the gathered rows back through the ordinary
  paged wire protocol, applies per-shard deadlines, and surfaces shard
  loss as typed errors or (opt-in) partial results.
* :mod:`repro.cluster.replication` — availability.  A follower tails the
  leader shard's page-image WAL over the wire, acknowledges by LSN, and
  can be promoted to a serving replacement when the leader dies.
* :mod:`repro.cluster.local` — process harness: fork shard servers,
  load/DDL broadcast, kill-the-leader chaos, failover.

Correctness of distributed joins leans on the same two-layer
canonical-tile rule the parallel grid join uses (every result pair is
emitted in exactly one tile, and every tile has exactly one owner), so
shard outputs partition the single-node result with **zero** cross-shard
duplicates and no dedup pass.
"""

from repro.cluster.local import LocalCluster, ShardProcess
from repro.cluster.partition import ClusterError, GridPartitioner, HashPartitioner
from repro.cluster.replication import ReplicationError, WalFollower
from repro.cluster.router import RouterServer, RouterService, ShardFailed

__all__ = [
    "ClusterError",
    "GridPartitioner",
    "HashPartitioner",
    "LocalCluster",
    "ReplicationError",
    "RouterServer",
    "RouterService",
    "ShardFailed",
    "ShardProcess",
    "WalFollower",
]
