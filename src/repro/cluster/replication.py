"""Replicated WAL: a follower that tails the leader shard's log.

The leader's :class:`~repro.storage.wal.WalPager` already journals every
page image; the server exposes that journal over the wire (``wal.tail``
/ ``wal.snapshot`` / ``wal.ack`` in :mod:`repro.server.app`).  The
follower here turns those ops into a warm standby:

1. **Bootstrap** — page the leader's checkpointed main file over
   (``wal.snapshot``) into a local replica file, remembering the
   ``base_lsn`` the snapshot corresponds to.
2. **Tail** — repeatedly ``wal.tail(after_lsn=applied)``; every batch the
   leader ships ends at a commit boundary, so applying it through the
   replica's *own* :class:`WalPager` and checkpointing on the commit
   record keeps the replica file a crash-consistent image of the
   leader's last acknowledged commit.
3. **Ack** — after each applied commit the follower reports its LSN
   (``wal.ack``); the router's semi-synchronous ``put`` waits on
   :meth:`WalFollower.wait_for` before acknowledging its client, which
   is what makes leader failover lose zero acknowledged writes.
4. **Promote** — on leader death, :meth:`promote` seals the replica and
   hands back a path :meth:`~repro.engine.database.Database.open` can
   serve from (the replicated meta chain makes it a complete database).

Replay is idempotent: records at or below ``applied_lsn`` are skipped,
so re-shipping a segment (leader retransmit, follower restart between
apply and ack) is a no-op.  ``applied_lsn`` survives follower restarts
in a ``.replstate`` sidecar written atomically beside the replica.
"""

from __future__ import annotations

import base64
import json
import os
import threading
import time
from typing import Any, Dict, Optional

from repro.errors import ServerError
from repro.server.protocol import ERR_REPLICATION
from repro.storage.pager import FilePager
from repro.storage.wal import REC_ALLOC, REC_COMMIT, REC_PAGE, WalPager

__all__ = ["ReplicationError", "WalFollower"]


class ReplicationError(ServerError):
    """Replication lag, divergence, or a failed follower operation."""

    wire_code = ERR_REPLICATION


class WalFollower:
    """A warm standby for one WAL-backed leader shard.

    ``client`` is a dedicated :class:`~repro.server.client.QueryClient`
    to the leader (replication traffic must not share a connection with
    query traffic — a slow snapshot page would head-of-line block
    fetches).  All state transitions run under one lock; the optional
    background thread just calls :meth:`poll` on an interval.
    """

    def __init__(
        self,
        client,
        replica_path: str,
        poll_interval: float = 0.02,
        reconnect_backoff: float = 0.05,
        reconnect_cap: float = 2.0,
        max_reconnects: Optional[int] = None,
    ):
        self.client = client
        self.replica_path = str(replica_path)
        self.poll_interval = poll_interval
        self.reconnect_backoff = reconnect_backoff
        self.reconnect_cap = reconnect_cap
        #: consecutive transient failures tolerated before giving up;
        #: ``None`` keeps retrying until stopped/promoted — a follower's
        #: whole job is to outwait leader blips
        self.max_reconnects = max_reconnects
        self.applied_lsn = 0
        self.commits_applied = 0
        self.records_applied = 0
        self.reconnects = 0
        self.last_error: Optional[BaseException] = None
        self.error: Optional[BaseException] = None
        # Replication-lag gauges, maintained on the tail/ack path: the
        # leader's last issued LSN (shipped in every wal.tail response),
        # and the monotonic instant we last confirmed being caught up.
        # lag_seconds therefore keeps GROWING while the leader is
        # unreachable — exactly the signal a lag SLO must see during an
        # outage, when no fresh ``last_lsn`` can be fetched.
        self.leader_last_lsn = 0
        self._caught_up_at = time.monotonic()
        self._state_path = self.replica_path + ".replstate"
        self._pager: Optional[WalPager] = None
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._open()

    # ------------------------------------------------------------------
    # Bootstrap / attach
    # ------------------------------------------------------------------
    def _open(self) -> None:
        if os.path.exists(self._state_path) and os.path.exists(self.replica_path):
            with open(self._state_path, "r", encoding="utf-8") as fh:
                self.applied_lsn = int(json.load(fh)["applied_lsn"])
        else:
            self.applied_lsn = self._bootstrap()
            self._save_state()
        inner = FilePager(self.replica_path, strict=False)
        self._pager = WalPager(inner, self.replica_path + ".wal")

    def _bootstrap(self) -> int:
        """Copy the leader's checkpointed pages; returns their base LSN."""
        inner = FilePager(self.replica_path)
        try:
            start = 0
            base_lsn = 0
            while True:
                response = self.client.request(
                    "wal.snapshot", start_page=start, max_pages=64
                )
                base_lsn = int(response["base_lsn"])
                for page_id, encoded in response["pages"]:
                    data = base64.b64decode(encoded)
                    while inner.num_pages <= page_id:
                        inner.allocate()
                    inner.write(page_id, data)
                start += len(response["pages"])
                if response["eof"]:
                    break
            inner.flush()
        finally:
            inner.close()
        return base_lsn

    def _save_state(self) -> None:
        tmp = self._state_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump({"applied_lsn": self.applied_lsn}, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._state_path)

    # ------------------------------------------------------------------
    # Tailing
    # ------------------------------------------------------------------
    def poll(self) -> int:
        """One tail round trip: fetch, apply, checkpoint, ack.

        Returns the number of records applied.  Raises
        :class:`ReplicationError` if the leader's log no longer reaches
        back to our position (checkpoint truncation while we were down) —
        the caller must re-bootstrap from a fresh snapshot.
        """
        with self._lock:
            response = self.client.request(
                "wal.tail", after_lsn=self.applied_lsn, max_records=128
            )
            if response.get("reset"):
                raise ReplicationError(
                    f"leader WAL no longer contains LSN {self.applied_lsn + 1}"
                    " (truncated by a checkpoint); re-bootstrap the follower"
                )
            applied = self._apply(response["records"])
            self.leader_last_lsn = max(
                self.leader_last_lsn,
                int(response.get("last_lsn", self.applied_lsn)),
            )
            if applied:
                self.client.request(
                    "wal.ack", lsn=self.applied_lsn, lag_lsn=self.lag_lsn
                )
            if self.lag_lsn == 0:
                self._caught_up_at = time.monotonic()
            return applied

    def _apply(self, records) -> int:
        """Apply one shipped batch (always ends at a commit boundary)."""
        pager = self._pager
        assert pager is not None
        applied = 0
        for lsn, rtype, page_id, encoded in records:
            if lsn <= self.applied_lsn:
                continue  # idempotency: replaying a shipped segment is a no-op
            if rtype == REC_ALLOC:
                while pager.num_pages <= page_id:
                    pager.allocate()
            elif rtype == REC_PAGE:
                while pager.num_pages <= page_id:
                    pager.allocate()
                pager.write(page_id, base64.b64decode(encoded))
            elif rtype == REC_COMMIT:
                # The replica commits+checkpoints at exactly the leader's
                # commit boundaries, so its main file is always a
                # crash-consistent image of some leader commit.
                pager.commit()
                pager.checkpoint()
                self.applied_lsn = lsn
                self.commits_applied += 1
                self._save_state()
            else:
                raise ReplicationError(f"unknown WAL record type {rtype}")
            applied += 1
            self.records_applied += 1
        return applied

    def wait_for(self, lsn: int, timeout: float = 5.0) -> None:
        """Block until ``applied_lsn`` reaches ``lsn`` (semi-sync commit).

        With the background thread running this just waits; without it,
        it drives :meth:`poll` itself so single-threaded tests need no
        thread.  Raises :class:`ReplicationError` on timeout — carrying
        the ``REPLICATION_LAG`` wire code, so a router surfaces the lag
        as a typed error instead of a silent durability downgrade.
        """
        deadline = time.monotonic() + timeout
        while self.applied_lsn < lsn:
            if self.error is not None:
                raise ReplicationError(
                    f"follower thread failed: {self.error!r}"
                ) from self.error
            if self._thread is None or not self._thread.is_alive():
                self.poll()
                continue
            if time.monotonic() > deadline:
                raise ReplicationError(
                    f"follower at LSN {self.applied_lsn} did not reach "
                    f"{lsn} within {timeout:.1f}s"
                )
            time.sleep(self.poll_interval / 4.0)

    # ------------------------------------------------------------------
    # Background tailing
    # ------------------------------------------------------------------
    def start(self) -> "WalFollower":
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-wal-follower", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        consecutive = 0
        while not self._stop.is_set():
            try:
                self.poll()
                consecutive = 0
            except ReplicationError as exc:
                # Divergence (the leader's log was truncated past our
                # position): retrying cannot help — a fresh bootstrap is
                # needed.  Remember the error and stop tailing.
                self.error = exc
                return
            except BaseException as exc:  # noqa: BLE001 - reported via error
                # A transient connection loss must NOT kill the tail
                # thread: the client reconnects lazily on the next
                # request, ``applied_lsn`` (durably mirrored in the
                # ``.replstate`` sidecar) marks where to resume, and
                # replay below that LSN is idempotent.  Back off with a
                # capped exponential delay and try again; a leader that
                # is down for good is ended by stop()/promote(), or by
                # ``max_reconnects`` when one was configured.
                consecutive += 1
                self.last_error = exc
                if (
                    self.max_reconnects is not None
                    and consecutive > self.max_reconnects
                ):
                    self.error = exc
                    return
                delay = min(
                    self.reconnect_backoff * (2.0 ** (consecutive - 1)),
                    self.reconnect_cap,
                )
                if self._stop.wait(delay):
                    return
                self.reconnects += 1
                continue
            self._stop.wait(self.poll_interval)

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # ------------------------------------------------------------------
    # Promotion
    # ------------------------------------------------------------------
    def promote(self) -> str:
        """Seal the replica and return its path, ready to serve.

        Stops tailing, makes a best-effort final drain (the leader is
        usually already dead — that is why we are promoting), seals the
        replica's own WAL at the last applied commit, and returns the
        replica path for ``Database.open(path, durability='wal')``.
        Every write the leader committed *and the follower acked* is in
        the promoted state; unacked tail records the leader never shipped
        are the (bounded) semi-sync exposure the router's commit wait
        exists to close.
        """
        self.stop()
        try:
            self.poll()
        except Exception:  # noqa: BLE001 - leader death is expected here
            pass
        with self._lock:
            pager = self._pager
            if pager is not None:
                pager.commit()
                pager.checkpoint()
                pager.close()
                self._pager = None
        try:
            self.client.close()
        except OSError:
            pass
        return self.replica_path

    def close(self) -> None:
        self.stop()
        with self._lock:
            if self._pager is not None:
                self._pager.close()
                self._pager = None
        try:
            self.client.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Lag gauges
    # ------------------------------------------------------------------
    @property
    def lag_lsn(self) -> int:
        """LSNs between the leader's last issued LSN and our applied LSN."""
        return max(0, self.leader_last_lsn - self.applied_lsn)

    @property
    def lag_seconds(self) -> float:
        """Seconds since the follower last confirmed it was caught up."""
        return max(0.0, time.monotonic() - self._caught_up_at)

    def status(self) -> Dict[str, Any]:
        return {
            "applied_lsn": self.applied_lsn,
            "leader_last_lsn": self.leader_last_lsn,
            "lag_lsn": self.lag_lsn,
            "lag_seconds": round(self.lag_seconds, 4),
            "commits_applied": self.commits_applied,
            "records_applied": self.records_applied,
            "reconnects": self.reconnects,
            "tailing": self._thread is not None and self._thread.is_alive(),
            "error": repr(self.error) if self.error is not None else None,
            "last_error": (
                repr(self.last_error) if self.last_error is not None else None
            ),
        }
