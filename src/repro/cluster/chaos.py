"""Network fault injection: a seeded chaos proxy between router and shards.

The PR 3 harness (:mod:`repro.storage.fault`) proves the *storage* layer
against torn writes and lying fsyncs; this module is its network-layer
sibling.  A :class:`ChaosProxy` is a real TCP relay that sits between a
shard connection's two ends and injects the failure modes a production
network exposes, at **named sites** — the same vocabulary style as
``FaultPlan.crash_sites`` (a site name plus a per-site countdown):

* **connection resets** — the Nth relayed chunk at a site hard-closes
  both sockets with ``SO_LINGER 0`` (a genuine RST, not a polite FIN);
* **fixed/jittered latency** — every chunk at a site is delayed by
  ``base + jitter * rng()`` seconds (the rng is seeded, so a failing run
  replays exactly);
* **black-hole partitions** — a partitioned site stops relaying: the
  connection stays "up" but delivers nothing, which is how a mid-path
  partition actually looks (clients discover it only via timeouts);
* **slow-drip reads** — chunks are forwarded a few bytes at a time with a
  pause between pieces, the tail-latency pathology hedged reads exist
  for.

Everything is scripted by a :class:`NetFaultPlan`, deterministic under a
seed (CI's ``CHAOS_SEED`` matrix drives :meth:`NetFaultPlan.random`).
Site names are ``"<proxy>.up"`` (client→server) and ``"<proxy>.down"``
(server→client); the wildcard forms ``"*.up"`` / ``"*.down"`` / ``"*"``
match every proxy, so one plan line can slow a whole fleet.

Unlike storage faults, *resets* are one-shot (a transient network blip —
the cluster must absorb it and move on) while *latency*, *drip* and
*partitions* persist until :meth:`NetFaultPlan.heal` — a partition does
not fix itself, and the self-healing tests call ``heal()`` to model the
network coming back.
"""

from __future__ import annotations

import random
import socket
import struct
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import FaultError

__all__ = ["NetworkFault", "NetFaultPlan", "ChaosProxy", "ChaosFleet"]

#: relay read size — one chunk is the unit faults are counted in
CHUNK = 65536

#: how long a partitioned pump sleeps between "is the partition healed?"
#: checks; small enough that heal() is visible within one client retry
_PARTITION_POLL = 0.02


class NetworkFault(FaultError):
    """A misconfigured or misused network fault plan."""


class _Directive:
    """What the plan wants done with one relayed chunk."""

    __slots__ = ("delay", "drip", "reset")

    def __init__(
        self,
        delay: float = 0.0,
        drip: Optional[Tuple[int, float]] = None,
        reset: bool = False,
    ):
        self.delay = delay
        self.drip = drip
        self.reset = reset


class NetFaultPlan:
    """A deterministic script of network faults, shared by a proxy fleet.

    Parameters
    ----------
    seed:
        Seeds the jitter rng and is echoed in every event so a failing
        chaos run reproduces from the seed alone.
    reset:
        ``{site: chunk_index}`` — the ``chunk_index``-th relayed chunk at
        that site hard-closes the connection (RST).  One-shot per site:
        a reset is a transient blip, and the point of the resilience
        layer is that one blip never fails a query.
    latency:
        ``{site: (base_seconds, jitter_seconds)}`` — every chunk at the
        site is delayed by ``base + jitter * rng()``.  Persistent until
        healed.
    partition:
        Iterable of sites that black-hole: nothing is relayed while the
        site is partitioned.  Persistent until :meth:`heal`.
    drip:
        ``{site: (nbytes, delay_seconds)}`` — chunks are forwarded
        ``nbytes`` at a time with ``delay`` between pieces.  Persistent.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        reset: Optional[Dict[str, int]] = None,
        latency: Optional[Dict[str, Tuple[float, float]]] = None,
        partition: Tuple[str, ...] = (),
        drip: Optional[Dict[str, Tuple[int, float]]] = None,
    ):
        self.seed = seed
        self.reset = dict(reset or {})
        self.latency = dict(latency or {})
        self.partitioned_sites = set(partition)
        self.drip = dict(drip or {})
        for site, (nbytes, _delay) in self.drip.items():
            if nbytes < 1:
                raise NetworkFault(f"drip chunk for {site!r} must be >= 1 byte")
        self.chunk_calls: Dict[str, int] = {}
        self.resets_fired: List[str] = []
        self.events: List[Dict[str, Any]] = []
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    @classmethod
    def random(cls, seed: int) -> "NetFaultPlan":
        """A seeded random plan the cluster must absorb *without* help.

        Draws one transient/persistent-but-survivable fault: a reset on
        an up or down link, fleet-wide latency, or a slow drip.  Never a
        partition — partitions only end via :meth:`heal`, and the CI seed
        matrix asserts unattended recovery.
        """
        rng = random.Random(seed)
        shard = rng.randrange(4)
        choice = rng.randrange(4)
        if choice == 0:
            return cls(seed, reset={f"shard{shard}.down": rng.randrange(4)})
        if choice == 1:
            return cls(seed, reset={f"shard{shard}.up": rng.randrange(4)})
        if choice == 2:
            return cls(
                seed,
                latency={"*": (rng.uniform(0.005, 0.05), rng.uniform(0.0, 0.02))},
            )
        return cls(seed, drip={f"shard{shard}.down": (rng.randrange(48, 256), 0.002)})

    # ------------------------------------------------------------------
    def _lookup(self, table: Dict[str, Any], site: str) -> Optional[Any]:
        """Exact site, then ``*.<direction>``, then ``*``."""
        if site in table:
            return table[site]
        direction = site.rsplit(".", 1)[-1]
        if f"*.{direction}" in table:
            return table[f"*.{direction}"]
        return table.get("*")

    def _event(self, kind: str, site: str, **detail: Any) -> None:
        self.events.append(
            dict(
                kind=kind,
                site=site,
                seed=self.seed,
                t_wall=time.time(),
                t_mono=time.monotonic(),
                **detail,
            )
        )

    def on_chunk(self, site: str, nbytes: int) -> _Directive:
        """Consult the script for one relayed chunk at ``site``."""
        with self._lock:
            visit = self.chunk_calls.get(site, 0)
            self.chunk_calls[site] = visit + 1
            fire_at = self._lookup(self.reset, site)
            if (
                fire_at is not None
                and visit >= fire_at
                and site not in self.resets_fired
            ):
                self.resets_fired.append(site)
                self._event("reset", site, chunk=visit)
                return _Directive(reset=True)
            delay = 0.0
            lat = self._lookup(self.latency, site)
            if lat is not None:
                base, jitter = lat
                delay = base + jitter * self._rng.random()
            drip = self._lookup(self.drip, site)
            if delay or drip:
                self._event("delay", site, chunk=visit, delay=delay,
                            drip=list(drip) if drip else None)
            return _Directive(delay=delay, drip=drip)

    def is_partitioned(self, site: str) -> bool:
        with self._lock:
            if not self.partitioned_sites:
                return False
            return self._lookup(
                {s: True for s in self.partitioned_sites}, site
            ) is True

    def active_fault_counts(self) -> Dict[str, int]:
        """How many faults this plan is holding live right now.

        The observability plane scrapes this as gauges — a dashboard
        during a chaos run shows *which* pathology is active, not just
        that queries got slow.  ``resets_pending`` counts scripted
        one-shot resets that have not fired yet; everything else is
        persistent-until-heal.
        """
        with self._lock:
            fired = set(self.resets_fired)
            return {
                "latency_sites": len(self.latency),
                "drip_sites": len(self.drip),
                "partitioned_sites": len(self.partitioned_sites),
                "resets_pending": len(
                    [s for s in self.reset if s not in fired]
                ),
                "resets_fired": len(fired),
            }

    # ------------------------------------------------------------------
    def partition_site(self, site: str) -> None:
        """Black-hole a site (``"shard1.down"``, ``"*"``, ...) from now on."""
        with self._lock:
            self.partitioned_sites.add(site)
            self._event("partition", site)

    def heal(self, site: Optional[str] = None) -> None:
        """End faults: one partitioned site, or (with no args) everything.

        A full heal also clears latency and drip scripts — the network is
        healthy again — but not the reset history: a fired reset stays
        fired (one-shot).
        """
        with self._lock:
            if site is not None:
                self.partitioned_sites.discard(site)
                self._event("heal", site)
                return
            self.partitioned_sites.clear()
            self.latency.clear()
            self.drip.clear()
            self._event("heal", "*")


class ChaosProxy:
    """A TCP relay for one shard, applying a :class:`NetFaultPlan`.

    Listens on an ephemeral port; every accepted connection is paired
    with a fresh upstream connection to the (retargetable) shard address
    and pumped both ways by daemon threads.  ``retarget`` points *new*
    connections at a different upstream — existing ones keep their dead
    peer, exactly like real routing updates — which is how a restarted or
    promoted shard slots in behind a stable proxy address.
    """

    def __init__(
        self,
        target_host: str,
        target_port: int,
        plan: NetFaultPlan,
        name: str = "shard",
        host: str = "127.0.0.1",
    ):
        self.name = name
        self.plan = plan
        self._target = (target_host, int(target_port))
        self._closed = False
        self._conns: List[socket.socket] = []
        self._lock = threading.Lock()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, 0))
        self._listener.listen(64)
        self.host, self.port = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"chaos-{name}", daemon=True
        )
        self._accept_thread.start()

    # ------------------------------------------------------------------
    def retarget(self, port: int, host: Optional[str] = None) -> None:
        """Point new connections at a different upstream (restart/promote)."""
        with self._lock:
            self._target = (host or self._target[0], int(port))
        self.plan._event("retarget", self.name, port=int(port))

    @property
    def target(self) -> Tuple[str, int]:
        with self._lock:
            return self._target

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                client, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            try:
                upstream = socket.create_connection(self.target, timeout=5.0)
            except OSError:
                _hard_close(client)
                continue
            # The connect timeout must not linger as a recv timeout: an
            # idle-but-healthy proxied connection would self-destruct
            # after 5s (persistent shard handles sit idle for much
            # longer between queries).
            upstream.settimeout(None)
            with self._lock:
                self._conns.extend((client, upstream))
            for src, dst, direction in (
                (client, upstream, "up"),
                (upstream, client, "down"),
            ):
                threading.Thread(
                    target=self._pump,
                    args=(src, dst, f"{self.name}.{direction}"),
                    name=f"chaos-{self.name}-{direction}",
                    daemon=True,
                ).start()

    def _pump(self, src: socket.socket, dst: socket.socket, site: str) -> None:
        try:
            while True:
                data = src.recv(CHUNK)
                if not data:
                    break
                while self.plan.is_partitioned(site) and not self._closed:
                    time.sleep(_PARTITION_POLL)  # black hole: hold the bytes
                if self._closed:
                    break
                directive = self.plan.on_chunk(site, len(data))
                if directive.reset:
                    _hard_close(src)
                    _hard_close(dst)
                    return
                if directive.delay:
                    time.sleep(directive.delay)
                if directive.drip:
                    nbytes, delay = directive.drip
                    for i in range(0, len(data), nbytes):
                        dst.sendall(data[i : i + nbytes])
                        if i + nbytes < len(data):
                            time.sleep(delay)
                else:
                    dst.sendall(data)
        except OSError:
            pass
        finally:
            # Half-close so the peer pump drains the other direction, then
            # dies on its own EOF.
            for sock in (src, dst):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass

    def close(self) -> None:
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            conns, self._conns = self._conns, []
        for sock in conns:
            _hard_close(sock)


class ChaosFleet:
    """One proxy per shard, all scripted by one plan.

    ``targets`` is a list of ``(host, port)`` shard addresses; proxy ``i``
    is named ``shard<i>`` so plan sites line up with shard ids.
    """

    def __init__(self, targets, plan: NetFaultPlan, host: str = "127.0.0.1"):
        self.plan = plan
        self.proxies: List[ChaosProxy] = [
            ChaosProxy(t_host, t_port, plan, name=f"shard{i}", host=host)
            for i, (t_host, t_port) in enumerate(targets)
        ]

    def port_of(self, shard: int) -> int:
        return self.proxies[shard].port

    def retarget(self, shard: int, port: int, host: Optional[str] = None) -> None:
        self.proxies[shard].retarget(port, host)

    def close(self) -> None:
        for proxy in self.proxies:
            proxy.close()


def _hard_close(sock: socket.socket) -> None:
    """Close with SO_LINGER 0: an RST, the way a killed box disappears.

    ``shutdown(SHUT_RD)`` first: a sibling pump thread may be blocked in
    ``recv`` on this very socket, and on Linux a plain ``close`` is
    *deferred* while that syscall holds the file reference — the RST
    would not hit the wire until the blocked thread woke up on its own
    (possibly a full peer timeout later).  Shutting down the read side
    wakes it immediately with EOF; the linger-0 ``close`` then fires the
    RST at the peer.
    """
    try:
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
    except OSError:
        pass
    try:
        sock.shutdown(socket.SHUT_RD)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass
