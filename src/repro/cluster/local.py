"""Local cluster harness: forked shard processes behind one router.

Real process isolation (the failover test must be able to ``SIGKILL`` a
leader and watch the follower take over) on one machine:

* :class:`ShardProcess` — ``fork`` one single-node
  :class:`~repro.server.app.SpatialQueryServer` over its own database
  (in-memory, or file+WAL for durable shards) and report the bound port
  back through a pipe.
* :class:`LocalCluster` — the whole topology: N shard processes, the
  in-process :class:`~repro.cluster.router.RouterServer`, and (when
  ``replicated``) a :class:`~repro.cluster.replication.WalFollower`
  tailing the leader.  DDL broadcast, batched loading through the
  router's ``put``, kill-the-leader, and :meth:`failover` (promote the
  follower to an in-process replacement leader).

Resilience wiring (all opt-in):

* ``chaos_plan`` — a :class:`~repro.cluster.chaos.NetFaultPlan`; every
  shard connection is routed through a :class:`~repro.cluster.chaos
  .ChaosProxy` so the plan's resets/latency/partitions/drips hit real
  TCP traffic.  The proxies' stable ports double as the indirection
  layer failover repoints (a promoted or restarted shard slots in
  behind the same proxy address).
* ``durable`` — every shard (not just the replicated leader) runs
  file+WAL-backed, which is what makes :meth:`restart_shard` possible:
  a SIGKILLed non-leader comes back via ordinary WAL crash recovery.
* ``auto_heal`` — a :class:`~repro.cluster.health.HealthMonitor`
  heartbeats every shard and a :class:`~repro.cluster.health
  .FailoverCoordinator` runs the recovery policy on DOWN: the
  replicated leader is **promoted** (the PR 7 manual ``failover()``,
  now automatic and idempotent), durable non-leaders are **restarted**
  from their WAL, in-memory non-leaders are left to the router's
  breaker + partial-results degradation (there is nothing to restart
  from).

Process hygiene: the initial shards are forked **before** any thread
starts in this process (the router server, follower, monitor and chaos
proxies all run threads), because forking a threaded process clones
locks in unknown states.  ``start()`` enforces that ordering; the one
exception, :meth:`restart_shard`, must create a process *after* threads
exist and therefore uses the ``spawn`` context (fresh interpreter, no
inherited locks) at the cost of a slower start.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import tempfile
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cluster.chaos import ChaosFleet, NetFaultPlan
from repro.cluster.health import FailoverCoordinator, HealthMonitor
from repro.cluster.partition import ClusterError, GridPartitioner
from repro.cluster.replication import WalFollower
from repro.cluster.router import RouterServer, RouterService, ShardHandle
from repro.geometry.mbr import MBR
from repro.server.client import QueryClient

__all__ = ["ShardProcess", "LocalCluster", "DEFAULT_DDL"]

DEFAULT_DDL = (
    "create table {table} (id number, geom sdo_geometry)",
    "create index {table}_sidx on {table}(geom) "
    "indextype is spatial_index parameters ('kind=RTREE')",
)


def _shard_main(conn, shard_id: int, path: Optional[str], server_kwargs) -> None:
    """Child-process entry: serve one shard until SIGTERM drains it."""
    import asyncio
    import faulthandler
    import signal

    from repro.engine.database import Database
    from repro.server.app import SpatialQueryServer

    # `kill -USR1 <shard pid>` dumps every thread's stack to stderr —
    # the first question a wedged-shard investigation asks.
    faulthandler.register(signal.SIGUSR1)

    db = Database() if path is None else Database.open(path, durability="wal")

    async def main() -> None:
        server = SpatialQueryServer(db, shard_id=shard_id, **server_kwargs)
        await server.start()
        conn.send(server.port)
        conn.close()
        server.install_signal_handlers()
        await server.wait_closed()
        db.close()

    asyncio.run(main())


class ShardProcess:
    """One forked shard server; knows how to die politely or violently.

    ``mp_context`` picks the multiprocessing start method: ``fork`` for
    the initial fleet (started before any thread exists), ``spawn`` for
    mid-life restarts — a fork from a threaded parent clones lock state,
    a spawn starts clean.
    """

    def __init__(
        self,
        shard_id: int,
        path: Optional[str] = None,
        mp_context: str = "fork",
        **server_kwargs: Any,
    ):
        self.shard_id = shard_id
        self.path = path
        self.mp_context = mp_context
        self.server_kwargs = server_kwargs
        self.port: Optional[int] = None
        self._proc: Optional[multiprocessing.Process] = None

    def start(self) -> "ShardProcess":
        ctx = multiprocessing.get_context(self.mp_context)
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        self._proc = ctx.Process(
            target=_shard_main,
            args=(child_conn, self.shard_id, self.path, self.server_kwargs),
            name=f"repro-shard-{self.shard_id}",
            daemon=True,
        )
        self._proc.start()
        child_conn.close()
        if not parent_conn.poll(15.0):
            self.kill()
            raise ClusterError(
                f"shard {self.shard_id} did not report a port within 15s"
            )
        self.port = parent_conn.recv()
        parent_conn.close()
        return self

    @property
    def alive(self) -> bool:
        return self._proc is not None and self._proc.is_alive()

    def kill(self) -> None:
        """SIGKILL — the chaos path; no drain, no flush, no goodbye."""
        if self._proc is not None and self._proc.is_alive():
            os.kill(self._proc.pid, signal.SIGKILL)
            self._proc.join(timeout=5.0)

    def stop(self) -> None:
        """SIGTERM — the polite path; the server drains live sessions."""
        if self._proc is not None and self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(timeout=10.0)
            if self._proc.is_alive():
                self.kill()


class LocalCluster:
    """N forked shards + router + optional replicated leader, on one box.

    ``box`` is the data domain the global grid tiles (the benchmarks and
    tests know their domain up front — exactly like the paper's
    tessellation levels are configured per dataset); ``halo`` bounds the
    largest within-distance join the cluster will accept.
    """

    def __init__(
        self,
        nshards: int,
        box: MBR,
        n_entries_hint: int = 10_000,
        halo: float = 0.0,
        replicated: bool = False,
        allow_partial: bool = False,
        durable: bool = False,
        chaos_plan: Optional[NetFaultPlan] = None,
        auto_heal: bool = False,
        health_check: bool = False,
        health_kwargs: Optional[Dict[str, Any]] = None,
        obs_plane: bool = False,
        obs_interval: float = 0.25,
        obs_slos: Optional[Sequence[Any]] = None,
        obs_kwargs: Optional[Dict[str, Any]] = None,
        client_timeout: float = 30.0,
        workdir: Optional[str] = None,
        leader: int = 0,
        shard_kwargs: Optional[Dict[str, Any]] = None,
        router_host: str = "127.0.0.1",
        router_port: int = 0,
        **router_kwargs: Any,
    ):
        self.router_host = router_host
        self.router_port = router_port
        self.nshards = nshards
        self.partitioner = GridPartitioner.build(box, nshards, n_entries_hint, halo)
        self.replicated = replicated
        self.allow_partial = allow_partial
        self.durable = durable
        self.chaos_plan = chaos_plan
        self.auto_heal = auto_heal
        self.health_check = health_check or auto_heal
        self.health_kwargs = dict(health_kwargs or {})
        self.obs_plane = obs_plane
        self.obs_interval = obs_interval
        self.obs_slos = obs_slos
        self.obs_kwargs = dict(obs_kwargs or {})
        self.plane = None  # ObservabilityPlane when obs_plane is on
        self.client_timeout = client_timeout
        self.leader = leader
        self.shard_kwargs = shard_kwargs or {}
        self.router_kwargs = router_kwargs
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        if workdir is None and (replicated or durable):
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-cluster-")
            workdir = self._tmpdir.name
        self.workdir = workdir
        self.procs: List[ShardProcess] = []
        self.handles: List[ShardHandle] = []
        self.follower: Optional[WalFollower] = None
        self.router: Optional[RouterService] = None
        self.server = None  # BackgroundServer running the RouterServer
        self.port: Optional[int] = None
        self.chaos: Optional[ChaosFleet] = None
        self.monitor: Optional[HealthMonitor] = None
        self.coordinator: Optional[FailoverCoordinator] = None
        self.events: List[Dict[str, Any]] = []  # failover/restart timeline
        self._promoted = []  # in-process replacement leaders (failover)
        self._failover_lock = threading.Lock()
        self._failed_over = False

    # ------------------------------------------------------------------
    def _shard_path(self, shard: int) -> Optional[str]:
        if self.durable or (self.replicated and shard == self.leader):
            return os.path.join(self.workdir, f"shard{shard}.db")
        return None

    def endpoint_port(self, shard: int) -> int:
        """The port the router/monitor should dial for ``shard``: the
        chaos proxy when one is wired, the shard itself otherwise."""
        if self.chaos is not None:
            return self.chaos.port_of(shard)
        return self.procs[shard].port

    def _event(self, kind: str, **detail: Any) -> None:
        self.events.append(
            dict(kind=kind, t_wall=time.time(), t_mono=time.monotonic(), **detail)
        )

    # ------------------------------------------------------------------
    def start(self) -> "LocalCluster":
        from repro.server.app import BackgroundServer

        # Fork every shard before any thread exists in this process.
        for shard in range(self.nshards):
            self.procs.append(
                ShardProcess(
                    shard, path=self._shard_path(shard), **self.shard_kwargs
                ).start()
            )
        if self.chaos_plan is not None:
            self.chaos = ChaosFleet(
                [("127.0.0.1", proc.port) for proc in self.procs],
                self.chaos_plan,
            )
        self.handles = [
            ShardHandle(
                proc.shard_id,
                QueryClient(
                    port=self.endpoint_port(proc.shard_id),
                    retries=5,
                    timeout=self.client_timeout,
                ),
            )
            for proc in self.procs
        ]
        if self.replicated:
            # Replication tails the leader *directly* (not through the
            # chaos proxy): the query path is what the chaos gate stresses,
            # and the follower-reconnect tests wrap their own proxy.
            self.follower = WalFollower(
                QueryClient(port=self.procs[self.leader].port, retries=5),
                os.path.join(self.workdir, "replica.db"),
            ).start()
        if self.health_check:
            self.monitor = HealthMonitor(
                {
                    shard: ("127.0.0.1", self.endpoint_port(shard))
                    for shard in range(self.nshards)
                },
                **self.health_kwargs,
            )
        commit_shards = frozenset(
            shard
            for shard in range(self.nshards)
            if self.procs[shard].path is not None
        )
        self.router = RouterService(
            self.handles,
            self.partitioner,
            leader=self.leader,
            follower=self.follower,
            replicated=self.replicated,
            allow_partial=self.allow_partial,
            health=self.monitor,
            commit_shards=commit_shards or None,
            **self.router_kwargs,
        )
        if self.obs_plane:
            self.plane = self._build_plane()
        self.server = BackgroundServer(
            None,
            server_factory=RouterServer,
            router=self.router,
            host=self.router_host,
            port=self.router_port,
            plane=self.plane,
        ).start()
        self.port = self.server.port
        if self.plane is not None:
            # Scrape only once the router server (whose metrics the
            # collectors read) is live.
            self.plane.start()
        if self.monitor is not None:
            if self.auto_heal:
                actions: Dict[int, Any] = {}
                for shard in range(self.nshards):
                    if shard == self.leader and self.replicated:
                        actions[shard] = self._heal_leader
                    elif self.procs[shard].path is not None:
                        actions[shard] = self.restart_shard
                    # else: in-memory non-leader — nothing to restart from;
                    # breaker + partial-results mode degrade around it
                self.coordinator = FailoverCoordinator(self.monitor, actions)
            self.monitor.start()
        return self

    # ------------------------------------------------------------------
    def _build_plane(self):
        """Metrics/SLO plane over the whole topology (``obs_plane=True``).

        Collectors pull — the router, breakers, follower and chaos plan
        just keep the counters they already kept, so a cluster without a
        plane pays nothing.  The router-server snapshot collector binds
        ``self.server`` lazily (the server starts after this runs).
        """
        from repro.obs.plane import (
            ObservabilityPlane,
            default_cluster_slos,
            server_metrics_collector,
        )

        slos = (
            list(self.obs_slos)
            if self.obs_slos is not None
            else default_cluster_slos()
        )
        plane = ObservabilityPlane(
            slos=slos, interval=self.obs_interval, **self.obs_kwargs
        )
        plane.add_collector(
            server_metrics_collector(
                lambda: self.server.server.metrics.snapshot()
            ),
            name="router_server",
        )
        plane.add_collector(self._cluster_collector(), name="cluster")
        return plane

    def _cluster_collector(self):
        """Gauges only the cluster harness can see: replication lag,
        breaker states, chaos faults, scatter fan-out, shard health."""
        breaker_code = {"closed": 0.0, "open": 1.0, "half_open": 2.0}

        def collect(store, now: float) -> None:
            follower = self.follower  # may become None after failover
            if follower is not None:
                store.observe(
                    "cluster.replication.lag_lsn",
                    None,
                    float(follower.lag_lsn),
                    now,
                )
                store.observe(
                    "cluster.replication.lag_seconds",
                    None,
                    follower.lag_seconds,
                    now,
                )
            router = self.router
            if router is not None:
                store.observe(
                    "cluster.scatter.fanout",
                    None,
                    float(router.last_fanout),
                    now,
                )
                for shard, n in dict(router.deadline_misses).items():
                    store.observe(
                        "cluster.deadline_misses",
                        {"shard": shard},
                        float(n),
                        now,
                    )
                for shard, breaker in router.breakers.items():
                    status = breaker.status()
                    labels = {"shard": shard}
                    store.observe(
                        "cluster.breaker.state",
                        labels,
                        breaker_code.get(status["state"], -1.0),
                        now,
                    )
                    store.observe(
                        "cluster.breaker.opens",
                        labels,
                        float(status["opens"]),
                        now,
                    )
                    store.observe(
                        "cluster.breaker.open_seconds_total",
                        labels,
                        float(status["open_seconds_total"]),
                        now,
                    )
            plan = self.chaos_plan
            if plan is not None:
                for key, n in plan.active_fault_counts().items():
                    store.observe(f"cluster.chaos.{key}", None, float(n), now)
            monitor = self.monitor
            if monitor is not None:
                for shard, health in monitor.status().items():
                    store.observe(
                        "cluster.health.up",
                        {"shard": shard},
                        1.0 if health["state"] == "up" else 0.0,
                        now,
                    )

        return collect

    # ------------------------------------------------------------------
    def client(self, **kwargs: Any) -> QueryClient:
        """A fresh connection to the router."""
        return QueryClient(port=self.port, retries=5, **kwargs)

    def ddl(self, statements: Sequence[str]) -> None:
        """Broadcast DDL to every shard (runs each statement everywhere)."""
        with self.client() as client:
            for statement in statements:
                client.start("sql", {"statement": statement}).all()

    def create_spatial_table(self, table: str) -> None:
        self.ddl([s.format(table=table) for s in DEFAULT_DDL])

    def load(self, table: str, rows: Iterable[Any], batch: int = 256) -> Dict[str, Any]:
        """Route ``[id, wkt]`` rows through the router's ``put`` op."""
        totals = {"placed": 0, "replicas": 0, "lsn": None}
        pending: List[Any] = []
        with self.client() as client:
            def flush() -> None:
                if not pending:
                    return
                response = client.request("put", table=table, rows=pending)
                totals["placed"] += response["placed"]
                totals["replicas"] += response["replicas"]
                totals["lsn"] = response.get("lsn")
                pending.clear()

            for row in rows:
                pending.append(row)
                if len(pending) >= batch:
                    flush()
            flush()
        return totals

    # ------------------------------------------------------------------
    # Chaos / failover
    # ------------------------------------------------------------------
    def kill_leader(self) -> None:
        self.procs[self.leader].kill()

    def kill_shard(self, shard: int) -> None:
        self.procs[shard].kill()

    def failover(self) -> Tuple[str, int]:
        """Promote the follower to a serving leader and rewire the router.

        The replica file already holds every acked commit; promotion
        seals it, opens it as an ordinary WAL-backed database, serves it
        from an in-process server, and atomically swaps the leader's
        shard handle to the new port (behind the chaos proxy when one is
        wired, so plan sites keep matching).  Queries in flight against
        the dead leader fail typed (``SHARD_FAILED``) — or are resumed
        transparently by the router's re-scatter layer; queries started
        after this returns hit the promoted replica.  Idempotent: the
        health monitor and a human operator racing each other promote
        exactly once.
        """
        with self._failover_lock:
            if self._failed_over:
                return ("127.0.0.1", self.endpoint_port(self.leader))
            if self.follower is None:
                raise ClusterError("failover() needs a replicated cluster")
            from repro.engine.database import Database
            from repro.server.app import BackgroundServer

            self._event("failover_started", shard=self.leader)
            path = self.follower.promote()
            db = Database.open(path, durability="wal")
            promoted = BackgroundServer(db, shard_id=self.leader).start()
            self._promoted.append((promoted, db))
            port = promoted.port
            if self.chaos is not None:
                self.chaos.retarget(self.leader, port)
                port = self.chaos.port_of(self.leader)
            self.handles[self.leader].replace(
                QueryClient(port=port, retries=5, timeout=self.client_timeout)
            )
            self.router.reset_breaker(self.leader)
            # The WAL that was being tailed died with the old leader; the
            # promoted node serves unreplicated until a new follower
            # attaches.
            self.router.follower = None
            self.router.replicated = False
            self.follower = None
            self._failed_over = True
            self.router._bump("failovers")
            self._event("failover_done", shard=self.leader, port=port)
            return ("127.0.0.1", port)

    def _heal_leader(self, shard: int) -> Tuple[str, int]:
        """Coordinator action for a DOWN leader: promote the follower."""
        return self.failover()

    def restart_shard(self, shard: int) -> Tuple[str, int]:
        """Bring a durable shard back from its on-disk state (WAL recovery).

        Uses the ``spawn`` start method — the parent is threaded by now —
        and repoints the chaos proxy / shard handle at the new port.  The
        stable proxy address means in-flight retry loops find the
        restarted shard without topology changes.
        """
        proc = self.procs[shard]
        if proc.path is None:
            raise ClusterError(
                f"shard {shard} is in-memory; only durable shards restart"
            )
        self._event("restart_started", shard=shard)
        proc.kill()  # ensure the old process is fully gone first
        replacement = ShardProcess(
            shard, path=proc.path, mp_context="spawn", **self.shard_kwargs
        ).start()
        self.procs[shard] = replacement
        port = replacement.port
        if self.chaos is not None:
            self.chaos.retarget(shard, port)
            port = self.chaos.port_of(shard)
        self.handles[shard].replace(
            QueryClient(port=port, retries=5, timeout=self.client_timeout)
        )
        if self.router is not None:
            self.router.reset_breaker(shard)
            self.router._bump("restarts")
        self._event("restart_done", shard=shard, port=port)
        return ("127.0.0.1", port)

    def resilience_events(self) -> List[Dict[str, Any]]:
        """The merged failure/recovery timeline, ordered by monotonic time.

        Combines chaos-plan injections, health transitions, coordinator
        recoveries and cluster failover/restart events — this is the
        trace the CI network-chaos job uploads and the MTTR bench mines.
        """
        merged: List[Dict[str, Any]] = list(self.events)
        if self.chaos_plan is not None:
            merged.extend(self.chaos_plan.events)
        if self.monitor is not None:
            merged.extend(self.monitor.events)
        if self.coordinator is not None:
            merged.extend(self.coordinator.events)
        return sorted(merged, key=lambda e: e.get("t_mono", 0.0))

    # ------------------------------------------------------------------
    def stop(self) -> None:
        if self.plane is not None:
            self.plane.stop()
            self.plane = None
        if self.monitor is not None:
            self.monitor.stop()
        if self.coordinator is not None:
            self.coordinator.wait_idle(timeout=5.0)
            self.coordinator = None
        if self.follower is not None:
            self.follower.close()
            self.follower = None
        if self.server is not None:
            self.server.stop()
            self.server = None
        for handle in self.handles:
            try:
                handle.client.close()
            except OSError:
                pass
        self.handles = []
        for promoted, db in self._promoted:
            promoted.stop()
            try:
                db.close()
            except Exception:  # noqa: BLE001 - teardown best effort
                pass
        self._promoted = []
        for proc in self.procs:
            proc.stop()
        self.procs = []
        if self.chaos is not None:
            self.chaos.close()
            self.chaos = None
        self.monitor = None
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def __enter__(self) -> "LocalCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
