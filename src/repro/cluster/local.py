"""Local cluster harness: forked shard processes behind one router.

Real process isolation (the failover test must be able to ``SIGKILL`` a
leader and watch the follower take over) on one machine:

* :class:`ShardProcess` — ``fork`` one single-node
  :class:`~repro.server.app.SpatialQueryServer` over its own database
  (in-memory, or file+WAL for the replicated leader) and report the
  bound port back through a pipe.
* :class:`LocalCluster` — the whole topology: N shard processes, the
  in-process :class:`~repro.cluster.router.RouterServer`, and (when
  ``replicated``) a :class:`~repro.cluster.replication.WalFollower`
  tailing the leader.  DDL broadcast, batched loading through the
  router's ``put``, kill-the-leader, and :meth:`failover` (promote the
  follower to an in-process replacement leader).

Process hygiene: shards are forked **before** any thread starts in this
process (the router server and the follower both run threads), because
forking a threaded process clones locks in unknown states.  ``start()``
enforces that ordering.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import tempfile
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.cluster.partition import ClusterError, GridPartitioner
from repro.cluster.replication import WalFollower
from repro.cluster.router import RouterServer, RouterService, ShardHandle
from repro.geometry.mbr import MBR
from repro.server.client import QueryClient

__all__ = ["ShardProcess", "LocalCluster", "DEFAULT_DDL"]

DEFAULT_DDL = (
    "create table {table} (id number, geom sdo_geometry)",
    "create index {table}_sidx on {table}(geom) "
    "indextype is spatial_index parameters ('kind=RTREE')",
)


def _shard_main(conn, shard_id: int, path: Optional[str], server_kwargs) -> None:
    """Child-process entry: serve one shard until SIGTERM drains it."""
    import asyncio

    from repro.engine.database import Database
    from repro.server.app import SpatialQueryServer

    db = Database() if path is None else Database.open(path, durability="wal")

    async def main() -> None:
        server = SpatialQueryServer(db, shard_id=shard_id, **server_kwargs)
        await server.start()
        conn.send(server.port)
        conn.close()
        server.install_signal_handlers()
        await server.wait_closed()
        db.close()

    asyncio.run(main())


class ShardProcess:
    """One forked shard server; knows how to die politely or violently."""

    def __init__(
        self,
        shard_id: int,
        path: Optional[str] = None,
        **server_kwargs: Any,
    ):
        self.shard_id = shard_id
        self.path = path
        self.server_kwargs = server_kwargs
        self.port: Optional[int] = None
        self._proc: Optional[multiprocessing.Process] = None

    def start(self) -> "ShardProcess":
        ctx = multiprocessing.get_context("fork")
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        self._proc = ctx.Process(
            target=_shard_main,
            args=(child_conn, self.shard_id, self.path, self.server_kwargs),
            name=f"repro-shard-{self.shard_id}",
            daemon=True,
        )
        self._proc.start()
        child_conn.close()
        if not parent_conn.poll(15.0):
            self.kill()
            raise ClusterError(
                f"shard {self.shard_id} did not report a port within 15s"
            )
        self.port = parent_conn.recv()
        parent_conn.close()
        return self

    @property
    def alive(self) -> bool:
        return self._proc is not None and self._proc.is_alive()

    def kill(self) -> None:
        """SIGKILL — the chaos path; no drain, no flush, no goodbye."""
        if self._proc is not None and self._proc.is_alive():
            os.kill(self._proc.pid, signal.SIGKILL)
            self._proc.join(timeout=5.0)

    def stop(self) -> None:
        """SIGTERM — the polite path; the server drains live sessions."""
        if self._proc is not None and self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(timeout=10.0)
            if self._proc.is_alive():
                self.kill()


class LocalCluster:
    """N forked shards + router + optional replicated leader, on one box.

    ``box`` is the data domain the global grid tiles (the benchmarks and
    tests know their domain up front — exactly like the paper's
    tessellation levels are configured per dataset); ``halo`` bounds the
    largest within-distance join the cluster will accept.
    """

    def __init__(
        self,
        nshards: int,
        box: MBR,
        n_entries_hint: int = 10_000,
        halo: float = 0.0,
        replicated: bool = False,
        allow_partial: bool = False,
        workdir: Optional[str] = None,
        leader: int = 0,
        shard_kwargs: Optional[Dict[str, Any]] = None,
        router_host: str = "127.0.0.1",
        router_port: int = 0,
        **router_kwargs: Any,
    ):
        self.router_host = router_host
        self.router_port = router_port
        self.nshards = nshards
        self.partitioner = GridPartitioner.build(box, nshards, n_entries_hint, halo)
        self.replicated = replicated
        self.allow_partial = allow_partial
        self.leader = leader
        self.shard_kwargs = shard_kwargs or {}
        self.router_kwargs = router_kwargs
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        if workdir is None and replicated:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-cluster-")
            workdir = self._tmpdir.name
        self.workdir = workdir
        self.procs: List[ShardProcess] = []
        self.handles: List[ShardHandle] = []
        self.follower: Optional[WalFollower] = None
        self.router: Optional[RouterService] = None
        self.server = None  # BackgroundServer running the RouterServer
        self.port: Optional[int] = None
        self._promoted = []  # in-process replacement leaders (failover)

    # ------------------------------------------------------------------
    def start(self) -> "LocalCluster":
        from repro.server.app import BackgroundServer

        # Fork every shard before any thread exists in this process.
        for shard in range(self.nshards):
            path = None
            if self.replicated and shard == self.leader:
                path = os.path.join(self.workdir, f"shard{shard}.db")
            self.procs.append(
                ShardProcess(shard, path=path, **self.shard_kwargs).start()
            )
        self.handles = [
            ShardHandle(
                proc.shard_id,
                QueryClient(port=proc.port, retries=5, timeout=30.0),
            )
            for proc in self.procs
        ]
        if self.replicated:
            self.follower = WalFollower(
                QueryClient(port=self.procs[self.leader].port, retries=5),
                os.path.join(self.workdir, "replica.db"),
            ).start()
        self.router = RouterService(
            self.handles,
            self.partitioner,
            leader=self.leader,
            follower=self.follower,
            replicated=self.replicated,
            allow_partial=self.allow_partial,
            **self.router_kwargs,
        )
        self.server = BackgroundServer(
            None,
            server_factory=RouterServer,
            router=self.router,
            host=self.router_host,
            port=self.router_port,
        ).start()
        self.port = self.server.port
        return self

    # ------------------------------------------------------------------
    def client(self, **kwargs: Any) -> QueryClient:
        """A fresh connection to the router."""
        return QueryClient(port=self.port, retries=5, **kwargs)

    def ddl(self, statements: Sequence[str]) -> None:
        """Broadcast DDL to every shard (runs each statement everywhere)."""
        with self.client() as client:
            for statement in statements:
                client.start("sql", {"statement": statement}).all()

    def create_spatial_table(self, table: str) -> None:
        self.ddl([s.format(table=table) for s in DEFAULT_DDL])

    def load(self, table: str, rows: Iterable[Any], batch: int = 256) -> Dict[str, Any]:
        """Route ``[id, wkt]`` rows through the router's ``put`` op."""
        totals = {"placed": 0, "replicas": 0, "lsn": None}
        pending: List[Any] = []
        with self.client() as client:
            def flush() -> None:
                if not pending:
                    return
                response = client.request("put", table=table, rows=pending)
                totals["placed"] += response["placed"]
                totals["replicas"] += response["replicas"]
                totals["lsn"] = response.get("lsn")
                pending.clear()

            for row in rows:
                pending.append(row)
                if len(pending) >= batch:
                    flush()
            flush()
        return totals

    # ------------------------------------------------------------------
    # Chaos / failover
    # ------------------------------------------------------------------
    def kill_leader(self) -> None:
        self.procs[self.leader].kill()

    def failover(self) -> None:
        """Promote the follower to a serving leader and rewire the router.

        The replica file already holds every acked commit; promotion
        seals it, opens it as an ordinary WAL-backed database, serves it
        from an in-process server, and atomically swaps the leader's
        shard handle to the new port.  Queries in flight against the
        dead leader fail typed (``SHARD_FAILED``); queries started after
        this returns hit the promoted replica.
        """
        if self.follower is None:
            raise ClusterError("failover() needs a replicated cluster")
        from repro.engine.database import Database
        from repro.server.app import BackgroundServer

        path = self.follower.promote()
        db = Database.open(path, durability="wal")
        promoted = BackgroundServer(db, shard_id=self.leader).start()
        self._promoted.append((promoted, db))
        self.handles[self.leader].replace(
            QueryClient(port=promoted.port, retries=5, timeout=30.0)
        )
        # The WAL that was being tailed died with the old leader; the
        # promoted node serves unreplicated until a new follower attaches.
        self.router.follower = None
        self.router.replicated = False
        self.follower = None

    # ------------------------------------------------------------------
    def stop(self) -> None:
        if self.follower is not None:
            self.follower.close()
            self.follower = None
        if self.server is not None:
            self.server.stop()
            self.server = None
        for handle in self.handles:
            try:
                handle.client.close()
            except OSError:
                pass
        self.handles = []
        for promoted, db in self._promoted:
            promoted.stop()
            try:
                db.close()
            except Exception:  # noqa: BLE001 - teardown best effort
                pass
        self._promoted = []
        for proc in self.procs:
            proc.stop()
        self.procs = []
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def __enter__(self) -> "LocalCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
