"""Shard placement: which shard owns which tile, and where rows live.

The whole cluster shares one :class:`~repro.core.grid_partition.GridSpec`
over the data domain.  Tile ids are split into **contiguous blocks**, one
per shard (``shard_of_tile``); a row's *primary* shard is the owner of
the tile holding its MBR's low corner — the same canonical-tile notion
the grid join's two-layer duplicate avoidance uses, so "exactly one tile
emits a pair" composes with "exactly one shard owns a tile" into "exactly
one shard emits a pair".

Rows are additionally **halo replicated**: a copy goes to every shard
whose owned tiles the row's MBR, expanded by the halo distance, overlaps.
That makes shard-local joins self-contained for any join distance up to
the halo (the router rejects wider ones), at a storage cost proportional
to perimeter rather than area.

Everything here bins MBRs through
:func:`~repro.core.grid_partition.tile_range_of`, i.e. through the same
``tile_ranges_batch`` kernel the join's replica assignment uses —
placement and query-time filtering are bit-identical by construction.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Iterator, Optional, Set, Tuple

from repro.core.grid_partition import GridSpec, tile_range_of
from repro.errors import ServerError
from repro.geometry.mbr import MBR

__all__ = [
    "ClusterError",
    "GridPartitioner",
    "HashPartitioner",
    "stable_hash",
]


class ClusterError(ServerError):
    """A cluster-level configuration or routing failure."""


def stable_hash(key: Any) -> int:
    """Deterministic cross-process hash (``hash()`` is salted per process)."""
    return zlib.crc32(repr(key).encode("utf-8"))


class HashPartitioner:
    """Round-robin-by-content placement for non-spatial keys."""

    def __init__(self, nshards: int):
        if nshards < 1:
            raise ClusterError(f"nshards must be >= 1, got {nshards}")
        self.nshards = nshards

    def shard_of(self, key: Any) -> int:
        return stable_hash(key) % self.nshards


class GridPartitioner:
    """Space partitioning of one global grid across ``nshards`` shards.

    ``shard`` is set on the copy a shard receives over the wire (so
    shard-local filters know who they are); the router's own instance
    leaves it ``None``.
    """

    def __init__(
        self,
        spec: GridSpec,
        nshards: int,
        halo: float = 0.0,
        shard: Optional[int] = None,
    ):
        if nshards < 1:
            raise ClusterError(f"nshards must be >= 1, got {nshards}")
        if halo < 0.0:
            raise ClusterError(f"halo must be >= 0, got {halo}")
        self.spec = spec
        self.nshards = nshards
        self.halo = float(halo)
        self.shard = shard

    # -- ownership ------------------------------------------------------
    @property
    def n_tiles(self) -> int:
        return self.spec.tiles

    def shard_of_tile(self, tile_id: int) -> int:
        """Owner of one tile: contiguous blocks, monotone in tile id."""
        if not 0 <= tile_id < self.n_tiles:
            raise ClusterError(
                f"tile id {tile_id} out of range (0..{self.n_tiles - 1})"
            )
        return min(tile_id * self.nshards // self.n_tiles, self.nshards - 1)

    def owned_tiles(self, shard: Optional[int] = None) -> Set[int]:
        """The set of tile ids one shard owns (defaults to ``self.shard``)."""
        shard = self.shard if shard is None else shard
        if shard is None:
            raise ClusterError("owned_tiles() needs a shard id")
        # Ownership is monotone in tile id, so the block is a range; find
        # its bounds arithmetically instead of scanning every tile.
        lo = _first_tile_of(shard, self.nshards, self.n_tiles)
        hi = _first_tile_of(shard + 1, self.nshards, self.n_tiles)
        return set(range(lo, hi))

    # -- row/query routing ----------------------------------------------
    def primary_tile(self, mbr: MBR) -> int:
        ix0, _ix1, iy0, _iy1 = tile_range_of(self.spec, mbr, 0.0)
        return self.spec.tile_id(ix0, iy0)

    def primary_shard(self, mbr: MBR) -> int:
        """The one shard that owns this MBR's low-corner tile."""
        return self.shard_of_tile(self.primary_tile(mbr))

    def window_owner(self, mbr: MBR, window: MBR, expand: float = 0.0) -> int:
        """The one shard that emits this row for one window query.

        The two-layer canonical-tile rule, applied to windows: clamp the
        row MBR's low corner into the search region (``window`` expanded
        by ``expand``) and take the owner of the tile holding the clamped
        corner.  The corner lies inside the row's MBR, so the owning
        shard always holds a copy of the row (replicas cover every tile
        the MBR overlaps); and it lies inside the search region, so the
        router only needs to scatter a window query to
        ``shards_for_mbr(window, expand)`` — every other shard would emit
        nothing.  One emitter per (row, window), no router-side dedup.
        """
        cx = max(mbr.min_x, window.min_x - expand)
        cy = max(mbr.min_y, window.min_y - expand)
        corner = MBR(cx, cy, cx, cy)
        ix0, _ix1, iy0, _iy1 = tile_range_of(self.spec, corner, 0.0)
        return self.shard_of_tile(self.spec.tile_id(ix0, iy0))

    def shards_for_mbr(self, mbr: MBR, expand: Optional[float] = None) -> Set[int]:
        """Every shard whose owned tiles the (expanded) MBR overlaps.

        With ``expand`` defaulting to the halo this is the *replica set*
        of a row: the shards that must hold a copy for shard-local joins
        up to the halo distance to be exact.
        """
        expand = self.halo if expand is None else expand
        ix0, ix1, iy0, iy1 = tile_range_of(self.spec, mbr, expand)
        shards: Set[int] = set()
        for iy in range(iy0, iy1 + 1):
            # Tile ids along one grid row are consecutive, and ownership
            # is monotone in tile id: the row's owners are a shard range.
            lo = self.shard_of_tile(self.spec.tile_id(ix0, iy))
            hi = self.shard_of_tile(self.spec.tile_id(ix1, iy))
            shards.update(range(lo, hi + 1))
        return shards

    def tile_blocks(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(shard, first_tile, last_tile_exclusive)`` blocks."""
        for shard in range(self.nshards):
            lo = _first_tile_of(shard, self.nshards, self.n_tiles)
            hi = _first_tile_of(shard + 1, self.nshards, self.n_tiles)
            yield shard, lo, hi

    # -- wire -----------------------------------------------------------
    def for_shard(self, shard: int) -> "GridPartitioner":
        if not 0 <= shard < self.nshards:
            raise ClusterError(f"shard {shard} out of range (0..{self.nshards - 1})")
        return GridPartitioner(self.spec, self.nshards, self.halo, shard)

    def to_wire(self) -> Dict[str, Any]:
        wire: Dict[str, Any] = {
            "spec": {
                "min_x": self.spec.min_x,
                "min_y": self.spec.min_y,
                "tile_w": self.spec.tile_w,
                "tile_h": self.spec.tile_h,
                "nx": self.spec.nx,
                "ny": self.spec.ny,
            },
            "shards": self.nshards,
            "halo": self.halo,
        }
        if self.shard is not None:
            wire["shard"] = self.shard
        return wire

    @classmethod
    def from_wire(cls, wire: Dict[str, Any]) -> "GridPartitioner":
        spec = wire["spec"]
        return cls(
            GridSpec(
                float(spec["min_x"]),
                float(spec["min_y"]),
                float(spec["tile_w"]),
                float(spec["tile_h"]),
                int(spec["nx"]),
                int(spec["ny"]),
            ),
            int(wire["shards"]),
            float(wire.get("halo", 0.0)),
            int(wire["shard"]) if "shard" in wire else None,
        )

    @classmethod
    def build(
        cls,
        box: MBR,
        nshards: int,
        n_entries: int,
        halo: float = 0.0,
    ) -> "GridPartitioner":
        """Choose a grid over the data domain and split it across shards.

        Reuses :func:`~repro.engine.cost.pick_grid_shape` (same heuristic
        as the parallel grid join, with the shard count as the degree),
        then widens the grid if needed so every shard owns at least one
        tile.
        """
        from repro.core.grid_partition import build_grid_spec
        from repro.engine.cost import pick_grid_shape

        if nshards < 1:
            raise ClusterError(f"nshards must be >= 1, got {nshards}")
        nx, ny = pick_grid_shape(n_entries, n_entries, nshards)
        while nx * ny < nshards:
            nx += 1
        return cls(build_grid_spec(box, nx, ny), nshards, halo)


def _first_tile_of(shard: int, nshards: int, n_tiles: int) -> int:
    """Smallest tile id owned by ``shard`` (= ``n_tiles`` for the end mark).

    Inverse of ``shard_of_tile``: the block boundary is the ceiling of
    ``shard * n_tiles / nshards``.
    """
    if shard >= nshards:
        return n_tiles
    return -(-shard * n_tiles // nshards)
