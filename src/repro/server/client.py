"""Blocking JSON-lines client for the spatial query service.

Small and dependency-free (plain sockets), used by the shell's ``client``
mode, the server benchmark and the CI smoke test.  A
:class:`RemoteSession` mirrors the table-function protocol client-side::

    with QueryClient(port=port) as client:
        session = client.start("spatial_join", {
            "table_a": "counties", "column_a": "geom",
            "table_b": "counties", "column_b": "geom",
        })
        for pair in session.rows(page=512):   # start / fetch(n) / close
            ...

Transient failures are retried with exponential backoff + jitter (see
:meth:`QueryClient.request`): ``OVERLOADED`` rejections always (the
server's admission control explicitly invites a retry, and rejecting a
request changes no server state), connection loss only while the client
holds **no** live sessions — a reconnect after a reset silently destroys
every server-side session the connection owned, so mid-stream resets
surface as a typed :class:`~repro.errors.RetriableError` and the caller
decides whether to restart the query from the top.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import ProtocolError, RetriableError, ServerError
from repro.obs import trace
from repro.server import protocol

__all__ = ["RemoteError", "RemoteSession", "QueryClient"]


class RemoteError(ServerError):
    """An error response from the server, carrying its wire code."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.remote_message = message


class QueryClient:
    """One connection to a running :class:`SpatialQueryServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = 30.0,
        retries: int = 3,
        backoff: float = 0.05,
        backoff_cap: float = 1.0,
        jitter: float = 0.25,
        rng: Optional[random.Random] = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = max(1, int(retries))
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.jitter = jitter
        self._rng = rng if rng is not None else random.Random()
        self._next_id = 0
        self._live_sessions: set = set()
        self.retry_count = 0  # observable: how many attempts were retried
        self._connect_with_retry()

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._file = self._sock.makefile("rwb")

    def _connect_with_retry(self) -> None:
        """Initial connect with the same backoff policy as :meth:`request`.

        A router (or test) racing a shard's startup sees a refused
        connection for a few milliseconds; that is exactly as transient as
        an ``OVERLOADED`` rejection, so it gets the same exponential
        backoff instead of leaking a raw ``ConnectionRefusedError``.
        Exhausting the retries raises a typed
        :class:`~repro.errors.RetriableError` (``code="CONNECT_FAILED"``)
        the caller can distinguish from a protocol failure.
        """
        last_exc: Optional[BaseException] = None
        for attempt in range(self.retries):
            try:
                self._connect()
                return
            except ConnectionRefusedError as exc:
                last_exc = exc
                if attempt == self.retries - 1:
                    break
                self.retry_count += 1
                self._backoff_sleep(attempt)
        raise RetriableError(
            f"cannot connect to {self.host}:{self.port} after "
            f"{self.retries} attempt(s): {last_exc}",
            code="CONNECT_FAILED",
        ) from last_exc

    def _backoff_sleep(self, attempt: int) -> None:
        delay = min(self.backoff * (2.0 ** attempt), self.backoff_cap)
        # Full jitter fraction: desynchronises a herd of rejected clients.
        delay *= 1.0 + self.jitter * self._rng.random()
        time.sleep(delay)

    # ------------------------------------------------------------------
    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request and wait for its response (raises RemoteError).

        Retries up to ``retries`` attempts on ``OVERLOADED`` and — only
        with no live sessions — on connection loss (reconnecting first).
        Connection loss while sessions are open raises
        :class:`~repro.errors.RetriableError` instead: the sessions are
        gone server-side and silently retrying a mid-stream fetch would
        skip or duplicate rows.  A *timeout* is never retried
        transparently either, even with no sessions: the server may have
        executed the request and only the response was lost, so re-sending
        a state-creating op such as ``start`` would duplicate it — a
        ``RetriableError(code="TIMEOUT")`` is raised instead.
        """
        last_exc: Optional[BaseException] = None
        for attempt in range(self.retries):
            try:
                return self._request_once(op, fields)
            except RemoteError as exc:
                if (
                    exc.code != protocol.ERR_OVERLOADED
                    or attempt == self.retries - 1
                ):
                    raise
                last_exc = exc
            except (ProtocolError, OSError) as exc:
                if self._live_sessions:
                    lost = len(self._live_sessions)
                    # The client object stays usable: the dead sessions are
                    # forgotten and the next request reconnects.
                    self._live_sessions.clear()
                    self._disconnect()
                    raise RetriableError(
                        f"connection lost with {lost} live session(s) "
                        f"({exc}); the server has dropped them — restart "
                        "the query to retry",
                        code="CONNECTION_LOST",
                    ) from exc
                if isinstance(exc, socket.timeout):
                    # A timeout is not a rejection: the server may have
                    # executed the request (a 'start' would have created a
                    # session) and only the response was slow or lost.
                    # Re-sending would silently duplicate the work, so
                    # surface it and let the caller decide.
                    self._disconnect()
                    raise RetriableError(
                        f"request '{op}' timed out awaiting a response; the "
                        "server may have executed it — not retried "
                        "automatically",
                        code="TIMEOUT",
                    ) from exc
                # Drop the dead connection in every case — a long-lived
                # caller (the WAL follower's tail loop, a health prober)
                # retries at its own pace and must get a fresh socket on
                # its next request, not this corpse.
                self._disconnect()
                if attempt == self.retries - 1:
                    raise
                last_exc = exc
            self.retry_count += 1
            self._backoff_sleep(attempt)
        raise last_exc if last_exc is not None else ProtocolError(
            "request retries exhausted"
        )

    def _disconnect(self) -> None:
        try:
            self.close()
        except OSError:
            pass
        self._sock = None
        self._file = None

    def _request_once(self, op: str, fields: Dict[str, Any]) -> Dict[str, Any]:
        if self._sock is None:
            self._connect()
        self._next_id += 1
        message = {"id": self._next_id, "op": op}
        message.update(fields)
        self._file.write(protocol.encode(message))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ProtocolError("server closed the connection")
        response = protocol.decode_line(line)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise RemoteError(
                error.get("code", protocol.ERR_INTERNAL),
                error.get("message", "unknown server error"),
            )
        return response

    def send_raw(self, payload: bytes) -> None:
        """Write raw bytes (protocol tests exercise malformed frames)."""
        self._file.write(payload)
        self._file.flush()

    def read_response(self) -> Dict[str, Any]:
        line = self._file.readline()
        if not line:
            raise ProtocolError("server closed the connection")
        return protocol.decode_line(line)

    # ------------------------------------------------------------------
    def ping(self) -> bool:
        return bool(self.request("ping").get("pong"))

    def stats(self, raw: bool = False) -> Dict[str, Any]:
        return self.request("stats", raw=raw)["stats"]

    def metrics(self) -> str:
        """Prometheus text exposition of the server's runtime metrics."""
        return self.request("metrics")["text"]

    def start(
        self,
        kind: str,
        params: Optional[Dict[str, Any]] = None,
        deadline_ms: Optional[int] = None,
        trace_ctx: Optional[Dict[str, Any]] = None,
    ) -> "RemoteSession":
        fields: Dict[str, Any] = {"kind": kind, "params": params or {}}
        if deadline_ms is not None:
            fields["deadline_ms"] = deadline_ms
        # Propagate the caller's trace context: explicit wins, else the
        # innermost open span on this thread (None when tracing is off).
        if trace_ctx is None:
            trace_ctx = trace.wire_ctx()
        if trace_ctx is not None:
            fields["trace_ctx"] = trace_ctx
        response = self.request("start", **fields)
        self._live_sessions.add(response["session"])
        return RemoteSession(
            self,
            response["session"],
            {
                k: v
                for k, v in response.items()
                if k not in ("id", "ok", "session")
            },
        )

    def fetch(self, session_id: str, n: int) -> Tuple[List[Any], bool]:
        response = self.request("fetch", session=session_id, n=n)
        return response["rows"], bool(response["eof"])

    def close_session(self, session_id: str) -> Dict[str, Any]:
        try:
            return self.request("close", session=session_id).get("summary", {})
        finally:
            self._live_sessions.discard(session_id)

    def trace(self, session_id: str) -> Dict[str, Any]:
        """The stitched distributed trace of a session this client ran.

        Returns ``{"trace": <wire id>, "spans": [...], "tree": [...]}``
        where ``spans`` are wire-form span dicts (router + every
        participating shard + executor workers, stitched server-side)
        and ``tree`` is their nested
        :func:`repro.obs.trace.build_tree` form.  Works after the
        session closed — the server keeps a bounded registry.  Raises
        :class:`RemoteError` (``UNKNOWN_SESSION``) when tracing was off.
        """
        response = self.request("trace.get", session=session_id)
        spans = response.get("spans", [])
        return {
            "trace": response.get("trace"),
            "spans": spans,
            "tree": trace.build_tree(spans),
        }

    def interrupt(self) -> None:
        """Unblock a wire call stuck on this connection, from another thread.

        Shutting down both socket directions makes a blocked ``recv``
        return immediately (surfacing as connection loss to the caller)
        without racing ``close`` on the file object the blocked thread
        still holds.  Used by the router's graceful drain to cancel
        in-flight scatter-gather fan-outs promptly instead of letting
        them sit out the socket timeout.
        """
        sock = getattr(self, "_sock", None)
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def close(self) -> None:
        if self._sock is None:
            return
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "QueryClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class RemoteSession:
    """Client half of one paged query session."""

    def __init__(self, client: QueryClient, session_id: str, extra: Dict[str, Any]):
        self._client = client
        self.session_id = session_id
        self.extra = extra
        self.eof = False
        self.closed = False

    @property
    def columns(self) -> List[str]:
        return self.extra.get("columns", [])

    @property
    def trace_id(self) -> Optional[str]:
        """Wire trace id of this query (None when tracing is off)."""
        return self.extra.get("trace")

    def trace(self) -> Dict[str, Any]:
        """Fetch this session's stitched trace (see QueryClient.trace)."""
        return self._client.trace(self.session_id)

    def fetch(self, n: int = 1024) -> Tuple[List[Any], bool]:
        rows, self.eof = self._client.fetch(self.session_id, n)
        return rows, self.eof

    def rows(self, page: int = 1024) -> Iterator[Any]:
        """Page through the whole result, closing the session at the end."""
        try:
            while not self.eof:
                rows, _ = self.fetch(page)
                yield from rows
        finally:
            self.close()

    def all(self, page: int = 1024) -> List[Any]:
        return list(self.rows(page))

    def close(self) -> Dict[str, Any]:
        if self.closed:
            return {}
        self.closed = True
        return self._client.close_session(self.session_id)
