"""Blocking JSON-lines client for the spatial query service.

Small and dependency-free (plain sockets), used by the shell's ``client``
mode, the server benchmark and the CI smoke test.  A
:class:`RemoteSession` mirrors the table-function protocol client-side::

    with QueryClient(port=port) as client:
        session = client.start("spatial_join", {
            "table_a": "counties", "column_a": "geom",
            "table_b": "counties", "column_b": "geom",
        })
        for pair in session.rows(page=512):   # start / fetch(n) / close
            ...
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import ProtocolError, ServerError
from repro.server import protocol

__all__ = ["RemoteError", "RemoteSession", "QueryClient"]


class RemoteError(ServerError):
    """An error response from the server, carrying its wire code."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.remote_message = message


class QueryClient:
    """One connection to a running :class:`SpatialQueryServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = 30.0,
    ):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    # ------------------------------------------------------------------
    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request and wait for its response (raises RemoteError)."""
        self._next_id += 1
        message = {"id": self._next_id, "op": op}
        message.update(fields)
        self._file.write(protocol.encode(message))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ProtocolError("server closed the connection")
        response = protocol.decode_line(line)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise RemoteError(
                error.get("code", protocol.ERR_INTERNAL),
                error.get("message", "unknown server error"),
            )
        return response

    def send_raw(self, payload: bytes) -> None:
        """Write raw bytes (protocol tests exercise malformed frames)."""
        self._file.write(payload)
        self._file.flush()

    def read_response(self) -> Dict[str, Any]:
        line = self._file.readline()
        if not line:
            raise ProtocolError("server closed the connection")
        return protocol.decode_line(line)

    # ------------------------------------------------------------------
    def ping(self) -> bool:
        return bool(self.request("ping").get("pong"))

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")["stats"]

    def start(
        self,
        kind: str,
        params: Optional[Dict[str, Any]] = None,
        deadline_ms: Optional[int] = None,
    ) -> "RemoteSession":
        fields: Dict[str, Any] = {"kind": kind, "params": params or {}}
        if deadline_ms is not None:
            fields["deadline_ms"] = deadline_ms
        response = self.request("start", **fields)
        extra = {
            k: v
            for k, v in response.items()
            if k not in ("id", "ok", "session")
        }
        return RemoteSession(self, response["session"], extra)

    def fetch(self, session_id: str, n: int) -> Tuple[List[Any], bool]:
        response = self.request("fetch", session=session_id, n=n)
        return response["rows"], bool(response["eof"])

    def close_session(self, session_id: str) -> Dict[str, Any]:
        return self.request("close", session=session_id).get("summary", {})

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "QueryClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class RemoteSession:
    """Client half of one paged query session."""

    def __init__(self, client: QueryClient, session_id: str, extra: Dict[str, Any]):
        self._client = client
        self.session_id = session_id
        self.extra = extra
        self.eof = False
        self.closed = False

    @property
    def columns(self) -> List[str]:
        return self.extra.get("columns", [])

    def fetch(self, n: int = 1024) -> Tuple[List[Any], bool]:
        rows, self.eof = self._client.fetch(self.session_id, n)
        return rows, self.eof

    def rows(self, page: int = 1024) -> Iterator[Any]:
        """Page through the whole result, closing the session at the end."""
        try:
            while not self.eof:
                rows, _ = self.fetch(page)
                yield from rows
        finally:
            self.close()

    def all(self, page: int = 1024) -> List[Any]:
        return list(self.rows(page))

    def close(self) -> Dict[str, Any]:
        if self.closed:
            return {}
        self.closed = True
        return self._client.close_session(self.session_id)
