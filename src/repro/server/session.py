"""Server-side query sessions: ODCITable state, held across wire calls.

A :class:`ServerSession` is the server's half of one started query: the
row stream (usually a live generator draining a pipelined table function),
the :class:`~repro.engine.parallel.WorkerContext` whose meter bills the
session's work, the optional deadline, and the close/cancel bookkeeping.

Cancellation is *cooperative*: ``fetch`` checks the deadline and the
cancel flag between rows, and closing the session closes the underlying
generator — which raises ``GeneratorExit`` at the suspended ``yield``
inside :func:`~repro.engine.table_function.pipeline`, running its
``finally`` clause and therefore the table function's ``close``.  Nothing
keeps producing rows for a client that stopped listening.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Iterator, List, Optional, Tuple

from repro.errors import ServerError
from repro.engine.parallel import WorkerContext
from repro.obs import trace
from repro.server.protocol import ERR_DEADLINE

__all__ = ["SessionCancelled", "ServerSession"]


class SessionCancelled(ServerError):
    """Raised by ``fetch`` when the session was cancelled or timed out."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


class ServerSession:
    """One started query, paging rows until exhausted, closed or cancelled."""

    def __init__(
        self,
        session_id: str,
        kind: str,
        rows: Iterator[Any],
        ctx: WorkerContext,
        lock: Optional[threading.Lock] = None,
        deadline: Optional[float] = None,
        trace_span: Any = None,
    ):
        self.session_id = session_id
        self.kind = kind
        self.ctx = ctx
        self.deadline = deadline  # absolute time.monotonic() bound
        self.rows_served = 0
        self.exhausted = False
        self.closed = False
        self.created = time.monotonic()
        #: the long-lived ``server.session`` span (opened stack-free by
        #: the server); fetch spans parent under it, close() finishes it
        self.trace_span = trace_span
        self._rows = rows
        self._lock = lock
        self._cancelled: Optional[Tuple[str, str]] = None  # (code, message)

    # ------------------------------------------------------------------
    def cancel(self, code: str, message: Optional[str] = None) -> None:
        """Mark the session cancelled with a typed code (e.g. shutdown).

        Cooperative like the deadline: the *next* fetch raises the typed
        :class:`SessionCancelled` instead of rows.  If the row stream
        knows how to interrupt in-flight work (the router's gather
        stream unblocks its shard sockets), that hook is invoked too, so
        a fetch blocked on the wire fails over to the typed error now
        rather than at socket timeout.
        """
        self._cancelled = (
            code,
            message or f"session {self.session_id} cancelled ({code})",
        )
        canceller = getattr(self._rows, "cancel", None)
        if canceller is not None:
            try:
                canceller()
            except Exception:
                pass  # cancellation is best-effort; close() still reclaims

    def _check_cancelled(self) -> None:
        if self._cancelled is not None:
            code, message = self._cancelled
            self.close()
            raise SessionCancelled(code, message)

    def _check_deadline(self) -> None:
        if self.deadline is not None and time.monotonic() > self.deadline:
            self.close()
            raise SessionCancelled(
                ERR_DEADLINE,
                f"session {self.session_id} exceeded its deadline",
            )

    def fetch(self, n: int) -> Tuple[List[Any], bool]:
        """Return up to ``n`` rows and an end-of-results flag.

        Mirrors ``TableFunction.fetch``: an exhausted session keeps
        returning ``([], True)``.  The deadline is rechecked between rows
        so a long page cannot overshoot it by more than one row's work.
        """
        if self.closed:
            if self._cancelled is not None:
                raise SessionCancelled(*self._cancelled)
            raise SessionCancelled(
                ERR_DEADLINE if self.deadline is not None else "CLOSED",
                f"session {self.session_id} is closed",
            )
        self._check_cancelled()
        self._check_deadline()
        if self.exhausted:
            return [], True
        out: List[Any] = []
        lock = self._lock
        parent = (
            self.trace_span
            if isinstance(self.trace_span, trace.Span)
            else None
        )
        with trace.span(
            "server.fetch",
            self.ctx,
            parent=parent,
            session=self.session_id,
            kind=self.kind,
        ) as sp:
            try:
                if lock is not None:
                    lock.acquire()
                try:
                    for _ in range(n):
                        try:
                            out.append(next(self._rows))
                        except StopIteration:
                            self.exhausted = True
                            break
                        if self._cancelled is not None:
                            raise SessionCancelled(*self._cancelled)
                        if self.deadline is not None and (
                            time.monotonic() > self.deadline
                        ):
                            raise SessionCancelled(
                                ERR_DEADLINE,
                                f"session {self.session_id} exceeded its "
                                "deadline mid-fetch",
                            )
                finally:
                    if lock is not None:
                        lock.release()
            except SessionCancelled:
                self.close()
                raise
            sp.set_tag("rows", len(out))
        self.rows_served += len(out)
        return out, self.exhausted

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the underlying cursor/table function (idempotent)."""
        if self.closed:
            return
        self.closed = True
        closer = getattr(self._rows, "close", None)
        if closer is not None:
            lock = self._lock
            if lock is not None:
                with lock:
                    closer()
            else:
                closer()
        sp = self.trace_span
        if sp is not None:
            self.trace_span = None
            sp.set_tag("rows", self.rows_served)
            sp.set_tag("exhausted", self.exhausted)
            sp.finish()

    def close_info(self):
        """Extra close-summary fields the row stream wants to report.

        A plain generator contributes nothing; the router's scatter
        streams expose an ``info`` dict (per-shard row counts, shards
        skipped by partial-failure degradation) that rides home in the
        close response.
        """
        info = getattr(self._rows, "info", None)
        return dict(info) if isinstance(info, dict) else {}

    def meter_counts(self):
        return self.ctx.meter
