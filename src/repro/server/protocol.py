"""Wire protocol of the spatial query service: JSON lines, paged sessions.

The protocol is a wire-level mirror of the paper's ODCITable interface
(§2): a client *starts* a query, *fetches* result pages of an explicit
size, and *closes* the session — so a result set larger than memory (or
than the client wants to hold) streams over the socket exactly the way a
pipelined table function streams rows to the SQL engine.

Framing: one UTF-8 JSON object per ``\\n``-terminated line, both ways.

Requests::

    {"id": 1, "op": "start", "kind": "spatial_join", "params": {...},
     "deadline_ms": 2000}                 -- optional per-session deadline
    {"id": 2, "op": "fetch", "session": "s1", "n": 256}
    {"id": 3, "op": "close", "session": "s1"}
    {"id": 4, "op": "stats"}
    {"id": 5, "op": "metrics"}            -- Prometheus text exposition
    {"id": 6, "op": "ping"}

Responses echo the request ``id``::

    {"id": 1, "ok": true, "session": "s1"}
    {"id": 2, "ok": true, "rows": [...], "eof": false}
    {"id": 3, "ok": false, "error": {"code": "UNKNOWN_SESSION",
                                     "message": "..."}}

Query kinds (``start``): ``window`` and ``knn`` run operator queries
through the spatial index, ``sql`` executes one SQL statement, and
``spatial_join`` streams rowid pairs straight out of the join table
function without ever materialising the full result server-side.

Trace context (observability): a ``start`` request may carry::

    "trace_ctx": {"trace": "<pid:x>-<trace:x>", "span": 17,
                  "pid": 4321, "sampled": true}

``trace`` is the globally-unique wire id of the caller's trace,
``span``/``pid`` name the parent span so the server's session span nests
under it, and ``sampled`` propagates the caller's sampling decision.
When tracing is enabled the start response includes ``"trace"`` (the
session's wire trace id) and ``trace.get`` returns the finished spans of
that session — on a router, stitched across every participating shard
(each shard ships its spans home via ``trace.drain``).  ``obs.plane``
returns the metrics/SLO plane snapshot when one is attached.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ProtocolError

__all__ = [
    "MAX_LINE_BYTES",
    "OPS",
    "OBS_OPS",
    "WAL_OPS",
    "ROUTER_OPS",
    "KINDS",
    "ERR_BAD_REQUEST",
    "ERR_UNKNOWN_OP",
    "ERR_UNKNOWN_SESSION",
    "ERR_OVERLOADED",
    "ERR_DEADLINE",
    "ERR_SHUTTING_DOWN",
    "ERR_INTERNAL",
    "ERR_SHARD_FAILED",
    "ERR_REPLICATION",
    "encode",
    "decode_line",
    "ok_response",
    "error_response",
    "jsonify_value",
    "jsonify_row",
    "rowid_to_wire",
    "rowid_from_wire",
]

#: one wire message must fit in this many bytes (also the asyncio limit)
MAX_LINE_BYTES = 1 << 20

OPS = ("start", "fetch", "close", "stats", "metrics", "ping")
KINDS = ("window", "knn", "sql", "spatial_join")

#: observability ops: every server answers ``trace.get`` (the stitched
#: spans of one session, by session id); ``obs.plane`` is registered only
#: when a metrics/SLO plane is attached to the server
OBS_OPS = ("trace.get", "obs.plane")

#: extra ops a WAL-backed shard server registers (leader-side replication:
#: durable commit, log tailing and LSN acks, snapshot bootstrap) plus span
#: shipping for router-side trace stitching
WAL_OPS = ("commit", "wal.tail", "wal.ack", "wal.snapshot", "trace.drain")
#: extra ops only the cluster router answers (partitioned writes, topology,
#: resilience status: breaker states, retry counters, shard health)
ROUTER_OPS = ("put", "topology", "health")

ERR_BAD_REQUEST = "BAD_REQUEST"
ERR_UNKNOWN_OP = "UNKNOWN_OP"
ERR_UNKNOWN_SESSION = "UNKNOWN_SESSION"
ERR_OVERLOADED = "OVERLOADED"
ERR_DEADLINE = "DEADLINE_EXCEEDED"
ERR_SHUTTING_DOWN = "SHUTTING_DOWN"
ERR_INTERNAL = "INTERNAL"
ERR_SHARD_FAILED = "SHARD_FAILED"
ERR_REPLICATION = "REPLICATION_LAG"


def encode(message: Dict[str, Any]) -> bytes:
    """Render one message as a newline-terminated JSON line."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one received line into a message dict."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"message exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed JSON line: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


def ok_response(request_id: Any, **fields: Any) -> Dict[str, Any]:
    response = {"id": request_id, "ok": True}
    response.update(fields)
    return response


def error_response(request_id: Any, code: str, message: str) -> Dict[str, Any]:
    return {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }


# ----------------------------------------------------------------------
# Row serialisation
# ----------------------------------------------------------------------
def rowid_to_wire(rowid) -> List[int]:
    """A rowid travels as ``[page, slot]``."""
    return [rowid.page, rowid.slot]


def rowid_from_wire(value) -> Tuple[int, int]:
    """Decode a wire rowid into a ``(page, slot)`` tuple."""
    page, slot = value
    return (int(page), int(slot))


def jsonify_value(value: Any) -> Any:
    """Map one result cell to a JSON-safe value (geometries become WKT)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    # RowId and Geometry are the two structured cell types; detect by
    # duck-typing to keep this module import-light.
    if hasattr(value, "page") and hasattr(value, "slot"):
        return rowid_to_wire(value)
    if hasattr(value, "to_wkt"):
        return value.to_wkt()
    if hasattr(value, "num_vertices"):  # Geometry without a to_wkt method
        from repro.geometry.wkt import to_wkt

        return to_wkt(value)
    return str(value)


def jsonify_row(row) -> List[Any]:
    return [jsonify_value(v) for v in row]
