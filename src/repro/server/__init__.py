"""``repro.server`` — the concurrent spatial query service.

A wire-level mirror of the paper's pipelined table functions: queries are
*sessions* whose results page over a JSON-lines TCP protocol via explicit
``start`` / ``fetch(n)`` / ``close`` messages (ODCITableStart/Fetch/Close
on a socket), so a client can consume a spatial join larger than either
side's memory.

* :mod:`repro.server.protocol` — message framing, codes, row encoding
* :mod:`repro.server.session` — server-side session state, deadlines,
  cooperative cancellation
* :mod:`repro.server.service` — query kinds (window/knn/sql/spatial_join)
  mapped onto engine row streams
* :mod:`repro.server.metrics` — request/latency histograms + aggregated
  :class:`~repro.engine.cost.WorkMeter` counters (the ``stats`` endpoint)
* :mod:`repro.server.app` — the asyncio server: admission control,
  graceful shutdown, the thread-pool executor bridge
* :mod:`repro.server.client` — a small blocking client
"""

from repro.server.app import BackgroundServer, SpatialQueryServer, serve
from repro.server.client import QueryClient, RemoteError, RemoteSession
from repro.server.metrics import ServerMetrics
from repro.server.service import QueryService
from repro.server.session import ServerSession, SessionCancelled

__all__ = [
    "SpatialQueryServer",
    "BackgroundServer",
    "serve",
    "QueryClient",
    "RemoteSession",
    "RemoteError",
    "QueryService",
    "ServerSession",
    "SessionCancelled",
    "ServerMetrics",
]
