"""Runtime metrics for the query service.

The ``stats`` endpoint reports three layers of observability:

* **requests** — per-op counters (count/errors) for every wire operation;
* **queries** — per-kind request/latency histograms (count, error count,
  rows served, p50/p90/p99/max latency in milliseconds);
* **meters** — the engine's own :class:`~repro.engine.cost.WorkMeter` op
  counters (MBR tests, node visits, exact predicate evaluations, ...)
  aggregated per query kind, so the simulated-cost accounting that drives
  the benchmarks is visible for served traffic too;
* **sessions** — lifecycle counters (opened / closed / cancelled by
  deadline / closed by client disconnect / rejected) plus the live count,
  which is how tests assert the server does not leak sessions.

All mutators take an internal lock: fetches run on a thread pool, so the
metrics object is the one piece of server state shared across threads.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, List, Optional

from repro.engine.cost import WorkMeter

__all__ = ["LatencyHistogram", "ServerMetrics", "aggregate_snapshots"]


def _bucket_bounds() -> List[float]:
    """Log-spaced latency bucket upper bounds, in seconds (0.1ms..~2min)."""
    bounds = []
    value = 0.0001
    while value < 120.0:
        bounds.append(value)
        value *= 2.0
    return bounds


_BOUNDS = _bucket_bounds()

#: keys every snapshot's ``storage`` section carries, zeroed when the
#: database runs without a durable pager (``durability="none"``) so
#: scrapers see a stable schema regardless of deployment mode.
_STORAGE_ZERO: Dict[str, Any] = {
    "durability": "none",
    "num_pages": 0,
    "page_size": 0,
    "physical_reads": 0,
    "physical_writes": 0,
    "buffer_hit_ratio": 0.0,
    "prefetches": 0,
    "prefetch_hits": 0,
    "wal_bytes": 0,
    "recovered_pages": 0,
    "columnar_segments": 0,
    "columnar_chunks": 0,
    "columnar_pages": 0,
    "columnar_journal_rows": 0,
    "columnar_zone_prunes": 0,
}


class LatencyHistogram:
    """Fixed log-bucket latency histogram with percentile estimates."""

    __slots__ = ("counts", "total", "sum_seconds", "max_seconds")

    def __init__(self) -> None:
        self.counts = [0] * (len(_BOUNDS) + 1)
        self.total = 0
        self.sum_seconds = 0.0
        self.max_seconds = 0.0

    def record(self, seconds: float) -> None:
        self.counts[bisect_left(_BOUNDS, seconds)] += 1
        self.total += 1
        self.sum_seconds += seconds
        self.max_seconds = max(self.max_seconds, seconds)

    def percentile(self, p: float) -> float:
        """Bucket upper bound for the p-th percentile, clamped (seconds).

        The answer is never larger than the maximum value actually
        recorded: a single 0.15ms sample must not report a 0.2ms p99
        just because that is its bucket's upper bound, and the overflow
        bucket (which has no finite bound) likewise reports the observed
        max.
        """
        if self.total == 0:
            return 0.0
        rank = max(1, int(p / 100.0 * self.total + 0.5))
        seen = 0
        for i, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                bound = _BOUNDS[i] if i < len(_BOUNDS) else self.max_seconds
                return min(bound, self.max_seconds)
        return self.max_seconds  # pragma: no cover - defensive

    def snapshot(self) -> Dict[str, Any]:
        mean = self.sum_seconds / self.total if self.total else 0.0
        return {
            "count": self.total,
            "mean_ms": round(mean * 1000.0, 3),
            "p50_ms": round(self.percentile(50) * 1000.0, 3),
            "p90_ms": round(self.percentile(90) * 1000.0, 3),
            "p99_ms": round(self.percentile(99) * 1000.0, 3),
            "max_ms": round(self.max_seconds * 1000.0, 3),
        }

    # -- cross-process aggregation (router-side rollup) -----------------
    def raw(self) -> Dict[str, Any]:
        """Wire-safe dump of the histogram's internal state."""
        return {
            "counts": list(self.counts),
            "total": self.total,
            "sum_seconds": self.sum_seconds,
            "max_seconds": self.max_seconds,
        }

    @classmethod
    def from_raw(cls, raw: Dict[str, Any]) -> "LatencyHistogram":
        """Rebuild a histogram from :meth:`raw` output (possibly produced
        by a process whose bucket table had a different length)."""
        hist = cls()
        hist.merge_raw(raw)
        return hist

    @staticmethod
    def _aligned(counts: List[int], target_len: int) -> List[int]:
        """Fit a bucket-count list to ``target_len`` buckets.

        The overflow bucket lives at the *end*; growing pads zeros before
        it (new finite buckets cover latencies the short table overflowed
        into conservatively), shrinking folds the surplus finite buckets
        into the overflow.  Either way no sample is lost or misfiled into
        a mid-range bucket.
        """
        counts = [int(c) for c in counts]
        if not counts:
            return [0] * target_len
        if len(counts) == target_len:
            return counts
        if len(counts) < target_len:
            pad = target_len - len(counts)
            return counts[:-1] + [0] * pad + counts[-1:]
        keep = target_len - 1
        return counts[:keep] + [sum(counts[keep:])]

    def merge_raw(self, raw: Dict[str, Any]) -> None:
        """Fold a :meth:`raw` dump into this histogram."""
        other_counts = self._aligned(
            list(raw.get("counts", [])), len(self.counts)
        )
        for i, c in enumerate(other_counts):
            self.counts[i] += c
        self.total += int(raw.get("total", 0))
        self.sum_seconds += float(raw.get("sum_seconds", 0.0))
        self.max_seconds = max(self.max_seconds, float(raw.get("max_seconds", 0.0)))

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram into this one (bucket-wise sum).

        Tolerates a mismatched bucket count (an older process with a
        shorter/longer bound table) via :meth:`_aligned`.
        """
        self.merge_raw(other.raw())


class ServerMetrics:
    """Thread-safe aggregate of everything the ``stats`` endpoint reports.

    ``shard_id`` tags every snapshot (and the Prometheus exposition) when
    this server is one shard of a cluster, so the router's rollup and a
    scraper hitting a shard directly agree on provenance.
    """

    def __init__(self, shard_id: Optional[int] = None) -> None:
        self.shard_id = shard_id
        self._lock = threading.Lock()
        self._requests: Dict[str, Dict[str, int]] = {}
        self._latency: Dict[str, LatencyHistogram] = {}
        self._rows: Dict[str, int] = {}
        self._errors: Dict[str, int] = {}
        self._meters: Dict[str, WorkMeter] = {}
        self.sessions = {
            "opened": 0,
            "closed": 0,
            "exhausted": 0,
            "cancelled_deadline": 0,
            "closed_disconnect": 0,
            "cancelled_shutdown": 0,
            "rejected_overload": 0,
            "rejected_shutdown": 0,
        }
        # Resilience events (cluster router): zero-initialised so the
        # exposition schema is stable whether or not faults ever happen.
        self.resilience = {
            "retries": 0,
            "rescatters": 0,
            "hedges": 0,
            "write_retries": 0,
            "breaker_open": 0,
            "failovers": 0,
            "scatters": 0,
            "scatter_width_total": 0,
            "deadline_misses": 0,
            "trace_drain_failed": 0,
        }

    # ------------------------------------------------------------------
    def record_request(self, op: str, ok: bool) -> None:
        with self._lock:
            entry = self._requests.setdefault(op, {"count": 0, "errors": 0})
            entry["count"] += 1
            if not ok:
                entry["errors"] += 1

    def record_query(
        self, kind: str, seconds: float, rows: int, ok: bool = True
    ) -> None:
        """One query-serving request (a ``start`` or ``fetch``) finished."""
        with self._lock:
            self._latency.setdefault(kind, LatencyHistogram()).record(seconds)
            self._rows[kind] = self._rows.get(kind, 0) + rows
            if not ok:
                self._errors[kind] = self._errors.get(kind, 0) + 1

    def merge_meter(self, kind: str, meter: WorkMeter) -> None:
        """Fold one finished session's op counters into the per-kind total."""
        with self._lock:
            self._meters.setdefault(kind, WorkMeter()).merge(meter)

    def bump_session(self, event: str, n: int = 1) -> None:
        with self._lock:
            self.sessions[event] = self.sessions.get(event, 0) + n

    def bump_resilience(self, event: str, n: int = 1) -> None:
        """One retry/hedge/re-scatter/breaker/failover event occurred."""
        with self._lock:
            self.resilience[event] = self.resilience.get(event, 0) + n

    # ------------------------------------------------------------------
    def snapshot(
        self,
        active_sessions: int = 0,
        storage: Optional[Dict[str, Any]] = None,
        raw: bool = False,
    ) -> Dict[str, Any]:
        """All counters; ``storage`` (the engine's ``storage_stats()``)
        rides along under its own key so operators see WAL volume and
        crash-recovery work next to the serving metrics.  ``raw=True``
        additionally ships each latency histogram's bucket counts
        (``latency_raw``) so a router can merge per-shard histograms
        exactly instead of averaging percentile estimates."""
        with self._lock:
            queries = {}
            for kind, hist in self._latency.items():
                queries[kind] = {
                    "latency": hist.snapshot(),
                    "rows": self._rows.get(kind, 0),
                    "errors": self._errors.get(kind, 0),
                }
                if raw:
                    queries[kind]["latency_raw"] = hist.raw()
            snap = {
                "requests": {
                    op: dict(counts) for op, counts in self._requests.items()
                },
                "queries": queries,
                "meters": {
                    kind: {
                        unit: count for unit, count in sorted(m.counts.items())
                    }
                    for kind, m in self._meters.items()
                },
                "sessions": dict(self.sessions, active=active_sessions),
                "resilience": dict(self.resilience),
                "storage": dict(_STORAGE_ZERO, **storage)
                if storage
                else dict(_STORAGE_ZERO),
            }
            if self.shard_id is not None:
                snap["shard_id"] = self.shard_id
            return snap


def aggregate_snapshots(snaps: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge per-shard :meth:`ServerMetrics.snapshot` dicts into one.

    Request/row/error/session counters sum; latency histograms merge
    bucket-wise through :class:`LatencyHistogram` (using ``latency_raw``
    when the shard shipped it, so cluster-wide percentiles come from real
    counts, not averaged per-shard percentiles); meters sum per unit.
    The per-shard ``storage`` sections are kept under ``shards`` keyed by
    shard id rather than summed — page counts from different files are
    not meaningfully additive.
    """
    out: Dict[str, Any] = {
        "requests": {},
        "queries": {},
        "meters": {},
        "sessions": {},
        "resilience": {},
        "storage": dict(_STORAGE_ZERO),
        "shards": {},
    }
    hists: Dict[str, LatencyHistogram] = {}
    for i, snap in enumerate(snaps):
        shard_key = str(snap.get("shard_id", i))
        out["shards"][shard_key] = {
            "storage": snap.get("storage", {}),
            "sessions": snap.get("sessions", {}),
            # Per-shard meters stay visible so a bench can compute the
            # cluster makespan (max over shards of simulated seconds).
            "meters": snap.get("meters", {}),
        }
        for op, counts in snap.get("requests", {}).items():
            entry = out["requests"].setdefault(op, {"count": 0, "errors": 0})
            entry["count"] += counts.get("count", 0)
            entry["errors"] += counts.get("errors", 0)
        for kind, q in snap.get("queries", {}).items():
            entry = out["queries"].setdefault(kind, {"rows": 0, "errors": 0})
            entry["rows"] += q.get("rows", 0)
            entry["errors"] += q.get("errors", 0)
            hist = hists.setdefault(kind, LatencyHistogram())
            if "latency_raw" in q:
                hist.merge_raw(q["latency_raw"])
            else:
                # Estimate-only fallback: count the samples at the shard's
                # reported mean so totals stay right even without raw data.
                latency = q.get("latency", {})
                count = int(latency.get("count", 0))
                mean_s = float(latency.get("mean_ms", 0.0)) / 1000.0
                for _ in range(count):
                    hist.record(mean_s)
        for kind, units in snap.get("meters", {}).items():
            entry = out["meters"].setdefault(kind, {})
            for unit, n in units.items():
                entry[unit] = entry.get(unit, 0.0) + n
        for event, n in snap.get("sessions", {}).items():
            out["sessions"][event] = out["sessions"].get(event, 0) + n
        for event, n in snap.get("resilience", {}).items():
            out["resilience"][event] = out["resilience"].get(event, 0) + n
    for kind, hist in hists.items():
        out["queries"][kind]["latency"] = hist.snapshot()
    return out
