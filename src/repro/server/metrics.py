"""Runtime metrics for the query service.

The ``stats`` endpoint reports three layers of observability:

* **requests** — per-op counters (count/errors) for every wire operation;
* **queries** — per-kind request/latency histograms (count, error count,
  rows served, p50/p90/p99/max latency in milliseconds);
* **meters** — the engine's own :class:`~repro.engine.cost.WorkMeter` op
  counters (MBR tests, node visits, exact predicate evaluations, ...)
  aggregated per query kind, so the simulated-cost accounting that drives
  the benchmarks is visible for served traffic too;
* **sessions** — lifecycle counters (opened / closed / cancelled by
  deadline / closed by client disconnect / rejected) plus the live count,
  which is how tests assert the server does not leak sessions.

All mutators take an internal lock: fetches run on a thread pool, so the
metrics object is the one piece of server state shared across threads.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, List, Optional

from repro.engine.cost import WorkMeter

__all__ = ["LatencyHistogram", "ServerMetrics"]


def _bucket_bounds() -> List[float]:
    """Log-spaced latency bucket upper bounds, in seconds (0.1ms..~2min)."""
    bounds = []
    value = 0.0001
    while value < 120.0:
        bounds.append(value)
        value *= 2.0
    return bounds


_BOUNDS = _bucket_bounds()

#: keys every snapshot's ``storage`` section carries, zeroed when the
#: database runs without a durable pager (``durability="none"``) so
#: scrapers see a stable schema regardless of deployment mode.
_STORAGE_ZERO: Dict[str, Any] = {
    "durability": "none",
    "num_pages": 0,
    "page_size": 0,
    "physical_reads": 0,
    "physical_writes": 0,
    "buffer_hit_ratio": 0.0,
    "wal_bytes": 0,
    "recovered_pages": 0,
}


class LatencyHistogram:
    """Fixed log-bucket latency histogram with percentile estimates."""

    __slots__ = ("counts", "total", "sum_seconds", "max_seconds")

    def __init__(self) -> None:
        self.counts = [0] * (len(_BOUNDS) + 1)
        self.total = 0
        self.sum_seconds = 0.0
        self.max_seconds = 0.0

    def record(self, seconds: float) -> None:
        self.counts[bisect_left(_BOUNDS, seconds)] += 1
        self.total += 1
        self.sum_seconds += seconds
        self.max_seconds = max(self.max_seconds, seconds)

    def percentile(self, p: float) -> float:
        """Upper bound of the bucket holding the p-th percentile (seconds)."""
        if self.total == 0:
            return 0.0
        rank = max(1, int(p / 100.0 * self.total + 0.5))
        seen = 0
        for i, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                return _BOUNDS[i] if i < len(_BOUNDS) else self.max_seconds
        return self.max_seconds  # pragma: no cover - defensive

    def snapshot(self) -> Dict[str, Any]:
        mean = self.sum_seconds / self.total if self.total else 0.0
        return {
            "count": self.total,
            "mean_ms": round(mean * 1000.0, 3),
            "p50_ms": round(self.percentile(50) * 1000.0, 3),
            "p90_ms": round(self.percentile(90) * 1000.0, 3),
            "p99_ms": round(self.percentile(99) * 1000.0, 3),
            "max_ms": round(self.max_seconds * 1000.0, 3),
        }


class ServerMetrics:
    """Thread-safe aggregate of everything the ``stats`` endpoint reports."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._requests: Dict[str, Dict[str, int]] = {}
        self._latency: Dict[str, LatencyHistogram] = {}
        self._rows: Dict[str, int] = {}
        self._errors: Dict[str, int] = {}
        self._meters: Dict[str, WorkMeter] = {}
        self.sessions = {
            "opened": 0,
            "closed": 0,
            "exhausted": 0,
            "cancelled_deadline": 0,
            "closed_disconnect": 0,
            "cancelled_shutdown": 0,
            "rejected_overload": 0,
            "rejected_shutdown": 0,
        }

    # ------------------------------------------------------------------
    def record_request(self, op: str, ok: bool) -> None:
        with self._lock:
            entry = self._requests.setdefault(op, {"count": 0, "errors": 0})
            entry["count"] += 1
            if not ok:
                entry["errors"] += 1

    def record_query(
        self, kind: str, seconds: float, rows: int, ok: bool = True
    ) -> None:
        """One query-serving request (a ``start`` or ``fetch``) finished."""
        with self._lock:
            self._latency.setdefault(kind, LatencyHistogram()).record(seconds)
            self._rows[kind] = self._rows.get(kind, 0) + rows
            if not ok:
                self._errors[kind] = self._errors.get(kind, 0) + 1

    def merge_meter(self, kind: str, meter: WorkMeter) -> None:
        """Fold one finished session's op counters into the per-kind total."""
        with self._lock:
            self._meters.setdefault(kind, WorkMeter()).merge(meter)

    def bump_session(self, event: str, n: int = 1) -> None:
        with self._lock:
            self.sessions[event] = self.sessions.get(event, 0) + n

    # ------------------------------------------------------------------
    def snapshot(
        self,
        active_sessions: int = 0,
        storage: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """All counters; ``storage`` (the engine's ``storage_stats()``)
        rides along under its own key so operators see WAL volume and
        crash-recovery work next to the serving metrics."""
        with self._lock:
            queries = {}
            for kind, hist in self._latency.items():
                queries[kind] = {
                    "latency": hist.snapshot(),
                    "rows": self._rows.get(kind, 0),
                    "errors": self._errors.get(kind, 0),
                }
            return {
                "requests": {
                    op: dict(counts) for op, counts in self._requests.items()
                },
                "queries": queries,
                "meters": {
                    kind: {
                        unit: count for unit, count in sorted(m.counts.items())
                    }
                    for kind, m in self._meters.items()
                },
                "sessions": dict(self.sessions, active=active_sessions),
                "storage": dict(_STORAGE_ZERO, **storage)
                if storage
                else dict(_STORAGE_ZERO),
            }
