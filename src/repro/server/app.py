"""The asyncio query server: admission control, deadlines, drain, stats.

:class:`SpatialQueryServer` listens on a TCP port, speaks the JSON-lines
protocol of :mod:`repro.server.protocol`, and serves each connection as
one asyncio task.  The wire is *pipelined*: a client may send many
requests without waiting; the server answers them in order.  Actual
engine work runs on a small thread pool (the executor bridge) so the
event loop never blocks on a page of join results.

Robustness layers:

* **Admission control** — at most ``max_inflight`` requests may be
  executing/queued on the bridge at once and at most ``max_sessions``
  sessions may be live; excess work is *rejected immediately* with an
  ``OVERLOADED`` error rather than queued without bound (backpressure the
  client can see and retry).
* **Deadlines** — a session started with ``deadline_ms`` (or the server
  default) is cooperatively cancelled at its next fetch once expired; the
  underlying cursor/table function is closed and the session is removed.
* **Disconnect hygiene** — when a connection drops, every session it
  owned is closed and its meters are still folded into the stats, so a
  client vanishing mid-fetch leaks nothing.
* **Graceful shutdown** — ``shutdown()`` stops accepting connections,
  rejects new ``start`` requests with ``SHUTTING_DOWN``, lets live
  sessions drain for ``drain_timeout`` seconds, then cancels stragglers.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, Optional, Set

from repro.errors import ReproError, ServerError
from repro.engine.database import Database
from repro.engine.parallel import WorkerContext
from repro.obs import trace
from repro.server import protocol
from repro.server.metrics import ServerMetrics
from repro.server.service import BadRequest, QueryService
from repro.server.session import ServerSession, SessionCancelled

__all__ = ["SpatialQueryServer", "BackgroundServer", "serve"]

DEFAULT_FETCH_ROWS = 1024
MAX_FETCH_ROWS = 65536


class SpatialQueryServer:
    """One serving instance over one database."""

    def __init__(
        self,
        db: Database,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_inflight: int = 32,
        max_sessions: int = 64,
        default_deadline_ms: Optional[int] = None,
        drain_timeout: float = 10.0,
        fetch_workers: int = 4,
        service: Optional[QueryService] = None,
        shard_id: Optional[int] = None,
        plane: Optional[Any] = None,
    ):
        self.service = service if service is not None else QueryService(db)
        self.db = db
        self.host = host
        self.port = port  # replaced by the bound port after start()
        self.max_inflight = max_inflight
        self.max_sessions = max_sessions
        self.default_deadline_ms = default_deadline_ms
        self.drain_timeout = drain_timeout
        self.shard_id = shard_id
        self.metrics = ServerMetrics(shard_id=shard_id)
        self.replica_acked_lsn = 0  # highest LSN a follower has acked
        self.replica_lag_lsn = 0  # the follower's self-reported lag
        #: optional ObservabilityPlane served over the ``obs.plane`` op
        self.plane = plane
        # session id -> wire trace id / local trace id, kept after close
        # (bounded) so ``trace.get`` works for a query that just finished.
        self._session_traces: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._extra_ops: Dict[str, Any] = {}
        self._register_extra_ops()
        self._sessions: Dict[str, ServerSession] = {}
        self._session_ids = itertools.count(1)
        self._inflight = 0
        self._draining = False
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._closed_event = asyncio.Event()
        from concurrent.futures import ThreadPoolExecutor

        self._pool = ThreadPoolExecutor(
            max_workers=fetch_workers, thread_name_prefix="repro-serve"
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_conn,
            self.host,
            self.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def wait_closed(self) -> None:
        await self._closed_event.wait()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting work, drain live sessions, then close."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain:
            deadline = time.monotonic() + self.drain_timeout
            while self._sessions and time.monotonic() < deadline:
                await asyncio.sleep(0.02)
            # Sessions that outlived the drain window get a *typed* cancel
            # first: their next (or in-flight — the router's gather stream
            # unblocks its shard sockets) fetch answers SHUTTING_DOWN
            # instead of the client discovering the shutdown via a socket
            # timeout.
            for session in list(self._sessions.values()):
                session.cancel(
                    protocol.ERR_SHUTTING_DOWN,
                    f"session {session.session_id} cancelled: "
                    "server shutting down",
                )
            grace = time.monotonic() + min(2.0, self.drain_timeout)
            while self._sessions and time.monotonic() < grace:
                await asyncio.sleep(0.02)
        for session_id in list(self._sessions):
            session = self._sessions.pop(session_id, None)
            if session is not None:
                await self._run_blocking(session.close)
                self.metrics.bump_session("cancelled_shutdown")
                self.metrics.merge_meter(session.kind, session.meter_counts())
        self._pool.shutdown(wait=False)
        self._closed_event.set()

    def request_shutdown(self) -> None:
        """Thread/signal-safe shutdown trigger."""
        if self._loop is None:
            return
        self._loop.call_soon_threadsafe(
            lambda: asyncio.ensure_future(self.shutdown())
        )

    def install_signal_handlers(self) -> None:
        """Make SIGINT/SIGTERM drain the server instead of killing it."""
        import signal

        assert self._loop is not None
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                self._loop.add_signal_handler(signum, self.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-main thread or non-POSIX loop

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn_sessions: Set[str] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                ):  # oversized line
                    writer.write(
                        protocol.encode(
                            protocol.error_response(
                                None,
                                protocol.ERR_BAD_REQUEST,
                                "message too large",
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break  # client closed its end
                if not line.strip():
                    continue
                try:
                    message = protocol.decode_line(line)
                except ReproError as exc:
                    response = protocol.error_response(
                        None, protocol.ERR_BAD_REQUEST, str(exc)
                    )
                else:
                    response = await self._dispatch(message, conn_sessions)
                writer.write(protocol.encode(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            # A vanished client must not leak its sessions.
            for session_id in conn_sessions:
                session = self._sessions.pop(session_id, None)
                if session is not None:
                    await self._run_blocking(session.close)
                    self.metrics.bump_session("closed_disconnect")
                    self.metrics.merge_meter(
                        session.kind, session.meter_counts()
                    )
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _run_blocking(self, fn, *args):
        assert self._loop is not None
        return await self._loop.run_in_executor(self._pool, fn, *args)

    def _storage_stats(self) -> Dict[str, Any]:
        """The engine's storage counters (WAL bytes, recovery work), if any."""
        stats = getattr(self.db, "storage_stats", None)
        if stats is None:
            out: Dict[str, Any] = {}
        else:
            try:
                out = stats()
            except Exception:  # pragma: no cover - must never break serving
                out = {}
        if self._wal_pager() is not None:
            out["replica_acked_lsn"] = self.replica_acked_lsn
            out["replica_lag_lsn"] = self.replica_lag_lsn
        return out

    def _stats_payload(self, raw: bool = False) -> Dict[str, Any]:
        """The ``stats`` response body (overridable: the router aggregates).

        ``raw=True`` (requested by a router) ships latency bucket counts
        alongside the percentile estimates so the rollup merges exactly.
        """
        return self.metrics.snapshot(
            len(self._sessions), storage=self._storage_stats(), raw=raw
        )

    def _metrics_text(self) -> str:
        """The Prometheus exposition (overridable: the router rolls up)."""
        from repro.geometry import kernels
        from repro.obs.exporters import prometheus_text

        text = prometheus_text(
            self._stats_payload(), kernel=kernels.counters()
        )
        if self.plane is not None:
            text += self.plane.prometheus_text()
        return text

    # ------------------------------------------------------------------
    # Extra (cluster/replication) ops
    # ------------------------------------------------------------------
    def _wal_pager(self):
        from repro.storage.wal import WalPager

        pager = getattr(self.db, "pager", None)
        return pager if isinstance(pager, WalPager) else None

    def _register_extra_ops(self) -> None:
        """Ops beyond :data:`protocol.OPS` this server answers.

        The base server registers the leader half of WAL replication
        (durable commit, log tailing, LSN acks, snapshot bootstrap) when
        the database is WAL-backed, plus ``trace.drain`` so a router can
        stitch shard spans into its own trace and ``trace.get`` so a
        client can fetch the stitched tree of a query it just ran.  The
        ``obs.plane`` snapshot op appears only when an observability
        plane is attached.  Subclasses (the cluster router) extend the
        table rather than the ``OPS`` tuple, so an op unknown to *this*
        server is still rejected with ``UNKNOWN_OP``.
        """
        self._extra_ops["trace.drain"] = self._op_trace_drain
        self._extra_ops["trace.get"] = self._op_trace_get
        if self.plane is not None:
            self._extra_ops["obs.plane"] = self._op_obs_plane
        if self._wal_pager() is not None:
            self._extra_ops["commit"] = self._op_commit
            self._extra_ops["wal.tail"] = self._op_wal_tail
            self._extra_ops["wal.ack"] = self._op_wal_ack
            self._extra_ops["wal.snapshot"] = self._op_wal_snapshot

    async def _op_commit(self, request_id, message) -> Dict[str, Any]:
        """Durable commit of everything written so far; returns its LSN."""
        def commit_locked():
            lock = getattr(self.service, "lock", None)
            if lock is not None:
                with lock:
                    return self.db.commit()
            return self.db.commit()

        lsn = await self._run_blocking(commit_locked)
        return protocol.ok_response(request_id, lsn=lsn)

    async def _op_wal_tail(self, request_id, message) -> Dict[str, Any]:
        """Ship committed WAL records after an LSN (follower tailing)."""
        import base64

        pager = self._wal_pager()
        after = int(message.get("after_lsn", 0))
        # ~5.5KB of base64 per 4KB page image; cap the batch so one
        # response line stays far below protocol.MAX_LINE_BYTES.
        max_records = max(1, min(int(message.get("max_records", 64)), 128))

        def tail_locked():
            lock = getattr(self.service, "lock", None)
            if lock is not None:
                with lock:
                    return (
                        pager.wal.records_since(after, max_records),
                        pager.wal.last_lsn(),
                    )
            return (
                pager.wal.records_since(after, max_records),
                pager.wal.last_lsn(),
            )

        (records, reset), last_lsn = await self._run_blocking(tail_locked)
        wire = [
            [lsn, rtype, page_id, base64.b64encode(payload).decode("ascii")]
            for lsn, rtype, page_id, payload in records
        ]
        return protocol.ok_response(
            request_id, records=wire, reset=reset, last_lsn=last_lsn
        )

    async def _op_wal_ack(self, request_id, message) -> Dict[str, Any]:
        """A follower reports the highest LSN it has durably applied.

        The optional ``lag_lsn`` field exports the follower's own view of
        its lag to the leader-side metrics, so the replication-lag gauge
        is observable from either end of the link.
        """
        lsn = int(message.get("lsn", 0))
        self.replica_acked_lsn = max(self.replica_acked_lsn, lsn)
        self.replica_lag_lsn = int(message.get("lag_lsn", 0))
        return protocol.ok_response(request_id, acked=self.replica_acked_lsn)

    async def _op_wal_snapshot(self, request_id, message) -> Dict[str, Any]:
        """Page images of the checkpointed main file (follower bootstrap).

        Paged via ``start_page``/``max_pages``; ``base_lsn`` is the LSN the
        checkpointed state corresponds to, so the follower tails from
        there.  Only the *inner* pager is read — committed-but-not-yet-
        checkpointed state rides in via the tail, never the snapshot.
        """
        import base64

        pager = self._wal_pager()
        start = max(0, int(message.get("start_page", 0)))
        max_pages = max(1, min(int(message.get("max_pages", 64)), 128))

        def snapshot_locked():
            lock = getattr(self.service, "lock", None)
            if lock is not None:
                lock.acquire()
            try:
                inner = pager.inner
                base_lsn = pager.wal.base_lsn()
                end = min(inner.num_pages, start + max_pages)
                pages = [
                    [pid, base64.b64encode(inner.read(pid)).decode("ascii")]
                    for pid in range(start, end)
                ]
                return base_lsn, pages, inner.num_pages
            finally:
                if lock is not None:
                    lock.release()

        base_lsn, pages, num_pages = await self._run_blocking(snapshot_locked)
        return protocol.ok_response(
            request_id,
            base_lsn=base_lsn,
            pages=pages,
            num_pages=num_pages,
            page_size=self.db.pager.page_size,
            eof=start + len(pages) >= num_pages,
        )

    async def _op_trace_drain(self, request_id, message) -> Dict[str, Any]:
        """Ship finished spans to the caller (router-side trace stitching)."""
        tracer = trace.get_tracer()
        spans = tracer.drain_serialized() if tracer is not None else []
        return protocol.ok_response(request_id, spans=spans)

    async def _op_trace_get(self, request_id, message) -> Dict[str, Any]:
        """The stitched span tree of one (possibly closed) session.

        A router first pulls any straggler shard spans (``trace.drain``
        against every shard) so the tree is as complete as possible, then
        returns every finished span of the session's trace.  Spans are in
        wire form; :func:`repro.obs.trace.build_tree` assembles them.
        """
        session_id = message.get("session")
        entry = self._session_traces.get(session_id)
        if entry is None:
            return protocol.error_response(
                request_id,
                protocol.ERR_UNKNOWN_SESSION,
                f"no trace recorded for session {session_id!r} "
                "(tracing off, or the session was evicted)",
            )
        stitch = getattr(self.service, "stitch_traces", None)
        if stitch is not None:
            await self._run_blocking(stitch)
        tracer = trace.get_tracer()
        spans = []
        if tracer is not None:
            spans = [
                s.to_dict() for s in tracer.spans_for_trace(entry["trace_id"])
            ]
        return protocol.ok_response(
            request_id, trace=entry["wire"], spans=spans
        )

    async def _op_obs_plane(self, request_id, message) -> Dict[str, Any]:
        """Wire-safe observability-plane snapshot (series, alerts, SLOs)."""
        points = max(1, min(int(message.get("points", 120)), 1024))
        snapshot = await self._run_blocking(self.plane.snapshot, points)
        return protocol.ok_response(request_id, plane=snapshot)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch(
        self, message: Dict[str, Any], conn_sessions: Set[str]
    ) -> Dict[str, Any]:
        request_id = message.get("id")
        op = message.get("op")
        if op in self._extra_ops:
            handler = self._extra_ops[op]
            try:
                response = await handler(request_id, message)
            except ReproError as exc:
                code = getattr(exc, "wire_code", protocol.ERR_BAD_REQUEST)
                response = protocol.error_response(request_id, code, str(exc))
            except Exception as exc:  # noqa: BLE001 - surfaced to the client
                response = protocol.error_response(
                    request_id,
                    protocol.ERR_INTERNAL,
                    f"{type(exc).__name__}: {exc}",
                )
            self.metrics.record_request(op, ok=bool(response.get("ok")))
            return response
        if op not in protocol.OPS:
            self.metrics.record_request(str(op), ok=False)
            return protocol.error_response(
                request_id, protocol.ERR_UNKNOWN_OP, f"unknown op {op!r}"
            )
        if op == "ping":
            self.metrics.record_request(op, ok=True)
            return protocol.ok_response(request_id, pong=True)
        if op == "stats":
            self.metrics.record_request(op, ok=True)
            return protocol.ok_response(
                request_id,
                stats=await self._run_blocking(
                    self._stats_payload, bool(message.get("raw", False))
                ),
            )
        if op == "metrics":
            # Prometheus text exposition of the same snapshot plus
            # kernel-backend counters (scrape-friendly sibling of "stats").
            self.metrics.record_request(op, ok=True)
            return protocol.ok_response(
                request_id, text=await self._run_blocking(self._metrics_text)
            )

        # Admission control: bound the work queued behind the bridge.
        if op in ("start", "fetch") and self._inflight >= self.max_inflight:
            self.metrics.record_request(op, ok=False)
            self.metrics.bump_session("rejected_overload")
            return protocol.error_response(
                request_id,
                protocol.ERR_OVERLOADED,
                f"server at capacity ({self.max_inflight} requests in "
                "flight); retry later",
            )
        self._inflight += 1
        try:
            if op == "start":
                response = await self._op_start(request_id, message, conn_sessions)
            elif op == "fetch":
                response = await self._op_fetch(request_id, message)
            else:  # close
                response = await self._op_close(
                    request_id, message, conn_sessions
                )
        finally:
            self._inflight -= 1
        self.metrics.record_request(op, ok=bool(response.get("ok")))
        return response

    async def _op_start(
        self,
        request_id: Any,
        message: Dict[str, Any],
        conn_sessions: Set[str],
    ) -> Dict[str, Any]:
        if self._draining:
            self.metrics.bump_session("rejected_shutdown")
            return protocol.error_response(
                request_id,
                protocol.ERR_SHUTTING_DOWN,
                "server is shutting down; no new sessions",
            )
        if len(self._sessions) >= self.max_sessions:
            self.metrics.bump_session("rejected_overload")
            return protocol.error_response(
                request_id,
                protocol.ERR_OVERLOADED,
                f"session limit reached ({self.max_sessions}); retry later",
            )
        kind = message.get("kind")
        if kind not in protocol.KINDS:
            return protocol.error_response(
                request_id,
                protocol.ERR_BAD_REQUEST,
                f"unknown query kind {kind!r}; valid: {protocol.KINDS}",
            )
        params = message.get("params") or {}
        if not isinstance(params, dict):
            return protocol.error_response(
                request_id, protocol.ERR_BAD_REQUEST, "params must be an object"
            )
        deadline_ms = message.get("deadline_ms", self.default_deadline_ms)
        deadline = (
            time.monotonic() + float(deadline_ms) / 1000.0
            if deadline_ms is not None
            else None
        )
        ctx = WorkerContext(0)
        # Deadline propagation: the service (notably the cluster router's
        # retry layer) sees the session's absolute deadline, so retries
        # and backoff sleeps can never outlive the session.
        ctx.deadline = deadline
        # Distributed tracing: a ``trace_ctx`` shipped by the client (or
        # an upstream router) roots this session's span under the
        # caller's trace; without one — tracing on, direct client — the
        # session span starts a fresh trace.  Opened stack-free: this
        # runs on the event-loop thread but the span belongs to the
        # session object, not to any thread's lexical scope.
        trace_ctx = message.get("trace_ctx")
        if not isinstance(trace_ctx, dict):
            trace_ctx = None
        session_span = trace.span(
            "server.session",
            ctx,
            remote=trace_ctx,
            kind=kind,
            shard=self.shard_id,
        ).open()
        ctx.parent_span = (
            session_span if isinstance(session_span, trace.Span) else None
        )
        ctx.trace_ctx = trace_ctx
        started = time.perf_counter()
        try:
            rows, extra = await self._run_blocking(
                self.service.open, kind, params, ctx
            )
        except BadRequest as exc:
            session_span.finish(exc)
            self.metrics.record_query(kind, time.perf_counter() - started, 0, ok=False)
            return protocol.error_response(
                request_id, protocol.ERR_BAD_REQUEST, str(exc)
            )
        except ReproError as exc:
            session_span.finish(exc)
            self.metrics.record_query(kind, time.perf_counter() - started, 0, ok=False)
            code = getattr(exc, "wire_code", protocol.ERR_BAD_REQUEST)
            return protocol.error_response(request_id, code, str(exc))
        except Exception as exc:  # noqa: BLE001 - surfaced to the client
            session_span.finish(exc)
            self.metrics.record_query(kind, time.perf_counter() - started, 0, ok=False)
            return protocol.error_response(
                request_id, protocol.ERR_INTERNAL, f"{type(exc).__name__}: {exc}"
            )
        session_id = f"s{next(self._session_ids)}"
        session = ServerSession(
            session_id,
            kind,
            rows,
            ctx,
            lock=getattr(self.service, "lock", None),
            deadline=deadline,
            trace_span=session_span,
        )
        self._sessions[session_id] = session
        conn_sessions.add(session_id)
        self.metrics.bump_session("opened")
        self.metrics.record_query(kind, time.perf_counter() - started, 0)
        wire_trace = self._register_session_trace(session_id, session_span)
        if wire_trace is not None:
            extra = dict(extra)
            extra["trace"] = wire_trace
        return protocol.ok_response(request_id, session=session_id, **extra)

    def _register_session_trace(self, session_id, session_span) -> Optional[str]:
        """Remember a session's trace ids for later ``trace.get`` calls."""
        if not isinstance(session_span, trace.Span):
            return None
        tracer = trace.get_tracer()
        if tracer is None:  # pragma: no cover - enable/disable race
            return None
        session_span.set_tag("session", session_id)
        wire = tracer.wire_id_of(session_span.trace_id)
        self._session_traces[session_id] = {
            "wire": wire,
            "trace_id": session_span.trace_id,
        }
        while len(self._session_traces) > 256:
            self._session_traces.popitem(last=False)
        return wire

    async def _op_fetch(
        self, request_id: Any, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        session_id = message.get("session")
        session = self._sessions.get(session_id)
        if session is None:
            return protocol.error_response(
                request_id,
                protocol.ERR_UNKNOWN_SESSION,
                f"no session {session_id!r}",
            )
        n = int(message.get("n", DEFAULT_FETCH_ROWS))
        n = max(1, min(n, MAX_FETCH_ROWS))
        started = time.perf_counter()
        try:
            rows, eof = await self._run_blocking(session.fetch, n)
        except SessionCancelled as exc:
            self._sessions.pop(session_id, None)
            self.metrics.bump_session(
                "cancelled_shutdown"
                if exc.code == protocol.ERR_SHUTTING_DOWN
                else "cancelled_deadline"
            )
            self.metrics.merge_meter(session.kind, session.meter_counts())
            self.metrics.record_query(
                session.kind, time.perf_counter() - started, 0, ok=False
            )
            return protocol.error_response(request_id, exc.code, str(exc))
        except Exception as exc:  # noqa: BLE001 - surfaced to the client
            self._sessions.pop(session_id, None)
            await self._run_blocking(session.close)
            self.metrics.bump_session("closed")
            self.metrics.record_query(
                session.kind, time.perf_counter() - started, 0, ok=False
            )
            code = getattr(exc, "wire_code", protocol.ERR_INTERNAL)
            return protocol.error_response(
                request_id, code, f"{type(exc).__name__}: {exc}"
            )
        self.metrics.record_query(
            session.kind, time.perf_counter() - started, len(rows)
        )
        return protocol.ok_response(request_id, rows=rows, eof=eof)

    async def _op_close(
        self,
        request_id: Any,
        message: Dict[str, Any],
        conn_sessions: Set[str],
    ) -> Dict[str, Any]:
        session_id = message.get("session")
        session = self._sessions.pop(session_id, None)
        conn_sessions.discard(session_id)
        if session is None:
            return protocol.error_response(
                request_id,
                protocol.ERR_UNKNOWN_SESSION,
                f"no session {session_id!r}",
            )
        await self._run_blocking(session.close)
        self.metrics.bump_session("exhausted" if session.exhausted else "closed")
        self.metrics.merge_meter(session.kind, session.meter_counts())
        summary = {
            "rows": session.rows_served,
            "kind": session.kind,
            "exhausted": session.exhausted,
        }
        summary.update(session.close_info())
        return protocol.ok_response(request_id, summary=summary)


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
async def serve(
    db: Database,
    host: str = "127.0.0.1",
    port: int = 0,
    ready=None,
    install_signals: bool = True,
    **kwargs: Any,
) -> SpatialQueryServer:
    """Run a server until it is shut down (Ctrl-C / SIGTERM drain it)."""
    server = SpatialQueryServer(db, host, port, **kwargs)
    await server.start()
    if install_signals:
        server.install_signal_handlers()
    if ready is not None:
        ready(server)
    await server.wait_closed()
    return server


class BackgroundServer:
    """A server on its own thread + event loop (tests, benchmarks, CI).

    Usage::

        with BackgroundServer(db) as handle:
            client = QueryClient(port=handle.port)
    """

    def __init__(self, db: Database, server_factory=None, **kwargs: Any):
        self._db = db
        self._kwargs = kwargs
        #: constructs the server (the cluster substitutes a RouterServer)
        self._factory = (
            server_factory if server_factory is not None else SpatialQueryServer
        )
        self._ready = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.server: Optional[SpatialQueryServer] = None
        self.port: Optional[int] = None
        self.error: Optional[BaseException] = None

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise ServerError("server failed to start within 10s")
        if self.error is not None:
            raise ServerError(f"server failed to start: {self.error!r}")
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - reported to starter
            self.error = exc
            self._ready.set()

    async def _main(self) -> None:
        server = self._factory(self._db, **self._kwargs)
        await server.start()
        self.server = server
        self._loop = asyncio.get_running_loop()
        self.port = server.port
        self._ready.set()
        await server.wait_closed()

    def stop(self, timeout: float = 15.0) -> None:
        if self.server is not None and self._loop is not None:
            future = asyncio.run_coroutine_threadsafe(
                self.server.shutdown(), self._loop
            )
            try:
                future.result(timeout=timeout)
            except Exception:
                pass
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
