"""The asyncio query server: admission control, deadlines, drain, stats.

:class:`SpatialQueryServer` listens on a TCP port, speaks the JSON-lines
protocol of :mod:`repro.server.protocol`, and serves each connection as
one asyncio task.  The wire is *pipelined*: a client may send many
requests without waiting; the server answers them in order.  Actual
engine work runs on a small thread pool (the executor bridge) so the
event loop never blocks on a page of join results.

Robustness layers:

* **Admission control** — at most ``max_inflight`` requests may be
  executing/queued on the bridge at once and at most ``max_sessions``
  sessions may be live; excess work is *rejected immediately* with an
  ``OVERLOADED`` error rather than queued without bound (backpressure the
  client can see and retry).
* **Deadlines** — a session started with ``deadline_ms`` (or the server
  default) is cooperatively cancelled at its next fetch once expired; the
  underlying cursor/table function is closed and the session is removed.
* **Disconnect hygiene** — when a connection drops, every session it
  owned is closed and its meters are still folded into the stats, so a
  client vanishing mid-fetch leaks nothing.
* **Graceful shutdown** — ``shutdown()`` stops accepting connections,
  rejects new ``start`` requests with ``SHUTTING_DOWN``, lets live
  sessions drain for ``drain_timeout`` seconds, then cancels stragglers.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from typing import Any, Dict, Optional, Set

from repro.errors import ReproError, ServerError
from repro.engine.database import Database
from repro.engine.parallel import WorkerContext
from repro.server import protocol
from repro.server.metrics import ServerMetrics
from repro.server.service import BadRequest, QueryService
from repro.server.session import ServerSession, SessionCancelled

__all__ = ["SpatialQueryServer", "BackgroundServer", "serve"]

DEFAULT_FETCH_ROWS = 1024
MAX_FETCH_ROWS = 65536


class SpatialQueryServer:
    """One serving instance over one database."""

    def __init__(
        self,
        db: Database,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_inflight: int = 32,
        max_sessions: int = 64,
        default_deadline_ms: Optional[int] = None,
        drain_timeout: float = 10.0,
        fetch_workers: int = 4,
        service: Optional[QueryService] = None,
    ):
        self.service = service if service is not None else QueryService(db)
        self.db = db
        self.host = host
        self.port = port  # replaced by the bound port after start()
        self.max_inflight = max_inflight
        self.max_sessions = max_sessions
        self.default_deadline_ms = default_deadline_ms
        self.drain_timeout = drain_timeout
        self.metrics = ServerMetrics()
        self._sessions: Dict[str, ServerSession] = {}
        self._session_ids = itertools.count(1)
        self._inflight = 0
        self._draining = False
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._closed_event = asyncio.Event()
        from concurrent.futures import ThreadPoolExecutor

        self._pool = ThreadPoolExecutor(
            max_workers=fetch_workers, thread_name_prefix="repro-serve"
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_conn,
            self.host,
            self.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def wait_closed(self) -> None:
        await self._closed_event.wait()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting work, drain live sessions, then close."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain:
            deadline = time.monotonic() + self.drain_timeout
            while self._sessions and time.monotonic() < deadline:
                await asyncio.sleep(0.02)
        for session_id in list(self._sessions):
            session = self._sessions.pop(session_id, None)
            if session is not None:
                session.close()
                self.metrics.bump_session("cancelled_shutdown")
                self.metrics.merge_meter(session.kind, session.meter_counts())
        self._pool.shutdown(wait=False)
        self._closed_event.set()

    def request_shutdown(self) -> None:
        """Thread/signal-safe shutdown trigger."""
        if self._loop is None:
            return
        self._loop.call_soon_threadsafe(
            lambda: asyncio.ensure_future(self.shutdown())
        )

    def install_signal_handlers(self) -> None:
        """Make SIGINT/SIGTERM drain the server instead of killing it."""
        import signal

        assert self._loop is not None
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                self._loop.add_signal_handler(signum, self.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-main thread or non-POSIX loop

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn_sessions: Set[str] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                ):  # oversized line
                    writer.write(
                        protocol.encode(
                            protocol.error_response(
                                None,
                                protocol.ERR_BAD_REQUEST,
                                "message too large",
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break  # client closed its end
                if not line.strip():
                    continue
                try:
                    message = protocol.decode_line(line)
                except ReproError as exc:
                    response = protocol.error_response(
                        None, protocol.ERR_BAD_REQUEST, str(exc)
                    )
                else:
                    response = await self._dispatch(message, conn_sessions)
                writer.write(protocol.encode(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            # A vanished client must not leak its sessions.
            for session_id in conn_sessions:
                session = self._sessions.pop(session_id, None)
                if session is not None:
                    await self._run_blocking(session.close)
                    self.metrics.bump_session("closed_disconnect")
                    self.metrics.merge_meter(
                        session.kind, session.meter_counts()
                    )
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _run_blocking(self, fn, *args):
        assert self._loop is not None
        return await self._loop.run_in_executor(self._pool, fn, *args)

    def _storage_stats(self) -> Dict[str, Any]:
        """The engine's storage counters (WAL bytes, recovery work), if any."""
        stats = getattr(self.db, "storage_stats", None)
        if stats is None:
            return {}
        try:
            return stats()
        except Exception:  # pragma: no cover - stats must never break serving
            return {}

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch(
        self, message: Dict[str, Any], conn_sessions: Set[str]
    ) -> Dict[str, Any]:
        request_id = message.get("id")
        op = message.get("op")
        if op not in protocol.OPS:
            self.metrics.record_request(str(op), ok=False)
            return protocol.error_response(
                request_id, protocol.ERR_UNKNOWN_OP, f"unknown op {op!r}"
            )
        if op == "ping":
            self.metrics.record_request(op, ok=True)
            return protocol.ok_response(request_id, pong=True)
        if op == "stats":
            self.metrics.record_request(op, ok=True)
            return protocol.ok_response(
                request_id,
                stats=self.metrics.snapshot(
                    len(self._sessions), storage=self._storage_stats()
                ),
            )
        if op == "metrics":
            # Prometheus text exposition of the same snapshot plus
            # kernel-backend counters (scrape-friendly sibling of "stats").
            from repro.geometry import kernels
            from repro.obs.exporters import prometheus_text

            self.metrics.record_request(op, ok=True)
            text = prometheus_text(
                self.metrics.snapshot(
                    len(self._sessions), storage=self._storage_stats()
                ),
                kernel=kernels.counters(),
            )
            return protocol.ok_response(request_id, text=text)

        # Admission control: bound the work queued behind the bridge.
        if op in ("start", "fetch") and self._inflight >= self.max_inflight:
            self.metrics.record_request(op, ok=False)
            self.metrics.bump_session("rejected_overload")
            return protocol.error_response(
                request_id,
                protocol.ERR_OVERLOADED,
                f"server at capacity ({self.max_inflight} requests in "
                "flight); retry later",
            )
        self._inflight += 1
        try:
            if op == "start":
                response = await self._op_start(request_id, message, conn_sessions)
            elif op == "fetch":
                response = await self._op_fetch(request_id, message)
            else:  # close
                response = await self._op_close(
                    request_id, message, conn_sessions
                )
        finally:
            self._inflight -= 1
        self.metrics.record_request(op, ok=bool(response.get("ok")))
        return response

    async def _op_start(
        self,
        request_id: Any,
        message: Dict[str, Any],
        conn_sessions: Set[str],
    ) -> Dict[str, Any]:
        if self._draining:
            self.metrics.bump_session("rejected_shutdown")
            return protocol.error_response(
                request_id,
                protocol.ERR_SHUTTING_DOWN,
                "server is shutting down; no new sessions",
            )
        if len(self._sessions) >= self.max_sessions:
            self.metrics.bump_session("rejected_overload")
            return protocol.error_response(
                request_id,
                protocol.ERR_OVERLOADED,
                f"session limit reached ({self.max_sessions}); retry later",
            )
        kind = message.get("kind")
        if kind not in protocol.KINDS:
            return protocol.error_response(
                request_id,
                protocol.ERR_BAD_REQUEST,
                f"unknown query kind {kind!r}; valid: {protocol.KINDS}",
            )
        params = message.get("params") or {}
        if not isinstance(params, dict):
            return protocol.error_response(
                request_id, protocol.ERR_BAD_REQUEST, "params must be an object"
            )
        deadline_ms = message.get("deadline_ms", self.default_deadline_ms)
        deadline = (
            time.monotonic() + float(deadline_ms) / 1000.0
            if deadline_ms is not None
            else None
        )
        ctx = WorkerContext(0)
        started = time.perf_counter()
        try:
            rows, extra = await self._run_blocking(
                self.service.open, kind, params, ctx
            )
        except BadRequest as exc:
            self.metrics.record_query(kind, time.perf_counter() - started, 0, ok=False)
            return protocol.error_response(
                request_id, protocol.ERR_BAD_REQUEST, str(exc)
            )
        except ReproError as exc:
            self.metrics.record_query(kind, time.perf_counter() - started, 0, ok=False)
            return protocol.error_response(
                request_id, protocol.ERR_BAD_REQUEST, str(exc)
            )
        except Exception as exc:  # noqa: BLE001 - surfaced to the client
            self.metrics.record_query(kind, time.perf_counter() - started, 0, ok=False)
            return protocol.error_response(
                request_id, protocol.ERR_INTERNAL, f"{type(exc).__name__}: {exc}"
            )
        session_id = f"s{next(self._session_ids)}"
        session = ServerSession(
            session_id,
            kind,
            rows,
            ctx,
            lock=self.service.lock,
            deadline=deadline,
        )
        self._sessions[session_id] = session
        conn_sessions.add(session_id)
        self.metrics.bump_session("opened")
        self.metrics.record_query(kind, time.perf_counter() - started, 0)
        return protocol.ok_response(request_id, session=session_id, **extra)

    async def _op_fetch(
        self, request_id: Any, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        session_id = message.get("session")
        session = self._sessions.get(session_id)
        if session is None:
            return protocol.error_response(
                request_id,
                protocol.ERR_UNKNOWN_SESSION,
                f"no session {session_id!r}",
            )
        n = int(message.get("n", DEFAULT_FETCH_ROWS))
        n = max(1, min(n, MAX_FETCH_ROWS))
        started = time.perf_counter()
        try:
            rows, eof = await self._run_blocking(session.fetch, n)
        except SessionCancelled as exc:
            self._sessions.pop(session_id, None)
            self.metrics.bump_session("cancelled_deadline")
            self.metrics.merge_meter(session.kind, session.meter_counts())
            self.metrics.record_query(
                session.kind, time.perf_counter() - started, 0, ok=False
            )
            return protocol.error_response(request_id, exc.code, str(exc))
        except Exception as exc:  # noqa: BLE001 - surfaced to the client
            self._sessions.pop(session_id, None)
            await self._run_blocking(session.close)
            self.metrics.bump_session("closed")
            self.metrics.record_query(
                session.kind, time.perf_counter() - started, 0, ok=False
            )
            return protocol.error_response(
                request_id, protocol.ERR_INTERNAL, f"{type(exc).__name__}: {exc}"
            )
        self.metrics.record_query(
            session.kind, time.perf_counter() - started, len(rows)
        )
        return protocol.ok_response(request_id, rows=rows, eof=eof)

    async def _op_close(
        self,
        request_id: Any,
        message: Dict[str, Any],
        conn_sessions: Set[str],
    ) -> Dict[str, Any]:
        session_id = message.get("session")
        session = self._sessions.pop(session_id, None)
        conn_sessions.discard(session_id)
        if session is None:
            return protocol.error_response(
                request_id,
                protocol.ERR_UNKNOWN_SESSION,
                f"no session {session_id!r}",
            )
        await self._run_blocking(session.close)
        self.metrics.bump_session("exhausted" if session.exhausted else "closed")
        self.metrics.merge_meter(session.kind, session.meter_counts())
        return protocol.ok_response(
            request_id,
            summary={
                "rows": session.rows_served,
                "kind": session.kind,
                "exhausted": session.exhausted,
            },
        )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
async def serve(
    db: Database,
    host: str = "127.0.0.1",
    port: int = 0,
    ready=None,
    install_signals: bool = True,
    **kwargs: Any,
) -> SpatialQueryServer:
    """Run a server until it is shut down (Ctrl-C / SIGTERM drain it)."""
    server = SpatialQueryServer(db, host, port, **kwargs)
    await server.start()
    if install_signals:
        server.install_signal_handlers()
    if ready is not None:
        ready(server)
    await server.wait_closed()
    return server


class BackgroundServer:
    """A server on its own thread + event loop (tests, benchmarks, CI).

    Usage::

        with BackgroundServer(db) as handle:
            client = QueryClient(port=handle.port)
    """

    def __init__(self, db: Database, **kwargs: Any):
        self._db = db
        self._kwargs = kwargs
        self._ready = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.server: Optional[SpatialQueryServer] = None
        self.port: Optional[int] = None
        self.error: Optional[BaseException] = None

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise ServerError("server failed to start within 10s")
        if self.error is not None:
            raise ServerError(f"server failed to start: {self.error!r}")
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - reported to starter
            self.error = exc
            self._ready.set()

    async def _main(self) -> None:
        server = SpatialQueryServer(self._db, **self._kwargs)
        await server.start()
        self.server = server
        self._loop = asyncio.get_running_loop()
        self.port = server.port
        self._ready.set()
        await server.wait_closed()

    def stop(self, timeout: float = 15.0) -> None:
        if self.server is not None and self._loop is not None:
            future = asyncio.run_coroutine_threadsafe(
                self.server.shutdown(), self._loop
            )
            try:
                future.result(timeout=timeout)
            except Exception:
                pass
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
