"""Query service: maps wire ``start`` requests onto engine row streams.

One :class:`QueryService` wraps one :class:`~repro.engine.database.Database`.
Each supported kind builds a *lazy* row iterator (JSON-safe rows) plus an
``extra`` dict returned with the start response:

* ``window`` — operator query through the spatial index
  (``sdo_relate`` / ``sdo_filter`` / ``sdo_within_distance``); streams
  rowids straight out of the index fetch generator.
* ``knn`` — ``sdo_nn`` through the same path.
* ``sql`` — one SQL statement; the result is materialised by the SQL
  engine but still *paged* to the client.
* ``spatial_join`` — drives :class:`~repro.core.spatial_join.SpatialJoinFunction`
  through :func:`~repro.engine.table_function.pipeline`, so the join's
  rowid pairs stream to the wire without the server ever holding the full
  result (the paper's pipelining argument, applied to the network hop).
  ``parallel > 1`` runs the §4.1 subtree decomposition first (optionally
  on real processes) and pages the combined result.

Engine objects are not thread-safe, and sessions execute on a thread
pool; the service's ``lock`` serialises engine work page by page, which
interleaves concurrent sessions fairly (concurrency comes from paging,
intra-query parallelism from the process pool underneath one query).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterator, Tuple

from repro.errors import ServerError
from repro.engine.database import Database
from repro.engine.parallel import WorkerContext
from repro.engine.table_function import pipeline
from repro.geometry.wkt import from_wkt
from repro.obs import trace
from repro.server.protocol import jsonify_row, rowid_to_wire

__all__ = ["BadRequest", "QueryService"]


class BadRequest(ServerError):
    """The start request's kind/params cannot be executed."""


def _require(params: Dict[str, Any], *names: str) -> Tuple[Any, ...]:
    missing = [n for n in names if n not in params]
    if missing:
        raise BadRequest(f"missing required param(s): {', '.join(missing)}")
    return tuple(params[n] for n in names)


def _wire_rowids(iterator) -> Iterator[Any]:
    """Adapt a rowid generator to wire rows, closing it deterministically."""
    try:
        for rowid in iterator:
            yield rowid_to_wire(rowid)
    finally:
        closer = getattr(iterator, "close", None)
        if closer is not None:
            closer()


def _wire_pairs(iterator) -> Iterator[Any]:
    """Adapt a (rowid, rowid) stream to wire rows, closing it on exit."""
    try:
        for rid_a, rid_b in iterator:
            yield [rowid_to_wire(rid_a), rowid_to_wire(rid_b)]
    finally:
        closer = getattr(iterator, "close", None)
        if closer is not None:
            closer()


class QueryService:
    """Database-backed session factory shared by all connections."""

    def __init__(self, db: Database):
        self.db = db
        #: serialises engine work; sessions hold it per fetched page
        self.lock = threading.Lock()

    # ------------------------------------------------------------------
    def open(
        self, kind: str, params: Dict[str, Any], ctx: WorkerContext
    ) -> Tuple[Iterator[Any], Dict[str, Any]]:
        """Build the row stream for one ``start`` request."""
        opener = getattr(self, f"_open_{kind}", None)
        if opener is None:
            raise BadRequest(f"unknown query kind {kind!r}")
        with self.lock:
            # Parent under the session span the server opened stack-free
            # (this runs on a pool thread with an empty span stack).
            with trace.span(
                "server.start",
                ctx,
                parent=getattr(ctx, "parent_span", None),
                kind=kind,
            ):
                return opener(params, ctx)

    # ------------------------------------------------------------------
    def _parse_geometry(self, params: Dict[str, Any]):
        (wkt,) = _require(params, "wkt")
        try:
            return from_wkt(wkt)
        except Exception as exc:
            raise BadRequest(f"bad query geometry: {exc}") from None

    # -- cluster helpers ------------------------------------------------
    def _cluster_part(self, params):
        """Decode the ``cluster`` param into a GridPartitioner, if present.

        A shard session started by the router carries the *global* grid
        spec and this shard's id, so shard-local filtering bins every MBR
        exactly the way the router's own placement did.
        """
        cluster = params.get("cluster")
        if not cluster:
            return None
        from repro.cluster.partition import GridPartitioner

        try:
            return GridPartitioner.from_wire(cluster)
        except (KeyError, TypeError, ValueError) as exc:
            raise BadRequest(f"bad cluster param: {exc}") from None

    def _ids_of(self, table_name: str, id_column: str):
        """rowid → id-column value mapper (global ids for cluster rows)."""
        table = self.db.table(table_name)
        return lambda rowid: table.value(rowid, id_column)

    def _open_window(self, params, ctx):
        table, column = _require(params, "table", "column")
        query = self._parse_geometry(params)
        operator = str(params.get("operator", "SDO_RELATE")).upper()
        if operator == "SDO_WITHIN_DISTANCE":
            args = [query, float(params.get("distance", 0.0))]
        elif operator == "SDO_RELATE":
            args = [query, str(params.get("mask", "ANYINTERACT")).upper()]
        else:
            args = [query]
        part = self._cluster_part(params)
        if part is not None and bool(params.get("primary_only", False)):
            # Drop halo replicas *before* the exact geometry test: a row
            # streams from the one shard owning the tile of its low
            # corner clamped into the search region (window_owner), so
            # the router's simple concatenation is duplicate-free — and
            # rejected replicas never pay a geometry fetch or exact test.
            expand = args[1] if operator == "SDO_WITHIN_DISTANCE" else 0.0
            window = query.mbr

            def owned(mbr, _rid):
                return part.window_owner(mbr, window, expand) == part.shard

            index = self.db.spatial_index_on(table, column)
            rowids = index.fetch(operator, args, ctx, prefilter=owned)
        else:
            rowids = self.db.select_rowids(table, column, operator, args, ctx)
        if bool(params.get("emit_ids", False)):
            ids = self._ids_of(table, str(params.get("id_column", "id")))
            return (([ids(rid)] for rid in rowids), {})
        return _wire_rowids(rowids), {}

    def _open_knn(self, params, ctx):
        table, column = _require(params, "table", "column")
        query = self._parse_geometry(params)
        k = int(params.get("k", 1))
        rowids = self.db.select_rowids(
            table, column, "SDO_NN", [query, k], ctx
        )
        if bool(params.get("with_distance", False)):
            # Cluster mode: ship ``[id, exact_distance]`` so the router can
            # k-way merge shard-local top-k streams by true distance (halo
            # replicas dedup router-side by id).  fetch_nn already yields
            # in exact-distance order, so the stream arrives sorted.
            from repro.geometry.distance import distance as exact_distance

            index = self.db.spatial_index_on(table, column)
            ids = self._ids_of(table, str(params.get("id_column", "id")))
            rows = (
                [ids(rid), exact_distance(query, index.geometry_of(rid, ctx))]
                for rid in rowids
            )
            return rows, {"k": k}
        return _wire_rowids(rowids), {"k": k}

    def _open_sql(self, params, ctx):
        statements = params.get("statements")
        if statements is not None:
            if not isinstance(statements, list) or not statements:
                raise BadRequest("statements must be a non-empty list")
        else:
            (statement,) = _require(params, "statement")
            statements = [statement]
        rowcount = 0
        result = None
        for statement in statements:
            result = self.db.sql(statement)
            rowcount += result.rowcount
        extra = {
            "columns": list(result.columns),
            "rowcount": rowcount,
            "message": result.message,
        }
        if bool(params.get("commit", False)):
            # Durable batch: everything above survives a crash, and the
            # returned LSN is what the router waits for the follower to ack
            # before acking its own client (semi-synchronous replication).
            extra["lsn"] = self.db.commit()
        rows = iter([jsonify_row(row) for row in result.rows])
        return rows, extra

    def _open_spatial_join(self, params, ctx):
        from repro.core.parallel_join import SpatialJoinFactory
        from repro.core.secondary_filter import JoinPredicate
        from repro.core.spatial_join import DEFAULT_CANDIDATE_ARRAY_SIZE
        from repro.index.rtree.join import JoinStrategy

        table_a, column_a, table_b, column_b = _require(
            params, "table_a", "column_a", "table_b", "column_b"
        )
        predicate = JoinPredicate(
            mask=str(params.get("mask", "ANYINTERACT")).upper(),
            distance=float(params.get("distance", 0.0)),
        )
        try:
            strategy = JoinStrategy[
                str(params.get("strategy", "SWEEP")).upper()
            ]
        except KeyError:
            raise BadRequest(
                f"unknown join strategy {params.get('strategy')!r}; expected "
                f"one of {', '.join(s.name for s in JoinStrategy)}"
            ) from None
        part = self._cluster_part(params)
        if part is not None:
            return self._open_cluster_join(
                params, ctx, part, predicate, strategy
            )
        parallel = int(params.get("parallel", 1))
        if parallel > 1:
            # Parallel joins run the decomposition to completion (subtree
            # pairs, or grid tiles for strategy GRID; multiple cores with
            # use_processes), then page the result.
            result = self.db.spatial_join(
                table_a,
                column_a,
                table_b,
                column_b,
                mask=predicate.mask,
                distance=predicate.distance,
                parallel=parallel,
                use_processes=bool(params.get("use_processes", False)),
                use_threads=bool(params.get("use_threads", False)),
                strategy=strategy,
            )
            ctx.meter.merge(result.run.combined_meter())
            return _wire_pairs(iter(result.pairs)), {
                "parallel": parallel,
                "strategy": strategy.name,
            }

        factory = SpatialJoinFactory(
            self.db.table(table_a),
            column_a,
            self.db.rtree_of(table_a, column_a),
            self.db.table(table_b),
            column_b,
            self.db.rtree_of(table_b, column_b),
            predicate=predicate,
            candidate_array_size=int(
                params.get("candidate_array_size", DEFAULT_CANDIDATE_ARRAY_SIZE)
            ),
            strategy=strategy,
        )
        # The wire session *is* the pipelined table function: rows stream
        # through start/fetch/close at both layers, never materialised.
        stream = pipeline(factory(None), ctx)
        return _wire_pairs(stream), {"parallel": 1, "strategy": strategy.name}

    def _open_cluster_join(self, params, ctx, part, predicate, strategy):
        """This shard's slice of a global grid join.

        Every shard bins its local rows (primaries + halo replicas)
        against the router's *global* :class:`GridSpec` and sweeps only
        its owned tiles; the canonical-tile rule makes the shard outputs
        an exact partition of the single-node result, so the router
        concatenates them with no dedup.  Pairs go to the wire as
        ``[id_a, id_b]`` because rowids are shard-local names.
        """
        from repro.core.parallel_join import grid_parallel_join
        from repro.engine.parallel import SerialExecutor

        table_a, column_a, table_b, column_b = _require(
            params, "table_a", "column_a", "table_b", "column_b"
        )
        if predicate.distance > part.halo:
            raise BadRequest(
                f"within-distance {predicate.distance} exceeds the cluster "
                f"halo {part.halo}; reload with a wider halo to run this "
                "join distributed"
            )
        result = grid_parallel_join(
            self.db.table(table_a),
            column_a,
            self.db.rtree_of(table_a, column_a),
            self.db.table(table_b),
            column_b,
            self.db.rtree_of(table_b, column_b),
            SerialExecutor(),
            predicate=predicate,
            spec=part.spec,
            owned=part.owned_tiles(),
        )
        ctx.meter.merge(result.run.combined_meter())
        ids_a = self._ids_of(table_a, str(params.get("id_column", "id")))
        ids_b = self._ids_of(table_b, str(params.get("id_column", "id")))
        rows = ([ids_a(ra), ids_b(rb)] for ra, rb in result.pairs)
        return rows, {
            "strategy": strategy.name,
            "shard": part.shard,
            "tiles_owned": len(part.owned_tiles()),
            "pairs": len(result.pairs),
        }
