"""Benchmark workload construction (shared by all bench files).

Scaling: the paper's full datasets (3230 counties, 250K stars, 230K block
groups) are tractable for the *simulated* cost model but not for repeated
pure-Python wall-clock runs, so each workload has a ``small`` profile used
by default and a ``paper`` profile selected with ``REPRO_BENCH_PROFILE=paper``.
Simulated times (the reported metric) are deterministic functions of the
data, so the small profile reproduces every *shape* claim; the paper
profile reproduces the full row counts.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import Database
from repro.datasets import (
    blockgroups,
    cached_dataset,
    counties,
    load_geometries,
    stars,
)
from repro.geometry.geometry import Geometry

__all__ = ["profile", "CountiesWorkload", "StarsWorkload", "BlockgroupsWorkload"]


def profile() -> str:
    """Active bench profile from REPRO_BENCH_PROFILE (small|paper)."""
    value = os.environ.get("REPRO_BENCH_PROFILE", "small").lower()
    if value not in ("small", "paper"):
        raise ValueError(f"REPRO_BENCH_PROFILE must be small|paper, got {value!r}")
    return value


@dataclass
class CountiesWorkload:
    """Table 1 workload: the counties layer, R-tree indexed, self-joined."""

    db: Database
    n: int
    distances: Tuple[float, ...] = (0.0, 0.1, 0.25, 0.5)

    @classmethod
    def build(cls, prof: Optional[str] = None) -> "CountiesWorkload":
        prof = prof or profile()
        if prof == "paper":
            n, extent = 3230, (0.0, 0.0, 57.5, 25.0)
        else:
            # Scaled county count on a proportionally scaled extent so the
            # cell size (and hence the meaning of the paper's absolute
            # join distances 0.1/0.25/0.5) matches the full-scale layer.
            n, extent = 1000, (0.0, 0.0, 32.0, 14.0)
        db = Database()
        load_geometries(db, "counties", counties(n, seed=42, refine=6, extent=extent))
        db.create_spatial_index("counties_sidx", "counties", "geom", kind="RTREE")
        return cls(db=db, n=n)

    def index_join(
        self, distance: float, parallel: int = 1, strategy: str = "SWEEP"
    ):
        return self.db.spatial_join(
            "counties", "geom", "counties", "geom", distance=distance,
            parallel=parallel, strategy=strategy,
        )

    def nested_join(self, distance: float):
        return self.db.nested_loop_join(
            "counties", "geom", "counties", "geom", distance=distance
        )


@dataclass
class StarsWorkload:
    """Table 2 workload: star subsets, self-joined at several sizes."""

    dbs: Dict[int, Database]
    sizes: Tuple[int, ...]

    @classmethod
    def build(
        cls,
        prof: Optional[str] = None,
        sizes: Optional[Tuple[int, ...]] = None,
        regen: bool = False,
    ) -> "StarsWorkload":
        """Build the star subsets (and their indexes) at the given sizes.

        ``sizes`` overrides the profile's sweep (the bench CLI's
        ``--sizes`` flag); generation goes through the disk cache keyed by
        ``(n, seed)`` so the 250K paper run pays polygon generation once
        per machine, and ``regen`` forces regeneration.
        """
        prof = prof or profile()
        if sizes is None:
            if prof == "paper":
                sizes = (25, 2_500, 25_000, 100_000, 250_000)
            else:
                sizes = (25, 2_500, 10_000, 25_000)
        sizes = tuple(sorted(sizes))
        full = cached_dataset("stars", stars, max(sizes), 1234, regen=regen)
        dbs: Dict[int, Database] = {}
        for size in sizes:
            db = Database()
            load_geometries(db, "stars", full[:size])
            db.create_spatial_index("stars_sidx", "stars", "geom", kind="RTREE")
            dbs[size] = db
        return cls(dbs=dbs, sizes=sizes)

    def index_join(self, size: int, parallel: int = 1, strategy: str = "SWEEP"):
        return self.dbs[size].spatial_join(
            "stars", "geom", "stars", "geom", parallel=parallel,
            strategy=strategy,
        )

    def nested_join(self, size: int):
        return self.dbs[size].nested_loop_join("stars", "geom", "stars", "geom")


@dataclass
class BlockgroupsWorkload:
    """Table 3 workload: complex polygons for parallel index creation."""

    db: Database
    n: int
    degrees: Tuple[int, ...] = (1, 2, 4)

    @classmethod
    def build(cls, prof: Optional[str] = None) -> "BlockgroupsWorkload":
        prof = prof or profile()
        n = 230_000 if prof == "paper" else 1_500
        db = Database()
        load_geometries(db, "blockgroups", blockgroups(n, seed=7))
        return cls(db=db, n=n)

    def create_quadtree(self, degree: int, tiling_level: int = 9):
        """Fresh quadtree build at the given parallel degree."""
        from repro.engine.parallel import make_executor
        from repro.core.index_build import create_quadtree_parallel
        from repro.geometry.mbr import MBR
        from repro.index.quadtree.quadtree import QuadtreeIndex

        index = QuadtreeIndex(
            f"bg_q_{degree}",
            self.db.table("blockgroups"),
            "geom",
            domain=MBR(0, 0, 58.0, 58.0),
            tiling_level=tiling_level,
        )
        return create_quadtree_parallel(index, make_executor(degree, self.db.cost_model))

    def create_rtree(self, degree: int):
        from repro.engine.parallel import make_executor
        from repro.core.index_build import create_rtree_parallel
        from repro.index.rtree.spatial_index import RTreeIndex

        index = RTreeIndex(
            f"bg_r_{degree}", self.db.table("blockgroups"), "geom"
        )
        return create_rtree_parallel(index, make_executor(degree, self.db.cost_model))
