"""Benchmark harness: workload builders and paper-table reporting."""

from repro.bench.reporting import ExperimentTable, results_dir
from repro.bench.workloads import (
    BlockgroupsWorkload,
    CountiesWorkload,
    StarsWorkload,
    profile,
)

__all__ = [
    "ExperimentTable",
    "results_dir",
    "CountiesWorkload",
    "StarsWorkload",
    "BlockgroupsWorkload",
    "profile",
]
