"""Standalone benchmark runner: ``python -m repro.bench [experiment ...]``.

Runs the paper-table regenerators without pytest and prints each table.
Valid experiment names: table1 table2 table3 figure1 figure2 (default: all).
Honours ``REPRO_BENCH_PROFILE=small|paper``.
"""

from __future__ import annotations

import sys
import time

from repro.bench.workloads import (
    BlockgroupsWorkload,
    CountiesWorkload,
    StarsWorkload,
    profile,
)
from repro.bench.reporting import ExperimentTable

EXPERIMENTS = ("table1", "table2", "table3", "figure1", "figure2")


def _load_bench_module(name: str):
    """Import the bench module by path (benchmarks/ is not a package)."""
    import importlib.util
    import os

    here = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(__file__))))
    path = os.path.join(here, "benchmarks", f"bench_{name}.py")
    spec = importlib.util.spec_from_file_location(f"bench_{name}", path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


def main(argv) -> int:
    """Run the named experiments (argv style: [prog, name, ...])."""
    names = [a for a in argv[1:] if not a.startswith("-")] or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; valid: {EXPERIMENTS}")
        return 2

    prof = profile()
    print(f"profile: {prof} (set REPRO_BENCH_PROFILE=paper for full sizes)")

    counties = stars = blockgroups = None
    for name in names:
        started = time.perf_counter()
        module = _load_bench_module(name)
        if name in ("table1", "figure1"):
            counties = counties or CountiesWorkload.build(prof)
            runner = getattr(module, f"run_{name}")
            rows = runner(counties)
        elif name == "table2":
            stars = stars or StarsWorkload.build(prof)
            rows = module.run_table2(stars)
        else:  # table3 / figure2
            blockgroups = blockgroups or BlockgroupsWorkload.build(prof)
            runner = getattr(module, f"run_{name}")
            rows = runner(blockgroups)
        elapsed = time.perf_counter() - started
        table = ExperimentTable(
            experiment=f"{name}_cli",
            title=f"{name} (driver wall time {elapsed:.1f}s)",
            columns=sorted(rows[0].keys()) if rows else ["(empty)"],
        )
        for row in rows:
            table.add_row(*(row[k] for k in table.columns))
        table.emit()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
