"""Standalone benchmark runner: ``python -m repro.bench [experiment ...]``.

Runs the paper-table regenerators without pytest and prints each table.
Valid experiment names: table1 table2 table3 figure1 figure2
ablation_sweep kernels grid cluster resilience obsplane (default: all).
Honours
``REPRO_BENCH_PROFILE=small|paper``.

Flags:

* ``--list`` — print every experiment name with a one-line description
  and exit (no workload is built).
* ``--sizes=25,2500,250000`` — override the star-subset sweep used by the
  stars-based experiments (default: the active profile's sweep; the paper
  profile runs the full 25 → 250K Table 2 sweep).
* ``--regen`` — bypass the on-disk dataset cache and regenerate (and
  re-cache) the star geometries.

Besides the human-readable table, each experiment writes a
machine-readable ``BENCH_<name>.json`` next to the rendered tables
(simulated seconds plus raw operation counters, worker imbalance, and
per-worker seconds per row) so CI can diff benchmark output across
commits.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Optional, Tuple

from repro.bench.workloads import (
    BlockgroupsWorkload,
    CountiesWorkload,
    StarsWorkload,
    profile,
)
from repro.bench.reporting import ExperimentTable, emit_bench_json

EXPERIMENTS = (
    "table1",
    "table2",
    "table3",
    "figure1",
    "figure2",
    "ablation_sweep",
    "kernels",
    "grid",
    "columnar",
    "cluster",
    "resilience",
    "obsplane",
)

#: one-liners for ``--list`` — what each experiment measures and which
#: paper artifact (if any) it regenerates.
DESCRIPTIONS = {
    "table1": "primary-filter selectivity vs tessellation level (Table 1)",
    "table2": "index build cost across star-catalog sizes (Table 2)",
    "table3": "window-query timings on blockgroups (Table 3)",
    "figure1": "query cost vs tessellation level sweep (Figure 1)",
    "figure2": "window size vs response-time curve (Figure 2)",
    "ablation_sweep": "interior-tile / batching / approximation ablation",
    "kernels": "scalar vs vectorized geometry-kernel ablation",
    "grid": "grid-partitioned parallel join vs serial ablation",
    "columnar": "slotted heap vs zone-mapped column chunks ablation",
    "cluster": "sharded router scaling + cross-shard join exactness",
    "resilience": "leader-kill MTTR + degraded throughput (self-healing)",
    "obsplane": "metrics/SLO plane + tracing overhead on the cluster path",
}

# bench_<name>.py files whose runner wants (counties, stars) workloads.
_COUNTIES_STARS = ("ablation_sweep", "kernels", "grid", "columnar")

# Experiments whose bench file name differs from the experiment name.
_MODULE_FILES = {
    "kernels": "ablation_kernels",
    "grid": "ablation_grid",
    "columnar": "ablation_columnar",
}


def _load_bench_module(name: str):
    """Import the bench module by path (benchmarks/ is not a package)."""
    import importlib.util

    here = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(__file__))))
    path = os.path.join(here, "benchmarks", f"bench_{name}.py")
    spec = importlib.util.spec_from_file_location(f"bench_{name}", path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


def _write_json(name: str, prof: str, elapsed: float, rows) -> str:
    """Persist one experiment's rows as ``BENCH_<name>.json``."""
    payload = {
        "experiment": name,
        "profile": prof,
        "driver_wall_seconds": round(elapsed, 3),
        "rows": rows,
    }
    return emit_bench_json(name, payload)


def _parse_flags(argv) -> Tuple[Optional[Tuple[int, ...]], bool]:
    """Extract ``--sizes=...`` and ``--regen`` from the argument list."""
    sizes: Optional[Tuple[int, ...]] = None
    regen = False
    for arg in argv[1:]:
        if arg.startswith("--sizes="):
            sizes = tuple(
                int(part) for part in arg.split("=", 1)[1].split(",") if part
            )
            if not sizes:
                raise SystemExit(f"no sizes in {arg!r}")
        elif arg == "--regen":
            regen = True
        elif arg.startswith("-"):
            raise SystemExit(
                f"unknown flag {arg!r}; supported: "
                "--list --sizes=N,N,... --regen"
            )
    return sizes, regen


def list_experiments(out=None) -> int:
    """Print every experiment name with its one-line description."""
    out = out if out is not None else sys.stdout
    width = max(len(n) for n in EXPERIMENTS)
    for name in EXPERIMENTS:
        out.write(f"{name.ljust(width)}  {DESCRIPTIONS[name]}\n")
    return 0


def main(argv) -> int:
    """Run the named experiments (argv style: [prog, name, ...])."""
    if "--list" in argv[1:]:
        return list_experiments()
    names = [a for a in argv[1:] if not a.startswith("-")] or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; valid: {EXPERIMENTS}")
        return 2
    sizes, regen = _parse_flags(argv)

    prof = profile()
    print(f"profile: {prof} (set REPRO_BENCH_PROFILE=paper for full sizes)")
    if sizes:
        print(f"star sizes: {list(sizes)}")

    counties = stars = blockgroups = None
    for name in names:
        started = time.perf_counter()
        module = _load_bench_module(_MODULE_FILES.get(name, name))
        if name in ("cluster", "resilience", "obsplane"):
            # Self-contained drivers: boot shard processes, print their
            # own table and write BENCH_<name>.json themselves.
            rc = module.main()
            if rc:
                return rc
            continue
        if name in ("table1", "figure1"):
            counties = counties or CountiesWorkload.build(prof)
            runner = getattr(module, f"run_{name}")
            rows = runner(counties)
        elif name == "table2":
            stars = stars or StarsWorkload.build(prof, sizes=sizes, regen=regen)
            rows = module.run_table2(stars)
        elif name in _COUNTIES_STARS:
            counties = counties or CountiesWorkload.build(prof)
            stars = stars or StarsWorkload.build(prof, sizes=sizes, regen=regen)
            rows = getattr(module, f"run_{name}")(counties, stars)
        else:  # table3 / figure2
            blockgroups = blockgroups or BlockgroupsWorkload.build(prof)
            runner = getattr(module, f"run_{name}")
            rows = runner(blockgroups)
        elapsed = time.perf_counter() - started
        # Nested values (op-counter dicts) go to the JSON sidecar only;
        # the printed table keeps the scalar columns.
        scalar_cols = (
            sorted(
                k for k, v in rows[0].items() if not isinstance(v, (dict, list))
            )
            if rows
            else ["(empty)"]
        )
        table = ExperimentTable(
            experiment=f"{name}_cli",
            title=f"{name} (driver wall time {elapsed:.1f}s)",
            columns=scalar_cols,
        )
        for row in rows:
            table.add_row(*(row[k] for k in table.columns))
        table.emit()
        json_path = _write_json(name, prof, elapsed, rows)
        print(f"wrote {json_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
