"""Benchmark reporting: paper-style tables with paper-vs-measured columns.

Every benchmark regenerates one table or figure from the paper.  The
:class:`ExperimentTable` helper renders the measured rows next to the
paper's reference values (where the published numbers survive) and appends
the rendered table to ``benchmarks/results/<experiment>.md`` so a full
bench run leaves a reviewable record.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["ExperimentTable", "emit_bench_json", "repo_root", "results_dir"]


def repo_root() -> str:
    """The repository checkout this package is running from."""
    return os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    )


def results_dir() -> str:
    """Directory collecting rendered benchmark tables."""
    path = os.environ.get(
        "REPRO_RESULTS_DIR", os.path.join(repo_root(), "benchmarks", "results")
    )
    os.makedirs(path, exist_ok=True)
    return path


def emit_bench_json(name: str, payload: Dict[str, Any]) -> str:
    """Write ``BENCH_<name>.json`` under ``results_dir()`` *and* mirror it
    at the repo root, where release tooling and CI diffs expect to find
    the latest benchmark snapshot.  Returns the results-dir path."""
    filename = f"BENCH_{name}.json"
    text = json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"
    path = os.path.join(results_dir(), filename)
    for target in (path, os.path.join(repo_root(), filename)):
        with open(target, "w") as fh:
            fh.write(text)
    return path


@dataclass
class ExperimentTable:
    """One paper table/figure being regenerated."""

    experiment: str  # e.g. "table1"
    title: str
    columns: List[str]
    paper_note: str = ""  # what the paper reported (shape + any surviving numbers)
    rows: List[List[Any]] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row width {len(values)} != column count {len(self.columns)}"
            )
        self.rows.append(list(values))

    # ------------------------------------------------------------------
    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        rendered_rows = []
        for row in self.rows:
            cells = [_fmt(v) for v in row]
            widths = [max(w, len(c)) for w, c in zip(widths, cells)]
            rendered_rows.append(cells)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        rule = "-+-".join("-" * w for w in widths)
        lines = [f"== {self.title} ==", header, rule]
        for cells in rendered_rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(cells, widths)))
        if self.paper_note:
            lines.append(f"paper: {self.paper_note}")
        return "\n".join(lines)

    def emit(self, echo: bool = True) -> str:
        """Render, print and persist the table; returns the rendering."""
        text = self.render()
        if echo:
            print()
            print(text)
        path = os.path.join(results_dir(), f"{self.experiment}.md")
        with open(path, "w") as fh:
            fh.write(text + "\n")
        return text


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)
