"""Loading generated geometries into database tables."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.engine.database import Database
from repro.engine.table import Table
from repro.geometry.geometry import Geometry

__all__ = ["load_geometries"]


def load_geometries(
    db: Database,
    table_name: str,
    geometries: Sequence[Geometry],
    column: str = "geom",
    id_column: str = "id",
) -> Table:
    """Create a ``(id NUMBER, geom SDO_GEOMETRY)`` table and fill it."""
    table = db.create_table(table_name, [(id_column, "NUMBER"), (column, "SDO_GEOMETRY")])
    for i, geom in enumerate(geometries):
        table.insert((i, geom))
    return table
