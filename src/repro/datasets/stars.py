"""Synthetic star-cluster layer (stand-in for the paper's Table 2 data).

The paper's second dataset is 250K polygons describing star locations and
clusters in a cross-section of the sky, with subset sizes from 25 up to
250K used to study join scaling.  The property that drives the experiment
is *clustered skew*: stars bunch into clusters, so a self-join's result
size — and the nested loop's wasted probes — grow quickly with dataset
size.

We reproduce that with a Neyman–Scott cluster process: cluster centres are
uniform over the sky window; each star falls near a centre with a Gaussian
scatter; each star is a small hexagonal polygon whose radius makes roughly
intra-cluster neighbours overlap.
"""

from __future__ import annotations

import math
import random
from typing import List, Tuple

from repro.errors import DatasetError
from repro.datasets.random_geom import regular_polygon
from repro.geometry.geometry import Geometry

__all__ = ["stars", "DEFAULT_STAR_COUNT", "SKY_EXTENT"]

DEFAULT_STAR_COUNT = 250_000
SKY_EXTENT = (0.0, 0.0, 360.0, 90.0)  # RA x Dec, a sky cross-section


def stars(
    n: int = DEFAULT_STAR_COUNT,
    seed: int = 1234,
    extent: Tuple[float, float, float, float] = SKY_EXTENT,
    stars_per_cluster: float = 40.0,
    cluster_sigma_fraction: float = 0.004,
    star_radius_fraction: float = 0.0012,
    sides: int = 6,
) -> List[Geometry]:
    """Generate ``n`` star polygons with Neyman–Scott clustering.

    * ``stars_per_cluster`` — mean cluster population (Poisson-ish).
    * ``cluster_sigma_fraction`` — cluster scatter as a fraction of the
      extent's width.
    * ``star_radius_fraction`` — star polygon radius as a fraction of the
      extent's width; chosen so near neighbours within a cluster overlap.

    Subset selection for the scaling experiment is simply ``stars(N)[:k]``
    or regenerating with smaller ``n`` — stars are emitted cluster by
    cluster, so prefixes stay spatially clustered like the full set.
    """
    if n < 1:
        raise DatasetError(f"star count must be >= 1, got {n}")
    min_x, min_y, max_x, max_y = extent
    width, height = max_x - min_x, max_y - min_y
    if width <= 0 or height <= 0:
        raise DatasetError(f"degenerate extent {extent}")

    rng = random.Random(seed)
    sigma = cluster_sigma_fraction * width
    radius = star_radius_fraction * width

    result: List[Geometry] = []
    while len(result) < n:
        cx = rng.uniform(min_x, max_x)
        cy = rng.uniform(min_y, max_y)
        population = max(1, int(rng.expovariate(1.0 / stars_per_cluster)))
        for _ in range(min(population, n - len(result))):
            x = min(max(rng.gauss(cx, sigma), min_x + radius), max_x - radius)
            y = min(max(rng.gauss(cy, sigma), min_y + radius), max_y - radius)
            # Mild radius spread: a few bright "cluster cores" are bigger.
            r = radius * rng.uniform(0.5, 2.0)
            result.append(_star_polygon(rng, x, y, r, sides))
    return result


def _star_polygon(
    rng: random.Random, x: float, y: float, r: float, sides: int
) -> Geometry:
    # Random rotation so shared-orientation artefacts cannot occur.
    rotation = rng.uniform(0, 2 * math.pi / sides)
    pts = [
        (
            x + r * math.cos(2 * math.pi * k / sides + rotation),
            y + r * math.sin(2 * math.pi * k / sides + rotation),
        )
        for k in range(sides)
    ]
    return Geometry.polygon(pts)
