"""Seeded synthetic datasets standing in for the paper's proprietary data.

* :func:`counties` — contiguous county-like tessellation (Table 1).
* :func:`stars` — clustered star polygons (Table 2).
* :func:`blockgroups` — complex heavy-tailed polygons (Table 3).
* :func:`load_geometries` — bulk load any of them into a database table.
"""

from repro.datasets.blockgroups import (
    BLOCKGROUP_EXTENT,
    DEFAULT_BLOCKGROUP_COUNT,
    blockgroups,
)
from repro.datasets.cache import cache_dir, cache_path, cached_dataset
from repro.datasets.counties import CONUS_EXTENT, DEFAULT_COUNTY_COUNT, counties
from repro.datasets.loader import load_geometries
from repro.datasets.random_geom import radial_polygon, regular_polygon
from repro.datasets.stars import DEFAULT_STAR_COUNT, SKY_EXTENT, stars

__all__ = [
    "counties",
    "DEFAULT_COUNTY_COUNT",
    "CONUS_EXTENT",
    "stars",
    "DEFAULT_STAR_COUNT",
    "SKY_EXTENT",
    "blockgroups",
    "DEFAULT_BLOCKGROUP_COUNT",
    "BLOCKGROUP_EXTENT",
    "load_geometries",
    "radial_polygon",
    "regular_polygon",
    "cached_dataset",
    "cache_dir",
    "cache_path",
]
