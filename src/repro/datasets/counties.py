"""Synthetic "US counties" layer (stand-in for the paper's Table 1 data).

The paper joins the 3230 US county polygons with themselves at distance 0
(intersect) and at distances 0.1 / 0.25 / 0.5 (degrees).  What matters for
the join's behaviour is that the layer is a contiguous planar tessellation:
neighbouring polygons share boundaries (so the intersect self-join returns
each polygon with itself and its ring of neighbours), and the result size
grows steadily with join distance.

This generator builds exactly that: a jittered grid over a CONUS-shaped
extent (~57.5 x 25 "degrees"), with shared cell edges refined by
deterministic midpoint jitter so the borders look hand-drawn but remain
watertight (both neighbours compute identical edge vertices).
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Tuple

from repro.errors import DatasetError
from repro.datasets.random_geom import edge_jitter_seed
from repro.geometry.geometry import Geometry

__all__ = ["counties", "DEFAULT_COUNTY_COUNT", "CONUS_EXTENT"]

DEFAULT_COUNTY_COUNT = 3230
CONUS_EXTENT = (0.0, 0.0, 57.5, 25.0)  # ~ lon/lat span of the lower 48

Coord = Tuple[float, float]


def counties(
    n: int = DEFAULT_COUNTY_COUNT,
    seed: int = 42,
    extent: Tuple[float, float, float, float] = CONUS_EXTENT,
    refine: int = 2,
) -> List[Geometry]:
    """Generate ``n`` contiguous county-like polygons.

    ``refine`` extra vertices are inserted per cell edge (deterministically
    shared with the neighbouring cell), giving each county ~4*(refine+1)
    boundary vertices.
    """
    if n < 1:
        raise DatasetError(f"county count must be >= 1, got {n}")
    min_x, min_y, max_x, max_y = extent
    width, height = max_x - min_x, max_y - min_y
    if width <= 0 or height <= 0:
        raise DatasetError(f"degenerate extent {extent}")

    # Grid shape matching the extent's aspect ratio, with >= n cells.
    aspect = width / height
    rows = max(1, int(math.sqrt(n / aspect)))
    cols = max(1, math.ceil(n / rows))
    while rows * cols < n:
        cols += 1

    dx, dy = width / cols, height / rows
    rng = random.Random(seed)

    # Jittered lattice: interior vertices move up to 30% of a cell; the
    # outer boundary stays put so the tessellation exactly tiles the extent.
    lattice: Dict[Tuple[int, int], Coord] = {}
    for i in range(cols + 1):
        for j in range(rows + 1):
            x = min_x + i * dx
            y = min_y + j * dy
            if 0 < i < cols:
                x += rng.uniform(-0.3, 0.3) * dx
            if 0 < j < rows:
                y += rng.uniform(-0.3, 0.3) * dy
            lattice[(i, j)] = (x, y)

    polygons: List[Geometry] = []
    for j in range(rows):
        for i in range(cols):
            if len(polygons) >= n:
                break
            corners = [(i, j), (i + 1, j), (i + 1, j + 1), (i, j + 1)]  # CCW
            ring: List[Coord] = []
            for k in range(4):
                a, b = corners[k], corners[(k + 1) % 4]
                ring.append(lattice[a])
                ring.extend(_refined_edge(seed, lattice, a, b, refine))
            polygons.append(Geometry.polygon(ring))
    return polygons


def _refined_edge(
    base_seed: int,
    lattice: Dict[Tuple[int, int], Coord],
    a: Tuple[int, int],
    b: Tuple[int, int],
    refine: int,
) -> List[Coord]:
    """Interior vertices of edge a->b, identical for both adjacent cells.

    The per-edge RNG is seeded from the *sorted* endpoint pair; points are
    generated in canonical (sorted) direction and reversed when the caller
    walks the edge the other way, so the shared border is a single polyline.
    """
    if refine < 1:
        return []
    pa, pb = lattice[a], lattice[b]
    lo, hi = sorted((a, b))
    p_lo, p_hi = lattice[lo], lattice[hi]
    edge_rng = random.Random(edge_jitter_seed(base_seed, a, b))
    ex, ey = p_hi[0] - p_lo[0], p_hi[1] - p_lo[1]
    length = math.hypot(ex, ey) or 1.0
    # Unit normal for perpendicular jitter.
    nx, ny = -ey / length, ex / length
    pts: List[Coord] = []
    for k in range(1, refine + 1):
        t = k / (refine + 1)
        offset = edge_rng.uniform(-0.08, 0.08) * length
        pts.append((p_lo[0] + t * ex + offset * nx, p_lo[1] + t * ey + offset * ny))
    if (pa, pb) != (p_lo, p_hi):
        pts.reverse()
    return pts
