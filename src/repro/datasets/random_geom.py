"""Shared randomness and geometry-shape helpers for the dataset generators.

All generators are deterministic functions of an integer seed; any
randomness derives from :class:`random.Random` seeded explicitly (never the
global RNG), so every benchmark run sees byte-identical data.
"""

from __future__ import annotations

import math
import random
from typing import List, Tuple

from repro.errors import DatasetError
from repro.geometry.geometry import Geometry

__all__ = ["radial_polygon", "regular_polygon", "edge_jitter_seed"]

Coord = Tuple[float, float]


def regular_polygon(cx: float, cy: float, radius: float, sides: int) -> Geometry:
    """A regular ``sides``-gon centred at (cx, cy)."""
    if sides < 3:
        raise DatasetError(f"polygon needs >= 3 sides, got {sides}")
    if radius <= 0:
        raise DatasetError(f"radius must be positive, got {radius}")
    pts = [
        (
            cx + radius * math.cos(2 * math.pi * k / sides),
            cy + radius * math.sin(2 * math.pi * k / sides),
        )
        for k in range(sides)
    ]
    return Geometry.polygon(pts)


def radial_polygon(
    rng: random.Random,
    cx: float,
    cy: float,
    mean_radius: float,
    n_vertices: int,
    irregularity: float = 0.35,
) -> Geometry:
    """A star-convex polygon: radius varies smoothly with angle.

    The radius function is a low-order random Fourier series, which keeps
    the boundary wiggly (realistic administrative-boundary texture) while
    guaranteeing the ring cannot self-intersect.
    """
    if n_vertices < 3:
        raise DatasetError(f"polygon needs >= 3 vertices, got {n_vertices}")
    if not 0.0 <= irregularity < 1.0:
        raise DatasetError(f"irregularity must be in [0, 1), got {irregularity}")
    # 3 random harmonics with decaying amplitude.
    harmonics = [
        (rng.uniform(0.5, 1.0) / (k + 1), rng.uniform(0, 2 * math.pi), k + 2)
        for k in range(3)
    ]
    norm = sum(a for a, _p, _f in harmonics) or 1.0
    pts: List[Coord] = []
    for i in range(n_vertices):
        theta = 2 * math.pi * i / n_vertices
        wobble = sum(
            a * math.sin(f * theta + p) for a, p, f in harmonics
        ) / norm
        r = mean_radius * (1.0 + irregularity * wobble)
        r = max(r, mean_radius * 0.05)
        pts.append((cx + r * math.cos(theta), cy + r * math.sin(theta)))
    return Geometry.polygon(pts)


def edge_jitter_seed(base_seed: int, a: Tuple[int, int], b: Tuple[int, int]) -> int:
    """Deterministic per-edge seed, symmetric in the edge's endpoints.

    The jittered-grid generators refine shared cell edges; hashing the
    *sorted* endpoint pair means both neighbouring cells derive identical
    midpoints, keeping the tessellation watertight.
    """
    lo, hi = sorted((a, b))
    return hash((base_seed, lo, hi)) & 0x7FFFFFFF
