"""Disk cache for generated datasets.

Generating 250K star polygons takes minutes of pure-Python time that the
geometry of the result does not depend on — the generators are fully
deterministic in ``(n, seed, params)``.  :func:`cached_dataset` memoises a
generator call on disk so the full-scale Table 2 bench pays generation
once per machine instead of once per run.

Cache entries are pickles named ``<kind>_n<count>_s<seed>[_<digest>].pkl``
(the digest covers any extra generator kwargs) under the first of:

* ``$REPRO_DATASET_CACHE`` (set by CI to keep caches inside the workspace)
* ``~/.cache/repro/datasets``

Writes are atomic (tmp file + rename), so a crashed or parallel run never
leaves a truncated pickle behind; a corrupt or unreadable entry falls back
to regeneration rather than failing the caller.  ``regen=True`` (the
``--regen`` bench flag) bypasses reads and overwrites the entry.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Callable, List

__all__ = ["cache_dir", "cache_path", "cached_dataset"]


def cache_dir() -> Path:
    """The dataset cache directory (created on demand)."""
    root = os.environ.get("REPRO_DATASET_CACHE")
    if root:
        path = Path(root)
    else:
        path = Path.home() / ".cache" / "repro" / "datasets"
    path.mkdir(parents=True, exist_ok=True)
    return path


def cache_path(kind: str, n: int, seed: int, **params: Any) -> Path:
    """The cache file for one generator call."""
    name = f"{kind}_n{n}_s{seed}"
    if params:
        blob = repr(sorted(params.items())).encode()
        name += "_" + hashlib.sha256(blob).hexdigest()[:12]
    return cache_dir() / f"{name}.pkl"


def cached_dataset(
    kind: str,
    builder: Callable[..., List[Any]],
    n: int,
    seed: int,
    regen: bool = False,
    **params: Any,
) -> List[Any]:
    """Load ``builder(n, seed=seed, **params)`` through the disk cache."""
    path = cache_path(kind, n, seed, **params)
    if not regen and path.exists():
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except Exception:
            # Truncated/incompatible entry: fall through and regenerate.
            pass
    data = builder(n, seed=seed, **params)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(data, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    except Exception:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return data
