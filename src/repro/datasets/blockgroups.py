"""Synthetic "US block-groups" layer (stand-in for the paper's Table 3 data).

The paper creates Quadtree and R-tree indexes on ~230K "arbitrarily-shaped
complex polygon geometries".  What drives the experiment is polygon
*complexity*: tessellation cost scales with boundary length and vertex
count, which is why Quadtree creation is much slower than R-tree creation
and why parallelising tessellation pays off.

The generator produces star-convex polygons with a heavy-tailed (lognormal)
vertex-count distribution — most polygons are modest, a tail is very
complex — centred on a clustered urban-like point pattern.
"""

from __future__ import annotations

import math
import random
from typing import List, Tuple

from repro.errors import DatasetError
from repro.datasets.random_geom import radial_polygon
from repro.geometry.geometry import Geometry

__all__ = ["blockgroups", "DEFAULT_BLOCKGROUP_COUNT", "BLOCKGROUP_EXTENT"]

DEFAULT_BLOCKGROUP_COUNT = 230_000
BLOCKGROUP_EXTENT = (0.0, 0.0, 57.5, 25.0)


def blockgroups(
    n: int = DEFAULT_BLOCKGROUP_COUNT,
    seed: int = 7,
    extent: Tuple[float, float, float, float] = BLOCKGROUP_EXTENT,
    mean_vertices: float = 24.0,
    vertex_sigma: float = 0.9,
    max_vertices: int = 600,
    radius_fraction: float = 0.002,
) -> List[Geometry]:
    """Generate ``n`` complex polygons with heavy-tailed vertex counts.

    * ``mean_vertices`` / ``vertex_sigma`` — lognormal parameters: the
      median polygon has ~``mean_vertices`` vertices; the tail reaches
      ``max_vertices``.
    * ``radius_fraction`` — median polygon radius as a fraction of extent
      width; polygons with more vertices are proportionally larger (block
      groups with long boundaries cover more area).
    """
    if n < 1:
        raise DatasetError(f"blockgroup count must be >= 1, got {n}")
    min_x, min_y, max_x, max_y = extent
    width, height = max_x - min_x, max_y - min_y
    if width <= 0 or height <= 0:
        raise DatasetError(f"degenerate extent {extent}")

    rng = random.Random(seed)
    base_radius = radius_fraction * width

    # Urban clustering: a few hundred population centres, sized by a
    # Zipf-ish weight, so polygon density is highly non-uniform.
    n_centres = max(8, int(math.sqrt(n)))
    centres = [
        (
            rng.uniform(min_x, max_x),
            rng.uniform(min_y, max_y),
            1.0 / (k + 1) ** 0.6,
        )
        for k in range(n_centres)
    ]
    total_weight = sum(w for _x, _y, w in centres)
    cumulative: List[float] = []
    acc = 0.0
    for _x, _y, w in centres:
        acc += w / total_weight
        cumulative.append(acc)

    result: List[Geometry] = []
    for _ in range(n):
        u = rng.random()
        idx = _bisect(cumulative, u)
        cx, cy, _w = centres[idx]
        spread = 0.03 * width
        x = min(max(rng.gauss(cx, spread), min_x), max_x)
        y = min(max(rng.gauss(cy, spread), min_y), max_y)
        n_vertices = int(rng.lognormvariate(math.log(mean_vertices), vertex_sigma))
        n_vertices = min(max(n_vertices, 4), max_vertices)
        # Bigger boundary -> bigger polygon (sub-linear growth).
        radius = base_radius * (n_vertices / mean_vertices) ** 0.5
        result.append(
            radial_polygon(rng, x, y, radius, n_vertices, irregularity=0.45)
        )
    return result


def _bisect(cumulative: List[float], u: float) -> int:
    import bisect

    return min(bisect.bisect_left(cumulative, u), len(cumulative) - 1)
