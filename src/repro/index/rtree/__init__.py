"""R-tree spatial index: dynamic tree, STR bulk load, join cursor, kNN."""

from repro.index.rtree.bulkload import build_parallel, merge_subtrees, str_pack
from repro.index.rtree.join import CandidatePair, RTreeJoinCursor
from repro.index.rtree.knn import incremental_nearest, nearest_neighbors
from repro.index.rtree.node import Entry, RTreeNode
from repro.index.rtree.persist import dump_rtree, load_rtree
from repro.index.rtree.rtree import DEFAULT_FANOUT, RTree
from repro.index.rtree.spatial_index import RTreeIndex

__all__ = [
    "RTree",
    "RTreeNode",
    "Entry",
    "DEFAULT_FANOUT",
    "str_pack",
    "merge_subtrees",
    "build_parallel",
    "RTreeJoinCursor",
    "CandidatePair",
    "nearest_neighbors",
    "incremental_nearest",
    "dump_rtree",
    "load_rtree",
    "RTreeIndex",
]
