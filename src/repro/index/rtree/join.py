"""Synchronized R-tree traversal join (the primary filter of spatial join).

:class:`RTreeJoinCursor` performs the index-index join of two R-trees and
is *resumable*: each call to :meth:`next_candidates` returns up to N
candidate rowid pairs and preserves traversal state (a stack of node
pairs), which is exactly what the spatial_join table function's fetch
interface needs (paper §4.2 — "the spatial join processing is resumed
using the contents of the stack").

The interaction test at every level is MBR-vs-MBR, optionally with a
distance slack so the same traversal serves both ``INTERSECT`` and
``WITHIN_DISTANCE`` joins.

Primary-filter strategies
-------------------------

Within each node pair the interacting entry pairs can be found two ways,
selected by :class:`JoinStrategy`:

* ``NESTED`` — the naive O(|A|·|B|) double loop over the entry lists (the
  original policy, kept as the ablation baseline).
* ``SWEEP`` — sort-based plane sweep with *space restriction* (Brinkhoff
  et al.; Tsitsigkos et al., "Parallel In-Memory Evaluation of Spatial
  Joins"): both entry lists are first clipped to the distance-expanded
  intersection of the parent MBRs, then sorted by min-x and swept, testing
  only pairs whose x-ranges interact — O(n log n + k) instead of O(n·m).
  The sweep reads the node's flat-array (struct-of-arrays) coordinate
  vectors (:meth:`RTreeNode.coords`), comparing raw floats instead of
  chasing ``Entry → MBR`` attribute chains; ``use_flat_arrays=False``
  rebuilds plain coordinate lists on every node-pair visit instead (the
  object-layout ablation point).

* ``GRID`` — space-oriented: instead of pairing entries node by node, each
  root pair's leaf entries are collected, binned into a uniform grid over
  their joint MBR, and plane-swept tile by tile with two-layer duplicate
  avoidance (:mod:`repro.core.grid_partition`).  Each root pair is gridded
  *independently*, so a cursor seeded with an arbitrary partition of the
  Figure 1 subtree-pair cross product still joins exactly its partition.
  Tiles replace node pairs as the unit of resumable work.

All strategies emit exactly the same candidate set; only the work done to
find it differs, which the cost counters (``mbr_test``,
``sweep_sort_per_item``, ``sweep_pair_emit``, ``grid_assign_per_entry``,
``grid_pair_skip``) make visible in simulated time.
"""

from __future__ import annotations

import enum
import math
from collections import deque
from typing import Deque, Iterator, List, Optional, Tuple

from repro.engine.parallel import WorkerContext
from repro.geometry import kernels
from repro.geometry.mbr import MBR
from repro.index.rtree.node import NodeCoords, RTreeNode, entry_coords
from repro.storage.heap import RowId

__all__ = ["CandidatePair", "JoinStrategy", "RTreeJoinCursor"]

# (rowid_a, rowid_b, mbr_a, mbr_b)
CandidatePair = Tuple[RowId, RowId, MBR, MBR]


class JoinStrategy(enum.Enum):
    """Entry-pairing policy inside each node pair of the synchronized join."""

    NESTED = "NESTED"  # O(|A|·|B|) double loop (the naive baseline)
    SWEEP = "SWEEP"  # sort-based plane sweep with space restriction
    GRID = "GRID"  # uniform-grid partitioning + per-tile sweep with
    # two-layer duplicate avoidance (space-oriented, not tree-oriented)


class RTreeJoinCursor:
    """Resumable pairwise traversal of two R-tree subtree forests."""

    def __init__(
        self,
        root_pairs: List[Tuple[RTreeNode, RTreeNode]],
        distance: float = 0.0,
        strategy: JoinStrategy = JoinStrategy.SWEEP,
        use_flat_arrays: bool = True,
    ):
        if distance < 0:
            raise ValueError(f"distance must be >= 0, got {distance}")
        self.distance = distance
        self.strategy = strategy
        self.use_flat_arrays = use_flat_arrays
        # The stack is seeded with the subtree-root pairs; in the serial
        # join this is [(root1, root2)], in the parallel join each slave
        # gets a partition of the level-k cross product (Figure 1).
        self._stack: List[Tuple[RTreeNode, RTreeNode]] = list(root_pairs)
        # Overflow pairs are drained FIFO so the emission order seen by the
        # caller equals the production order (AS_PRODUCED fetch order).
        self._buffer: Deque[CandidatePair] = deque()
        # GRID state: tiles of the root pair currently being swept.  A tile
        # is the grid strategy's unit of resumable work, as a node pair is
        # for the tree-oriented strategies.
        self._grid_tiles: Deque[Tuple[object, object]] = deque()
        self.pairs_tested = 0
        self.nodes_visited = 0
        self.pairs_emitted = 0
        self.duplicates_avoided = 0  # GRID: non-canonical pairs skipped

    @property
    def exhausted(self) -> bool:
        return not self._stack and not self._buffer and not self._grid_tiles

    def _interacts(self, a: MBR, b: MBR, ctx: Optional[WorkerContext]) -> bool:
        if ctx is not None:
            ctx.charge("mbr_test")
        self.pairs_tested += 1
        if self.distance == 0.0:
            return a.intersects(b)
        if a.is_empty or b.is_empty:
            return False
        # Squared comparison (no sqrt per test; same outcome as the sweep
        # refinement and the batch MBR kernel, bit for bit).
        dx = max(b.min_x - a.max_x, a.min_x - b.max_x, 0.0)
        dy = max(b.min_y - a.max_y, a.min_y - b.max_y, 0.0)
        return dx * dx + dy * dy <= self.distance * self.distance

    def next_candidates(
        self, max_pairs: int, ctx: Optional[WorkerContext] = None
    ) -> List[CandidatePair]:
        """Produce up to ``max_pairs`` candidate pairs, resuming traversal.

        Returns an empty list exactly when the join is complete.
        """
        out: List[CandidatePair] = []
        # Drain leftovers from a previous call first (FIFO: emission order
        # must match production order across batch boundaries).
        while self._buffer and len(out) < max_pairs:
            out.append(self._buffer.popleft())
        if self.strategy is JoinStrategy.GRID:
            self._next_grid(out, max_pairs, ctx)
            return out
        while self._stack and len(out) < max_pairs:
            node_a, node_b = self._stack.pop()
            self.nodes_visited += 2
            if ctx is not None:
                ctx.charge("rtree_node_visit", 2)
            if node_a.is_leaf and node_b.is_leaf:
                self._join_leaves(node_a, node_b, out, max_pairs, ctx)
            elif node_a.level >= node_b.level and not node_a.is_leaf:
                # Descend the taller (or equal-height internal) left node.
                if node_a.level == node_b.level and not node_b.is_leaf:
                    self._join_internal(node_a, node_b, ctx)
                else:
                    self._descend_left(node_a, node_b, ctx)
            else:
                self._descend_right(node_a, node_b, ctx)
        return out

    def drain(
        self, ctx: Optional[WorkerContext] = None, batch: int = 4096
    ) -> List[CandidatePair]:
        """Run the join to completion (convenience for tests/benchmarks)."""
        result: List[CandidatePair] = []
        while True:
            chunk = self.next_candidates(batch, ctx)
            if not chunk:
                return result
            result.extend(chunk)

    # ------------------------------------------------------------------
    # GRID strategy (space-oriented partitioning)
    # ------------------------------------------------------------------
    def _next_grid(
        self, out: List[CandidatePair], max_pairs: int, ctx: Optional[WorkerContext]
    ) -> None:
        """Resume the grid join: sweep pending tiles, gridding the next
        root pair whenever the tile queue runs dry."""
        from repro.core.grid_partition import GridSweepStats, tile_sweep

        while len(out) < max_pairs and (self._grid_tiles or self._stack):
            if not self._grid_tiles:
                self._grid_partition_pair(self._stack.pop(), ctx)
                continue
            ta, tb = self._grid_tiles.popleft()
            stats = GridSweepStats()
            for pair in tile_sweep(ta, tb, self.distance, ctx, stats):
                if len(out) < max_pairs:
                    out.append(pair)
                else:
                    self._buffer.append(pair)
            self.pairs_tested += stats.pairs_tested
            self.pairs_emitted += stats.pairs_emitted
            self.duplicates_avoided += stats.duplicates_avoided

    def _grid_partition_pair(
        self,
        pair: Tuple[RTreeNode, RTreeNode],
        ctx: Optional[WorkerContext],
    ) -> None:
        """Grid one root pair's leaf entries and queue its joinable tiles.

        Each root pair is partitioned independently — never pooled with the
        cursor's other pairs — so a cursor seeded with any partition of the
        subtree-pair cross product joins exactly those pairs.
        """
        from repro.core.grid_partition import build_grid_spec, build_tiles
        from repro.engine.cost import pick_grid_shape

        node_a, node_b = pair
        entries_a = self._collect_leaf_entries(node_a, ctx)
        entries_b = (
            entries_a
            if node_b is node_a
            else self._collect_leaf_entries(node_b, ctx)
        )
        if not entries_a or not entries_b:
            return
        box = node_a.mbr.union(node_b.mbr)
        nx, ny = pick_grid_shape(len(entries_a), len(entries_b))
        spec = build_grid_spec(box, nx, ny)
        tiles_a = build_tiles(entries_a, spec, 0.0, ctx)
        tiles_b = (
            tiles_a
            if entries_b is entries_a and self.distance == 0.0
            else build_tiles(entries_b, spec, self.distance, ctx)
        )
        for tile_id in sorted(tiles_a.keys() & tiles_b.keys()):
            self._grid_tiles.append((tiles_a[tile_id], tiles_b[tile_id]))

    def _collect_leaf_entries(
        self, node: RTreeNode, ctx: Optional[WorkerContext]
    ) -> List[Tuple[MBR, RowId]]:
        """All (mbr, rowid) leaf entries under ``node`` (one node visit
        charged per node touched, like the synchronized traversal)."""
        out: List[Tuple[MBR, RowId]] = []
        stack = [node]
        while stack:
            cur = stack.pop()
            self.nodes_visited += 1
            if ctx is not None:
                ctx.charge("rtree_node_visit")
            if cur.is_leaf:
                for entry in cur.entries:
                    assert entry.rowid is not None
                    out.append((entry.mbr, entry.rowid))
            else:
                stack.extend(cur.children())
        return out

    # ------------------------------------------------------------------
    # Entry pairing (strategy dispatch)
    # ------------------------------------------------------------------
    def _node_coords(self, node: RTreeNode) -> NodeCoords:
        if self.use_flat_arrays:
            return node.coords()
        # Object layout: rebuild the coordinate vectors on every visit by
        # walking the Entry → MBR chain (no per-node caching).
        return entry_coords(node.entries)

    def _pair_indices(
        self, node_a: RTreeNode, node_b: RTreeNode, ctx: Optional[WorkerContext]
    ) -> Iterator[Tuple[int, int]]:
        if self.strategy is JoinStrategy.NESTED:
            return self._nested_pairs(node_a, node_b, ctx)
        return self._sweep_pairs(node_a, node_b, ctx)

    def _nested_pairs(
        self, node_a: RTreeNode, node_b: RTreeNode, ctx: Optional[WorkerContext]
    ) -> Iterator[Tuple[int, int]]:
        """O(|A|·|B|) pairing, one batch MBR-kernel row per left entry.

        Same pair set and the same ``mbr_test`` charges as the per-pair
        double loop; only the per-test interpreter dispatch is batched.
        """
        na, nb = len(node_a.entries), len(node_b.entries)
        if na == 0 or nb == 0:
            return
        ax0, ay0, ax1, ay1 = self._node_coords(node_a)
        coords_b = self._node_coords(node_b)
        d = self.distance
        for i in range(na):
            self.pairs_tested += nb
            if ctx is not None:
                ctx.charge("mbr_test", nb)
            box = (ax0[i], ay0[i], ax1[i], ay1[i])
            for j in kernels.mbr_filter_indices(coords_b, box, d, exact=True):
                yield i, j

    def _sweep_pairs(
        self, node_a: RTreeNode, node_b: RTreeNode, ctx: Optional[WorkerContext]
    ) -> Iterator[Tuple[int, int]]:
        """Plane sweep with space restriction over the two entry lists.

        All comparisons are written in gap form (``lo - hi <= d``) so that
        the d > 0 window is a superset of the exact
        ``MBR.distance(...) <= d`` test applied before emitting — the
        emitted set is bit-identical to the NESTED strategy's.
        """
        na, nb = len(node_a.entries), len(node_b.entries)
        if na == 0 or nb == 0:
            return
        ax0, ay0, ax1, ay1 = self._node_coords(node_a)
        bx0, by0, bx1, by1 = self._node_coords(node_b)
        d = self.distance

        # --- space restriction: keep only entries that can interact with
        # the other node's MBR (exact min/max of the coordinate vectors).
        a_lo_x, a_hi_x = min(ax0), max(ax1)
        a_lo_y, a_hi_y = min(ay0), max(ay1)
        b_lo_x, b_hi_x = min(bx0), max(bx1)
        b_lo_y, b_hi_y = min(by0), max(by1)
        self.pairs_tested += na + nb
        if ctx is not None:
            ctx.charge("mbr_test", na + nb)
        ia = [
            i
            for i in range(na)
            if b_lo_x - ax1[i] <= d
            and ax0[i] - b_hi_x <= d
            and b_lo_y - ay1[i] <= d
            and ay0[i] - b_hi_y <= d
        ]
        if not ia:
            return
        ib = [
            j
            for j in range(nb)
            if a_lo_x - bx1[j] <= d
            and bx0[j] - a_hi_x <= d
            and a_lo_y - by1[j] <= d
            and by0[j] - a_hi_y <= d
        ]
        if not ib:
            return

        # --- sort both clipped lists by min-x.
        ia.sort(key=ax0.__getitem__)
        ib.sort(key=bx0.__getitem__)
        if ctx is not None:
            la, lb = len(ia), len(ib)
            ctx.charge(
                "sweep_sort_per_item",
                la * math.log2(max(la, 2)) + lb * math.log2(max(lb, 2)),
            )

        # --- sweep: advance the list with the smaller min-x; scan the
        # other list's x-window; test y-interaction (and the exact
        # squared rectangle distance when d > 0) before emitting.
        d2 = d * d
        i = j = 0
        la, lb = len(ia), len(ib)
        while i < la and j < lb:
            if ax0[ia[i]] <= bx0[ib[j]]:
                idx = ia[i]
                x_hi, y_lo, y_hi = ax1[idx], ay0[idx], ay1[idx]
                k = j
                while k < lb:
                    jdx = ib[k]
                    if bx0[jdx] - x_hi > d:
                        break
                    k += 1
                    self.pairs_tested += 1
                    if ctx is not None:
                        ctx.charge("mbr_test")
                    if by0[jdx] - y_hi > d or y_lo - by1[jdx] > d:
                        continue
                    if d > 0.0:
                        dx = max(bx0[jdx] - x_hi, ax0[idx] - bx1[jdx], 0.0)
                        dy = max(by0[jdx] - y_hi, y_lo - by1[jdx], 0.0)
                        if dx * dx + dy * dy > d2:
                            continue
                    self.pairs_emitted += 1
                    if ctx is not None:
                        ctx.charge("sweep_pair_emit")
                    yield idx, jdx
                i += 1
            else:
                jdx = ib[j]
                x_hi, y_lo, y_hi = bx1[jdx], by0[jdx], by1[jdx]
                k = i
                while k < la:
                    idx = ia[k]
                    if ax0[idx] - x_hi > d:
                        break
                    k += 1
                    self.pairs_tested += 1
                    if ctx is not None:
                        ctx.charge("mbr_test")
                    if ay0[idx] - y_hi > d or y_lo - ay1[idx] > d:
                        continue
                    if d > 0.0:
                        dx = max(ax0[idx] - x_hi, bx0[jdx] - ax1[idx], 0.0)
                        dy = max(ay0[idx] - y_hi, y_lo - ay1[idx], 0.0)
                        if dx * dx + dy * dy > d2:
                            continue
                    self.pairs_emitted += 1
                    if ctx is not None:
                        ctx.charge("sweep_pair_emit")
                    yield idx, jdx
                j += 1

    # ------------------------------------------------------------------
    # Node-pair handlers
    # ------------------------------------------------------------------
    def _join_leaves(
        self,
        node_a: RTreeNode,
        node_b: RTreeNode,
        out: List[CandidatePair],
        max_pairs: int,
        ctx: Optional[WorkerContext],
    ) -> None:
        entries_a, entries_b = node_a.entries, node_b.entries
        for i, j in self._pair_indices(node_a, node_b, ctx):
            ea, eb = entries_a[i], entries_b[j]
            assert ea.rowid is not None and eb.rowid is not None
            pair = (ea.rowid, eb.rowid, ea.mbr, eb.mbr)
            if len(out) < max_pairs:
                out.append(pair)
            else:
                self._buffer.append(pair)

    def _join_internal(
        self, node_a: RTreeNode, node_b: RTreeNode, ctx: Optional[WorkerContext]
    ) -> None:
        entries_a, entries_b = node_a.entries, node_b.entries
        for i, j in self._pair_indices(node_a, node_b, ctx):
            ea, eb = entries_a[i], entries_b[j]
            assert ea.child is not None and eb.child is not None
            self._stack.append((ea.child, eb.child))

    def _descend_left(
        self, node_a: RTreeNode, node_b: RTreeNode, ctx: Optional[WorkerContext]
    ) -> None:
        if self.strategy is JoinStrategy.NESTED:
            b_mbr = node_b.mbr
            for ea in node_a.entries:
                if self._interacts(ea.mbr, b_mbr, ctx):
                    assert ea.child is not None
                    self._stack.append((ea.child, node_b))
            return
        for i in self._one_sided_indices(node_a, node_b.mbr, ctx):
            child = node_a.entries[i].child
            assert child is not None
            self._stack.append((child, node_b))

    def _descend_right(
        self, node_a: RTreeNode, node_b: RTreeNode, ctx: Optional[WorkerContext]
    ) -> None:
        if self.strategy is JoinStrategy.NESTED:
            a_mbr = node_a.mbr
            for eb in node_b.entries:
                if self._interacts(a_mbr, eb.mbr, ctx):
                    assert eb.child is not None
                    self._stack.append((node_a, eb.child))
            return
        for j in self._one_sided_indices(node_b, node_a.mbr, ctx):
            child = node_b.entries[j].child
            assert child is not None
            self._stack.append((node_a, child))

    def _one_sided_indices(
        self, node: RTreeNode, other: MBR, ctx: Optional[WorkerContext]
    ) -> Iterator[int]:
        """Indices of ``node``'s entries interacting with ``other`` (one
        rectangle vs the node's flat coordinate vectors, resolved by the
        batch MBR kernel in a single call)."""
        if other.is_empty:
            return
        coords = self._node_coords(node)
        n = len(coords[0])
        self.pairs_tested += n
        if ctx is not None:
            ctx.charge("mbr_test", n)
        yield from kernels.mbr_filter_indices(
            coords, other.as_tuple(), self.distance, exact=True
        )
