"""Synchronized R-tree traversal join (the primary filter of spatial join).

:class:`RTreeJoinCursor` performs the index-index join of two R-trees and
is *resumable*: each call to :meth:`next_candidates` returns up to N
candidate rowid pairs and preserves traversal state (a stack of node
pairs), which is exactly what the spatial_join table function's fetch
interface needs (paper §4.2 — "the spatial join processing is resumed
using the contents of the stack").

The interaction test at every level is MBR-vs-MBR, optionally with a
distance slack so the same traversal serves both ``INTERSECT`` and
``WITHIN_DISTANCE`` joins.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.engine.parallel import WorkerContext
from repro.geometry.mbr import MBR
from repro.index.rtree.node import RTreeNode
from repro.storage.heap import RowId

__all__ = ["CandidatePair", "RTreeJoinCursor"]

# (rowid_a, rowid_b, mbr_a, mbr_b)
CandidatePair = Tuple[RowId, RowId, MBR, MBR]


class RTreeJoinCursor:
    """Resumable pairwise traversal of two R-tree subtree forests."""

    def __init__(
        self,
        root_pairs: List[Tuple[RTreeNode, RTreeNode]],
        distance: float = 0.0,
    ):
        if distance < 0:
            raise ValueError(f"distance must be >= 0, got {distance}")
        self.distance = distance
        # The stack is seeded with the subtree-root pairs; in the serial
        # join this is [(root1, root2)], in the parallel join each slave
        # gets a partition of the level-k cross product (Figure 1).
        self._stack: List[Tuple[RTreeNode, RTreeNode]] = list(root_pairs)
        self._buffer: List[CandidatePair] = []
        self.pairs_tested = 0
        self.nodes_visited = 0

    @property
    def exhausted(self) -> bool:
        return not self._stack and not self._buffer

    def _interacts(self, a: MBR, b: MBR, ctx: Optional[WorkerContext]) -> bool:
        if ctx is not None:
            ctx.charge("mbr_test")
        self.pairs_tested += 1
        if self.distance == 0.0:
            return a.intersects(b)
        return a.distance(b) <= self.distance

    def next_candidates(
        self, max_pairs: int, ctx: Optional[WorkerContext] = None
    ) -> List[CandidatePair]:
        """Produce up to ``max_pairs`` candidate pairs, resuming traversal.

        Returns an empty list exactly when the join is complete.
        """
        out: List[CandidatePair] = []
        # Drain leftovers from a previous call first.
        while self._buffer and len(out) < max_pairs:
            out.append(self._buffer.pop())
        while self._stack and len(out) < max_pairs:
            node_a, node_b = self._stack.pop()
            self.nodes_visited += 2
            if ctx is not None:
                ctx.charge("rtree_node_visit", 2)
            if node_a.is_leaf and node_b.is_leaf:
                self._join_leaves(node_a, node_b, out, max_pairs, ctx)
            elif node_a.level >= node_b.level and not node_a.is_leaf:
                # Descend the taller (or equal-height internal) left node.
                if node_a.level == node_b.level and not node_b.is_leaf:
                    self._join_internal(node_a, node_b, ctx)
                else:
                    self._descend_left(node_a, node_b, ctx)
            else:
                self._descend_right(node_a, node_b, ctx)
        return out

    def drain(
        self, ctx: Optional[WorkerContext] = None, batch: int = 4096
    ) -> List[CandidatePair]:
        """Run the join to completion (convenience for tests/benchmarks)."""
        result: List[CandidatePair] = []
        while True:
            chunk = self.next_candidates(batch, ctx)
            if not chunk:
                return result
            result.extend(chunk)

    # ------------------------------------------------------------------
    def _join_leaves(
        self,
        node_a: RTreeNode,
        node_b: RTreeNode,
        out: List[CandidatePair],
        max_pairs: int,
        ctx: Optional[WorkerContext],
    ) -> None:
        for ea in node_a.entries:
            for eb in node_b.entries:
                if self._interacts(ea.mbr, eb.mbr, ctx):
                    assert ea.rowid is not None and eb.rowid is not None
                    pair = (ea.rowid, eb.rowid, ea.mbr, eb.mbr)
                    if len(out) < max_pairs:
                        out.append(pair)
                    else:
                        self._buffer.append(pair)

    def _join_internal(
        self, node_a: RTreeNode, node_b: RTreeNode, ctx: Optional[WorkerContext]
    ) -> None:
        for ea in node_a.entries:
            for eb in node_b.entries:
                if self._interacts(ea.mbr, eb.mbr, ctx):
                    assert ea.child is not None and eb.child is not None
                    self._stack.append((ea.child, eb.child))

    def _descend_left(
        self, node_a: RTreeNode, node_b: RTreeNode, ctx: Optional[WorkerContext]
    ) -> None:
        b_mbr = node_b.mbr
        for ea in node_a.entries:
            if self._interacts(ea.mbr, b_mbr, ctx):
                assert ea.child is not None
                self._stack.append((ea.child, node_b))

    def _descend_right(
        self, node_a: RTreeNode, node_b: RTreeNode, ctx: Optional[WorkerContext]
    ) -> None:
        a_mbr = node_a.mbr
        for eb in node_b.entries:
            if self._interacts(a_mbr, eb.mbr, ctx):
                assert eb.child is not None
                self._stack.append((node_a, eb.child))
