"""The dynamic R-tree (Guttman insert/delete with quadratic split).

The tree stores ``(MBR, rowid)`` pairs at its leaves.  Every node visit and
every MBR comparison is charged to the :class:`WorkerContext` when one is
supplied, so searches and joins produce simulated-time costs.

Height bookkeeping: a node's ``level`` is its height above the leaves
(leaves are level 0); the tree's ``height`` is ``root.level + 1``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.errors import IndexBuildError
from repro.engine.parallel import WorkerContext
from repro.geometry import kernels
from repro.geometry.mbr import EMPTY_MBR, MBR, union_all
from repro.index.rtree.node import Entry, RTreeNode
from repro.storage.heap import RowId

__all__ = ["RTree"]

DEFAULT_FANOUT = 32


class RTree:
    """Dynamic R-tree over (MBR, rowid) entries."""

    def __init__(self, fanout: int = DEFAULT_FANOUT):
        if fanout < 4:
            raise IndexBuildError(f"fanout must be >= 4, got {fanout}")
        self.fanout = fanout
        self.min_entries = max(2, (fanout * 2) // 5)  # 40% fill floor
        self.root = RTreeNode(level=0)
        self._size = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return self.root.level + 1

    @property
    def mbr(self) -> MBR:
        return self.root.mbr

    def node_count(self) -> int:
        def count(node: RTreeNode) -> int:
            return 1 + sum(count(c) for c in node.children())

        return count(self.root)

    def leaf_entries(self) -> Iterator[Tuple[MBR, RowId]]:
        """Yield every (mbr, rowid) stored in the tree."""

        def walk(node: RTreeNode) -> Iterator[Tuple[MBR, RowId]]:
            if node.is_leaf:
                for e in node.entries:
                    assert e.rowid is not None
                    yield e.mbr, e.rowid
            else:
                for child in node.children():
                    yield from walk(child)

        yield from walk(self.root)

    def subtree_roots(self, levels_down: int) -> List[RTreeNode]:
        """Nodes ``levels_down`` below the root (the paper's subtree_root)."""
        return self.root.descend(levels_down)

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------
    def insert(
        self, mbr: MBR, rowid: RowId, ctx: Optional[WorkerContext] = None
    ) -> None:
        if mbr.is_empty:
            raise IndexBuildError("cannot index an empty MBR")
        entry = Entry(mbr, rowid=rowid)
        if ctx is not None:
            # A dynamic insert dirties the whole root-to-leaf path (leaf
            # write + ancestor MBR adjustments) — the write amplification
            # that bulk loading avoids.
            ctx.charge("page_write", self.height)
        split = self._insert_at(self.root, entry, level=0, ctx=ctx)
        if split is not None:
            old_root = self.root
            self.root = RTreeNode(
                level=old_root.level + 1,
                entries=[
                    Entry(old_root.mbr, child=old_root),
                    Entry(split.mbr, child=split),
                ],
            )
        self._size += 1

    def _insert_at(
        self,
        node: RTreeNode,
        entry: Entry,
        level: int,
        ctx: Optional[WorkerContext],
    ) -> Optional[RTreeNode]:
        """Insert ``entry`` into the subtree; return a split sibling if any."""
        if ctx is not None:
            ctx.charge("rtree_node_visit")
        if node.level == level:
            node.entries.append(entry)
            node.invalidate_coords()
            if len(node.entries) > self.fanout:
                return self._split(node, ctx)
            return None
        child_entry = self._choose_subtree(node, entry.mbr, ctx)
        split = self._insert_at(child_entry.child, entry, level, ctx)  # type: ignore[arg-type]
        child_entry.mbr = child_entry.child.mbr  # type: ignore[union-attr]
        node.invalidate_coords()  # entry MBR changed in place
        if split is not None:
            node.entries.append(Entry(split.mbr, child=split))
            if len(node.entries) > self.fanout:
                return self._split(node, ctx)
        return None

    def _choose_subtree(
        self, node: RTreeNode, mbr: MBR, ctx: Optional[WorkerContext]
    ) -> Entry:
        """Least-enlargement child (ties: smaller area)."""
        best: Optional[Entry] = None
        best_key: Tuple[float, float] = (float("inf"), float("inf"))
        for entry in node.entries:
            if ctx is not None:
                ctx.charge("mbr_test")
            key = (entry.mbr.enlargement(mbr), entry.mbr.area)
            if key < best_key:
                best_key = key
                best = entry
        assert best is not None
        return best

    def _split(
        self, node: RTreeNode, ctx: Optional[WorkerContext] = None
    ) -> RTreeNode:
        """Guttman quadratic split: returns the new sibling node."""
        entries = node.entries
        if ctx is not None:
            # Quadratic seed picking compares every entry pair, and the
            # split writes two fresh nodes.
            ctx.charge("mbr_test", len(entries) * len(entries))
            ctx.charge("page_write", 2)
        seed_a, seed_b = self._pick_seeds(entries)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        mbr_a = entries[seed_a].mbr
        mbr_b = entries[seed_b].mbr
        remaining = [e for i, e in enumerate(entries) if i not in (seed_a, seed_b)]

        while remaining:
            # Force-assign if one group must absorb the rest to reach min fill.
            if len(group_a) + len(remaining) <= self.min_entries:
                for e in remaining:
                    group_a.append(e)
                    mbr_a = mbr_a.union(e.mbr)
                break
            if len(group_b) + len(remaining) <= self.min_entries:
                for e in remaining:
                    group_b.append(e)
                    mbr_b = mbr_b.union(e.mbr)
                break
            # PickNext: entry with the largest preference difference.
            best_idx = 0
            best_diff = -1.0
            for i, e in enumerate(remaining):
                d_a = mbr_a.enlargement(e.mbr)
                d_b = mbr_b.enlargement(e.mbr)
                diff = abs(d_a - d_b)
                if diff > best_diff:
                    best_diff = diff
                    best_idx = i
            chosen = remaining.pop(best_idx)
            d_a = mbr_a.enlargement(chosen.mbr)
            d_b = mbr_b.enlargement(chosen.mbr)
            if (d_a, mbr_a.area, len(group_a)) <= (d_b, mbr_b.area, len(group_b)):
                group_a.append(chosen)
                mbr_a = mbr_a.union(chosen.mbr)
            else:
                group_b.append(chosen)
                mbr_b = mbr_b.union(chosen.mbr)

        node.entries = group_a
        node.invalidate_coords()
        return RTreeNode(level=node.level, entries=group_b)

    @staticmethod
    def _pick_seeds(entries: List[Entry]) -> Tuple[int, int]:
        """Pair with the largest dead space when combined."""
        worst = (-1.0, 0, 1)
        n = len(entries)
        for i in range(n):
            for j in range(i + 1, n):
                waste = (
                    entries[i].mbr.union(entries[j].mbr).area
                    - entries[i].mbr.area
                    - entries[j].mbr.area
                )
                if waste > worst[0]:
                    worst = (waste, i, j)
        return worst[1], worst[2]

    # ------------------------------------------------------------------
    # Delete
    # ------------------------------------------------------------------
    def delete(
        self, mbr: MBR, rowid: RowId, ctx: Optional[WorkerContext] = None
    ) -> bool:
        """Remove one (mbr, rowid) entry; returns False if not found."""
        orphans: List[Entry] = []
        found = self._delete_from(self.root, mbr, rowid, orphans, ctx)
        if not found:
            return False
        self._size -= 1
        # Shrink the root while it has a single internal child.
        while not self.root.is_leaf and len(self.root.entries) == 1:
            self.root = self.root.entries[0].child  # type: ignore[assignment]
        # Reinsert entries from dissolved nodes at their original level.
        for orphan in orphans:
            if orphan.is_leaf_entry:
                split = self._insert_at(self.root, orphan, level=0, ctx=ctx)
            else:
                target_level = orphan.child.level + 1  # type: ignore[union-attr]
                if target_level > self.root.level:
                    # Tree shrank below the orphan subtree's height: merge by
                    # reinserting its leaf entries instead.
                    for leaf_mbr, leaf_rowid in _subtree_leaves(orphan.child):  # type: ignore[arg-type]
                        self._size -= 1  # insert() will re-increment
                        self.insert(leaf_mbr, leaf_rowid, ctx)
                    continue
                split = self._insert_at(self.root, orphan, level=target_level, ctx=ctx)
            if split is not None:
                old_root = self.root
                self.root = RTreeNode(
                    level=old_root.level + 1,
                    entries=[
                        Entry(old_root.mbr, child=old_root),
                        Entry(split.mbr, child=split),
                    ],
                )
        return True

    def _delete_from(
        self,
        node: RTreeNode,
        mbr: MBR,
        rowid: RowId,
        orphans: List[Entry],
        ctx: Optional[WorkerContext],
    ) -> bool:
        if ctx is not None:
            ctx.charge("rtree_node_visit")
        if node.is_leaf:
            for i, entry in enumerate(node.entries):
                if ctx is not None:
                    ctx.charge("mbr_test")
                if entry.rowid == rowid and entry.mbr == mbr:
                    node.entries.pop(i)
                    node.invalidate_coords()
                    return True
            return False
        for i, entry in enumerate(node.entries):
            if ctx is not None:
                ctx.charge("mbr_test")
            if not entry.mbr.contains(mbr):
                continue
            child = entry.child
            assert child is not None
            if self._delete_from(child, mbr, rowid, orphans, ctx):
                if len(child.entries) < self.min_entries and node is not None:
                    # Condense: dissolve the underfull child, queue reinserts.
                    node.entries.pop(i)
                    orphans.extend(child.entries)
                else:
                    entry.mbr = child.mbr
                node.invalidate_coords()
                return True
        return False

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(
        self, query: MBR, ctx: Optional[WorkerContext] = None
    ) -> Iterator[Tuple[MBR, RowId]]:
        """Yield (mbr, rowid) for leaf entries whose MBR intersects ``query``.

        Interaction tests run against each node's flat-array coordinate
        vectors (struct-of-arrays layout) through the batch MBR kernel:
        one window probe tests a whole node's entry list in a single
        vectorized call (or the equivalent scalar loop on the python
        backend), instead of chasing per-entry MBR objects.
        """
        if self._size == 0 or query.is_empty:
            return
        window = query.as_tuple()
        stack = [self.root]
        while stack:
            node = stack.pop()
            if ctx is not None:
                ctx.charge("rtree_node_visit")
            entries = node.entries
            if ctx is not None:
                ctx.charge("mbr_test", len(entries))
            is_leaf = node.is_leaf
            for i in kernels.mbr_filter_indices(node.coords(), window):
                entry = entries[i]
                if is_leaf:
                    assert entry.rowid is not None
                    yield entry.mbr, entry.rowid
                else:
                    assert entry.child is not None
                    stack.append(entry.child)

    def search_within(
        self, query: MBR, distance: float, ctx: Optional[WorkerContext] = None
    ) -> Iterator[Tuple[MBR, RowId]]:
        """Leaf entries whose MBR is within ``distance`` of ``query``."""
        yield from self.search(query.expand(distance), ctx)

    # ------------------------------------------------------------------
    # Invariants (for property tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        count = self._check_node(self.root, is_root=True)
        if count != self._size:
            raise IndexBuildError(f"size mismatch: counted {count}, stored {self._size}")

    def _check_node(self, node: RTreeNode, is_root: bool = False) -> int:
        if len(node.entries) > self.fanout:
            raise IndexBuildError(f"overfull node: {len(node.entries)} > {self.fanout}")
        if not is_root and len(node.entries) < self.min_entries:
            raise IndexBuildError(
                f"underfull node: {len(node.entries)} < {self.min_entries}"
            )
        if node.is_leaf:
            for e in node.entries:
                if e.rowid is None:
                    raise IndexBuildError("leaf entry without rowid")
            return len(node.entries)
        total = 0
        for e in node.entries:
            if e.child is None:
                raise IndexBuildError("internal entry without child")
            if e.child.level != node.level - 1:
                raise IndexBuildError(
                    f"level skew: node level {node.level} has child level {e.child.level}"
                )
            if not e.mbr.contains(e.child.mbr) and e.mbr != e.child.mbr:
                raise IndexBuildError("entry MBR does not cover child MBR")
            total += self._check_node(e.child)
        return total


def _subtree_leaves(node: RTreeNode) -> Iterator[Tuple[MBR, RowId]]:
    if node.is_leaf:
        for e in node.entries:
            assert e.rowid is not None
            yield e.mbr, e.rowid
    else:
        for child in node.children():
            yield from _subtree_leaves(child)
