"""R-tree node structures.

Nodes hold entries; each entry pairs an MBR with either a child node
(internal levels) or a rowid of the indexed table (leaf level).  Level 0 is
the leaf level, so a node's ``level`` equals the height of the subtree it
roots minus one — the quantity the ``subtree_root(index, level)`` descent
works in.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Union

from repro.geometry.mbr import EMPTY_MBR, MBR, union_all
from repro.storage.heap import RowId

__all__ = ["Entry", "RTreeNode"]


class Entry:
    """One R-tree entry: an MBR plus a child pointer or a rowid."""

    __slots__ = ("mbr", "child", "rowid")

    def __init__(
        self,
        mbr: MBR,
        child: Optional["RTreeNode"] = None,
        rowid: Optional[RowId] = None,
    ):
        self.mbr = mbr
        self.child = child
        self.rowid = rowid

    @property
    def is_leaf_entry(self) -> bool:
        return self.child is None

    def __repr__(self) -> str:
        target = self.rowid if self.child is None else f"node(level={self.child.level})"
        return f"Entry({self.mbr.as_tuple()}, {target})"


class RTreeNode:
    """A node at a given level (0 = leaf)."""

    __slots__ = ("level", "entries", "node_id")

    _next_id = 0

    def __init__(self, level: int, entries: Optional[List[Entry]] = None):
        self.level = level
        self.entries: List[Entry] = entries if entries is not None else []
        self.node_id = RTreeNode._next_id
        RTreeNode._next_id += 1

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    @property
    def mbr(self) -> MBR:
        """Tight bounding box over the node's entries (computed on demand)."""
        return union_all([e.mbr for e in self.entries])

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        return f"RTreeNode(level={self.level}, entries={len(self.entries)})"

    def children(self) -> Iterator["RTreeNode"]:
        for entry in self.entries:
            if entry.child is not None:
                yield entry.child

    def descend(self, levels: int) -> List["RTreeNode"]:
        """Return the nodes exactly ``levels`` below this one.

        ``descend(0)`` is ``[self]``.  Descending past the leaf level stops
        at the leaves (matching how the paper's subtree_root function
        behaves on shallow trees: you get as many subtrees as exist).
        """
        frontier = [self]
        for _ in range(levels):
            if all(node.is_leaf for node in frontier):
                break
            next_frontier: List[RTreeNode] = []
            for node in frontier:
                if node.is_leaf:
                    next_frontier.append(node)
                else:
                    next_frontier.extend(node.children())
            frontier = next_frontier
        return frontier
