"""R-tree node structures.

Nodes hold entries; each entry pairs an MBR with either a child node
(internal levels) or a rowid of the indexed table (leaf level).  Level 0 is
the leaf level, so a node's ``level`` equals the height of the subtree it
roots minus one — the quantity the ``subtree_root(index, level)`` descent
works in.

Flat-array layout: alongside its entry list every node can materialise a
struct-of-arrays view of the entry MBRs — four parallel ``array('d')``
coordinate vectors (min_x, min_y, max_x, max_y) — via :meth:`RTreeNode.
coords`.  Batched MBR comparisons (window search, the spatial-join plane
sweep, STR packing) index those float vectors directly instead of chasing
``Entry -> MBR -> attribute`` pointer chains, which is the hot-path layout
SIMD-style R-tree engines use.  The view is cached and must be dropped with
:meth:`RTreeNode.invalidate_coords` whenever entries (or their MBRs) are
mutated in place; a length check catches forgotten append/pop sites as a
safety net.
"""

from __future__ import annotations

from array import array
from typing import Any, Iterator, List, Optional, Sequence, Tuple, Union

from repro.geometry.mbr import EMPTY_MBR, MBR
from repro.storage.heap import RowId

__all__ = ["Entry", "RTreeNode", "NodeCoords", "entry_coords"]

#: Struct-of-arrays MBR view: (min_x, min_y, max_x, max_y) vectors, each
#: parallel to the owning node's entry list.
NodeCoords = Tuple[array, array, array, array]


def entry_coords(entries: Sequence["Entry"]) -> NodeCoords:
    """Build the flat-array coordinate view of an entry sequence."""
    min_x = array("d")
    min_y = array("d")
    max_x = array("d")
    max_y = array("d")
    ax, ay = min_x.append, min_y.append
    bx, by = max_x.append, max_y.append
    for e in entries:
        m = e.mbr
        ax(m.min_x)
        ay(m.min_y)
        bx(m.max_x)
        by(m.max_y)
    return min_x, min_y, max_x, max_y


class Entry:
    """One R-tree entry: an MBR plus a child pointer or a rowid."""

    __slots__ = ("mbr", "child", "rowid")

    def __init__(
        self,
        mbr: MBR,
        child: Optional["RTreeNode"] = None,
        rowid: Optional[RowId] = None,
    ):
        self.mbr = mbr
        self.child = child
        self.rowid = rowid

    @property
    def is_leaf_entry(self) -> bool:
        return self.child is None

    def __repr__(self) -> str:
        target = self.rowid if self.child is None else f"node(level={self.child.level})"
        return f"Entry({self.mbr.as_tuple()}, {target})"


class RTreeNode:
    """A node at a given level (0 = leaf)."""

    __slots__ = ("level", "entries", "node_id", "_coords")

    _next_id = 0

    def __init__(self, level: int, entries: Optional[List[Entry]] = None):
        self.level = level
        self.entries: List[Entry] = entries if entries is not None else []
        self.node_id = RTreeNode._next_id
        self._coords: Optional[NodeCoords] = None
        RTreeNode._next_id += 1

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def coords(self) -> NodeCoords:
        """Cached flat-array (min_x, min_y, max_x, max_y) view of the entries."""
        cached = self._coords
        if cached is None or len(cached[0]) != len(self.entries):
            cached = entry_coords(self.entries)
            self._coords = cached
        return cached

    def invalidate_coords(self) -> None:
        """Drop the cached flat-array view after an in-place mutation."""
        self._coords = None

    @property
    def mbr(self) -> MBR:
        """Tight bounding box over the node's entries (computed on demand)."""
        if not self.entries:
            return EMPTY_MBR
        min_x, min_y, max_x, max_y = self.coords()
        return MBR(min(min_x), min(min_y), max(max_x), max(max_y))

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        return f"RTreeNode(level={self.level}, entries={len(self.entries)})"

    def children(self) -> Iterator["RTreeNode"]:
        for entry in self.entries:
            if entry.child is not None:
                yield entry.child

    def descend(self, levels: int) -> List["RTreeNode"]:
        """Return the nodes exactly ``levels`` below this one.

        ``descend(0)`` is ``[self]``.  Descending past the leaf level stops
        at the leaves (matching how the paper's subtree_root function
        behaves on shallow trees: you get as many subtrees as exist).
        """
        frontier = [self]
        for _ in range(levels):
            if all(node.is_leaf for node in frontier):
                break
            next_frontier: List[RTreeNode] = []
            for node in frontier:
                if node.is_leaf:
                    next_frontier.append(node)
                else:
                    next_frontier.extend(node.children())
            frontier = next_frontier
        return frontier
