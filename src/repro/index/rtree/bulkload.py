"""R-tree bulk loading: STR packing and the parallel subtree build.

``str_pack`` is Sort-Tile-Recursive (Leutenegger et al.), the clustering
step the paper's parallel R-tree creation uses on each data partition.
``build_parallel`` reproduces §5's recipe: parallel table-function workers
(1) load geometries and compute MBRs, (2) cluster subtrees on their
partitions, and a final serial step merges the subtrees into one tree.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import IndexBuildError
from repro.engine.parallel import ParallelExecutor, WorkerContext
from repro.geometry.mbr import MBR, union_all
from repro.index.rtree.node import Entry, RTreeNode, entry_coords
from repro.index.rtree.rtree import DEFAULT_FANOUT, RTree
from repro.storage.heap import RowId

__all__ = ["str_pack", "merge_subtrees", "build_parallel"]

LoadedEntry = Tuple[MBR, RowId]


def str_pack(
    entries: Sequence[LoadedEntry],
    fanout: int = DEFAULT_FANOUT,
    fill: float = 0.7,
    ctx: Optional[WorkerContext] = None,
) -> RTree:
    """Bulk-load an R-tree with Sort-Tile-Recursive packing.

    ``fill`` is the target node occupancy (fraction of ``fanout``).
    Charges ``sort_per_item`` (n log n) and ``cluster_per_entry`` work.
    """
    if not 0.3 <= fill <= 1.0:
        raise IndexBuildError(f"fill factor {fill} outside [0.3, 1.0]")
    tree = RTree(fanout=fanout)
    if not entries:
        return tree
    node_cap = max(2, int(fanout * fill))

    leaf_entries = [Entry(mbr, rowid=rowid) for mbr, rowid in entries]
    level_nodes = _str_level(
        leaf_entries, node_cap, 0, ctx, tree.min_entries, fanout
    )
    level = 0
    while len(level_nodes) > 1:
        level += 1
        parent_entries = [Entry(n.mbr, child=n) for n in level_nodes]
        level_nodes = _str_level(
            parent_entries, node_cap, level, ctx, tree.min_entries, fanout
        )
    tree.root = level_nodes[0]
    tree._size = len(entries)  # noqa: SLF001 - bulk loader is a friend
    return tree


def _str_level(
    entries: List[Entry],
    node_cap: int,
    level: int,
    ctx: Optional[WorkerContext],
    min_entries: int,
    fanout: int,
) -> List[RTreeNode]:
    """Pack one level of nodes from ``entries`` using STR tiling."""
    n = len(entries)
    if ctx is not None:
        ctx.charge("sort_per_item", n * max(1.0, math.log2(max(n, 2))))
        ctx.charge("cluster_per_entry", n)
        # Each packed node is written exactly once (sequential I/O).
        ctx.charge("page_write", max(1.0, n / max(node_cap, 1)))
    if n <= node_cap:
        return [RTreeNode(level=level, entries=list(entries))]

    num_nodes = math.ceil(n / node_cap)
    num_slices = math.ceil(math.sqrt(num_nodes))
    slice_size = math.ceil(n / num_slices) if num_slices else n
    # Round slice size up to a node multiple so slices cut on node edges.
    slice_size = math.ceil(slice_size / node_cap) * node_cap

    # Sort index vectors over the flat-array coordinate layout: the STR
    # center keys (min+max, monotone in the center) come from packed float
    # vectors instead of per-entry MBR.center property calls.
    x0, y0, x1, y1 = entry_coords(entries)
    by_x = sorted(range(n), key=lambda i: x0[i] + x1[i])
    nodes: List[RTreeNode] = []
    for s in range(0, n, slice_size):
        strip = sorted(by_x[s : s + slice_size], key=lambda i: y0[i] + y1[i])
        for t in range(0, len(strip), node_cap):
            nodes.append(
                RTreeNode(
                    level=level,
                    entries=[entries[i] for i in strip[t : t + node_cap]],
                )
            )
    return rebalance_level(nodes, min_entries=min_entries, fanout=fanout)


def rebalance_level(
    nodes: List[RTreeNode], min_entries: int, fanout: int
) -> List[RTreeNode]:
    """Fix underfull nodes in a packed level by borrowing from neighbours.

    STR tiling can leave the last node of a strip (and the last strip)
    arbitrarily small; a merged forest can contribute small subtree roots.
    Each underfull node is combined with its predecessor: merged outright
    when the pair fits in one node, otherwise split evenly (both halves
    then satisfy the minimum because the pair exceeded the fanout).
    """
    if len(nodes) <= 1:
        return nodes
    result: List[RTreeNode] = []
    for node in nodes:
        if result and len(node.entries) < min_entries:
            prev = result[-1]
            combined = prev.entries + node.entries
            if len(combined) <= fanout:
                prev.entries = combined
                prev.invalidate_coords()
            else:
                split = len(combined) // 2
                prev.entries = combined[:split]
                prev.invalidate_coords()
                node.entries = combined[split:]
                node.invalidate_coords()
                result.append(node)
        else:
            result.append(node)
    # A leading underfull node is handled by a final right-to-left pass.
    if len(result) >= 2 and len(result[0].entries) < min_entries:
        first, second = result[0], result[1]
        combined = first.entries + second.entries
        if len(combined) <= fanout:
            second.entries = combined
            second.invalidate_coords()
            result.pop(0)
        else:
            split = len(combined) // 2
            first.entries = combined[:split]
            first.invalidate_coords()
            second.entries = combined[split:]
            second.invalidate_coords()
    return result


def merge_subtrees(
    subtrees: Sequence[RTree],
    fanout: int = DEFAULT_FANOUT,
    fill: float = 0.7,
    ctx: Optional[WorkerContext] = None,
) -> RTree:
    """Merge independently built subtrees into one R-tree (serial tail).

    Taller trees are descended to the height of the shortest so all merged
    roots sit at one level, then upper levels are packed over those roots.
    This is the "merged at the end" step of the paper's parallel R-tree
    creation.
    """
    nonempty = [t for t in subtrees if len(t) > 0]
    if not nonempty:
        return RTree(fanout=fanout)
    if len(nonempty) == 1:
        return nonempty[0]

    min_root_level = min(t.root.level for t in nonempty)
    roots: List[RTreeNode] = []
    for t in nonempty:
        roots.extend(t.root.descend(t.root.level - min_root_level))

    merged_proto = RTree(fanout=fanout)  # for the min-occupancy policy
    node_cap = max(2, int(fanout * fill))
    # Subtree roots were legal as roots but may be underfull as interior
    # nodes; rebalance them among their (same-level) siblings first.
    level_nodes = rebalance_level(roots, merged_proto.min_entries, fanout)
    level = min_root_level
    while len(level_nodes) > 1:
        level += 1
        parent_entries = [Entry(n.mbr, child=n) for n in level_nodes]
        level_nodes = _str_level(
            parent_entries, node_cap, level, ctx, merged_proto.min_entries, fanout
        )

    merged = RTree(fanout=fanout)
    merged.root = level_nodes[0]
    merged._size = sum(len(t) for t in nonempty)  # noqa: SLF001
    return merged


def build_parallel(
    load_partitions: Sequence[Callable[[WorkerContext], List[LoadedEntry]]],
    executor: ParallelExecutor,
    fanout: int = DEFAULT_FANOUT,
    fill: float = 0.7,
) -> Tuple[RTree, "ParallelRunLike"]:
    """Parallel R-tree creation over pre-partitioned loader tasks.

    Each element of ``load_partitions`` is a worker task that loads its
    partition's (MBR, rowid) pairs — computing MBRs from geometry, which is
    step (1) of §5 — and this function packs a subtree per partition (step
    2) on the same worker, then merges serially.

    Returns ``(tree, run)`` where ``run`` carries per-worker meters.
    """

    def make_task(
        loader: Callable[[WorkerContext], List[LoadedEntry]]
    ) -> Callable[[WorkerContext], RTree]:
        def task(ctx: WorkerContext) -> RTree:
            entries = loader(ctx)
            return str_pack(entries, fanout=fanout, fill=fill, ctx=ctx)

        return task

    run = executor.run([make_task(loader) for loader in load_partitions])
    merged = merge_subtrees(run.results, fanout=fanout, fill=fill)
    return merged, run


# typing helper for the docstring above (the concrete type is ParallelRun)
ParallelRunLike = object
