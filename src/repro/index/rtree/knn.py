"""Best-first k-nearest-neighbour search over an R-tree.

Not part of the paper's experiments, but part of the index's public
contract (Oracle Spatial exposes ``sdo_nn`` through the same indextype);
implemented with the standard Hjaltason–Samet priority-queue traversal.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator, List, Optional, Tuple

from repro.engine.parallel import WorkerContext
from repro.index.rtree.rtree import RTree
from repro.storage.heap import RowId

__all__ = ["nearest_neighbors", "incremental_nearest"]


def incremental_nearest(
    tree: RTree,
    x: float,
    y: float,
    ctx: Optional[WorkerContext] = None,
) -> Iterator[Tuple[float, RowId]]:
    """Yield (mbr_distance, rowid) in non-decreasing distance order.

    Distances are to the leaf entry MBRs — the index-level ranking.  An
    exact-geometry refinement belongs to the caller (the operator layer),
    mirroring the primary/secondary filter split used everywhere else.
    """
    if len(tree) == 0:
        return
    counter = itertools.count()  # tie-breaker: heap entries must never compare nodes
    heap: List[Tuple[float, int, object]] = [
        (tree.root.mbr.distance_to_point(x, y), next(counter), tree.root)
    ]
    while heap:
        dist, _tick, item = heapq.heappop(heap)
        if isinstance(item, tuple):
            yield dist, item[1]
            continue
        node = item
        if ctx is not None:
            ctx.charge("rtree_node_visit")
        for entry in node.entries:  # type: ignore[attr-defined]
            if ctx is not None:
                ctx.charge("mbr_test")
            d = entry.mbr.distance_to_point(x, y)
            if entry.child is not None:
                heapq.heappush(heap, (d, next(counter), entry.child))
            else:
                heapq.heappush(heap, (d, next(counter), ("leaf", entry.rowid)))


def nearest_neighbors(
    tree: RTree,
    x: float,
    y: float,
    k: int,
    ctx: Optional[WorkerContext] = None,
) -> List[Tuple[float, RowId]]:
    """The k nearest leaf entries to (x, y) by MBR distance."""
    result: List[Tuple[float, RowId]] = []
    for dist, rowid in incremental_nearest(tree, x, y, ctx):
        result.append((dist, rowid))
        if len(result) >= k:
            break
    return result
