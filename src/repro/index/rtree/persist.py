"""Persisting R-trees into spatial index tables.

The paper's system stores R-tree nodes as rows of a *spatial index table*
and keeps a root pointer in the index metadata table.  ``dump_rtree``
writes exactly that representation (one row per node: node id, level,
entry list of ``(mbr, child-node-id-or-rowid)``); ``load_rtree`` rebuilds
the in-memory tree from it.  Round-tripping through a heap makes the index
as durable as the base tables.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import IndexBuildError
from repro.geometry.mbr import MBR
from repro.index.rtree.node import Entry, RTreeNode
from repro.index.rtree.rtree import RTree
from repro.storage.codec import decode_row, encode_row
from repro.storage.heap import HeapFile, RowId

__all__ = ["dump_rtree", "load_rtree"]


def dump_rtree(tree: RTree, heap: HeapFile) -> Tuple[RowId, int]:
    """Write every node of ``tree`` into ``heap``.

    Returns ``(root_pointer, node_count)``; the root pointer is the rowid
    of the root's row and belongs in the index metadata (the catalog's
    ``parameters['root']``).
    """
    node_rowids: Dict[int, RowId] = {}

    def dump(node: RTreeNode) -> RowId:
        entry_values: List[Tuple] = []
        for e in node.entries:
            if e.child is not None:
                child_rid = dump(e.child)
                entry_values.append((e.mbr, "NODE", child_rid))
            else:
                assert e.rowid is not None
                entry_values.append((e.mbr, "ROW", e.rowid))
        record = encode_row((node.level, tuple(entry_values)))
        rid = heap.insert(record)
        node_rowids[node.node_id] = rid
        return rid

    root_rid = dump(tree.root)
    return root_rid, len(node_rowids)


def load_rtree(heap: HeapFile, root_pointer: RowId, fanout: int) -> RTree:
    """Rebuild an R-tree from its index-table rows."""

    def load(rid: RowId) -> RTreeNode:
        level, entry_values = decode_row(heap.read(rid))
        entries: List[Entry] = []
        for mbr, kind, target in entry_values:
            if not isinstance(mbr, MBR):
                raise IndexBuildError("index table row holds a non-MBR entry bound")
            if kind == "NODE":
                entries.append(Entry(mbr, child=load(target)))
            elif kind == "ROW":
                entries.append(Entry(mbr, rowid=target))
            else:
                raise IndexBuildError(f"unknown entry kind {kind!r} in index table")
        return RTreeNode(level=level, entries=entries)

    tree = RTree(fanout=fanout)
    tree.root = load(root_pointer)
    tree._size = sum(1 for _ in tree.leaf_entries())  # noqa: SLF001
    return tree
