"""Persisting R-trees into spatial index tables.

The paper's system stores R-tree nodes as rows of a *spatial index table*
and keeps a root pointer in the index metadata table.  ``dump_rtree``
writes exactly that representation (one row per node: node id, level,
entry list of ``(mbr, child-node-id-or-rowid)``); ``load_rtree`` rebuilds
the in-memory tree from it.  Round-tripping through a heap makes the index
as durable as the base tables.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import IndexBuildError
from repro.geometry.mbr import MBR
from repro.index.rtree.node import Entry, RTreeNode
from repro.index.rtree.rtree import RTree
from repro.storage.codec import decode_row, encode_row
from repro.storage.heap import HeapFile, RowId

__all__ = ["dump_rtree", "load_rtree"]


def dump_rtree(tree: RTree, heap: HeapFile) -> Tuple[RowId, int]:
    """Write every node of ``tree`` into ``heap``.

    Returns ``(root_pointer, node_count)``; the root pointer is the rowid
    of the root's row and belongs in the index metadata (the catalog's
    ``parameters['root']``).

    Traversal is iterative (explicit stack), not recursive: a durable
    checkpoint must be able to dump a tree of any height, and Python's
    recursion limit is an arbitrary one to corrupt a checkpoint against.
    """
    # Pre-order discovery, then reversed processing: every child appears
    # after its parent in ``order``, so walking it backwards guarantees a
    # child's rowid exists before its parent's row is encoded.
    order: List[RTreeNode] = []
    stack: List[RTreeNode] = [tree.root]
    while stack:
        node = stack.pop()
        order.append(node)
        for e in node.entries:
            if e.child is not None:
                stack.append(e.child)

    node_rowids: Dict[int, RowId] = {}
    for node in reversed(order):
        entry_values: List[Tuple] = []
        for e in node.entries:
            if e.child is not None:
                entry_values.append((e.mbr, "NODE", node_rowids[e.child.node_id]))
            else:
                assert e.rowid is not None
                entry_values.append((e.mbr, "ROW", e.rowid))
        record = encode_row((node.level, tuple(entry_values)))
        node_rowids[node.node_id] = heap.insert(record)
    return node_rowids[tree.root.node_id], len(node_rowids)


def load_rtree(heap: HeapFile, root_pointer: RowId, fanout: int) -> RTree:
    """Rebuild an R-tree from its index-table rows (iteratively)."""
    specs: Dict[RowId, Tuple[int, Tuple]] = {}
    order: List[RowId] = []
    stack: List[RowId] = [root_pointer]
    while stack:
        rid = stack.pop()
        if rid in specs:
            # A rowid reachable twice would mean a cycle or shared subtree;
            # visiting it once keeps the load terminating either way.
            continue
        record = decode_row(heap.read(rid))
        if len(record) != 2:
            raise IndexBuildError(f"index table row {rid} is not a (level, entries) node")
        level, entry_values = record
        specs[rid] = (level, entry_values)
        order.append(rid)
        for entry in entry_values:
            if len(entry) != 3:
                raise IndexBuildError(f"malformed entry in index table row {rid}")
            _mbr, kind, target = entry
            if kind == "NODE":
                stack.append(target)

    nodes: Dict[RowId, RTreeNode] = {}
    for rid in reversed(order):
        level, entry_values = specs[rid]
        entries: List[Entry] = []
        for mbr, kind, target in entry_values:
            if not isinstance(mbr, MBR):
                raise IndexBuildError("index table row holds a non-MBR entry bound")
            if kind == "NODE":
                entries.append(Entry(mbr, child=nodes[target]))
            elif kind == "ROW":
                entries.append(Entry(mbr, rowid=target))
            else:
                raise IndexBuildError(f"unknown entry kind {kind!r} in index table")
        nodes[rid] = RTreeNode(level=level, entries=entries)

    tree = RTree(fanout=fanout)
    tree.root = nodes[root_pointer]
    tree._size = sum(1 for _ in tree.leaf_entries())  # noqa: SLF001
    return tree
