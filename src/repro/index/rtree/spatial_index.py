"""The R-tree domain index (extensible-indexing implementation).

Binds :class:`~repro.index.rtree.rtree.RTree` into the framework: creation
bulk-loads with STR from a base-table scan, DML keeps the tree in sync, and
``fetch`` answers the spatial operators with a window search (primary
filter) followed by exact geometry evaluation (secondary filter).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import IndexTypeError, OperatorError
from repro.engine.indextype import OPERATORS, DomainIndex
from repro.engine.parallel import WorkerContext
from repro.engine.table import Table
from repro.geometry.geometry import Geometry
from repro.geometry.mbr import MBR
from repro.index.rtree.bulkload import str_pack
from repro.index.rtree.rtree import DEFAULT_FANOUT, RTree
from repro.storage.heap import RowId

__all__ = ["RTreeIndex"]


class RTreeIndex(DomainIndex):
    """Spatial indextype backed by an R-tree."""

    kind = "RTREE"

    #: number of index nodes the buffer cache keeps hot; repeated probes of
    #: a tree larger than this pay physical reads for the excess fraction,
    #: which is what makes per-row probing degrade on very large tables.
    NODE_CACHE = 1024

    def __init__(
        self,
        name: str,
        table: Table,
        column: str,
        fanout: int = DEFAULT_FANOUT,
        fill: float = 0.7,
    ):
        super().__init__(name, table, column)
        self.fanout = fanout
        self.fill = fill
        self.tree = RTree(fanout=fanout)
        self._node_count_cache: Optional[int] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def create(self, ctx: Optional[WorkerContext] = None) -> None:
        """Sequential index creation: scan, compute MBRs, STR-pack.

        (The parallel path lives in :mod:`repro.core.index_build`, which
        partitions the scan across table-function workers.)
        """
        entries: List[Tuple[Any, RowId]] = []
        for rowid, geom in self.table.column_values(self.column):
            if geom is None:
                continue
            if ctx is not None:
                ctx.charge("mbr_load_per_vertex", geom.num_vertices)
            entries.append((geom.mbr, rowid))
        self.tree = str_pack(entries, fanout=self.fanout, fill=self.fill, ctx=ctx)

    def insert(
        self, rowid: RowId, geom: Geometry, ctx: Optional[WorkerContext] = None
    ) -> None:
        self.tree.insert(geom.mbr, rowid, ctx)
        self._node_count_cache = None

    def delete(
        self, rowid: RowId, geom: Geometry, ctx: Optional[WorkerContext] = None
    ) -> None:
        if not self.tree.delete(geom.mbr, rowid, ctx):
            raise IndexTypeError(f"{self.name}: {rowid} not present in index")
        self._node_count_cache = None

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def fetch(
        self,
        operator: str,
        args: Sequence[Any],
        ctx: Optional[WorkerContext] = None,
        exact: bool = True,
        prefilter: Optional[Callable[[MBR, RowId], bool]] = None,
    ) -> Iterator[RowId]:
        """Evaluate one spatial operator through the index.

        ``prefilter(mbr, rowid)`` — when given — screens candidates right
        after the primary (MBR) filter, *before* the exact geometry test.
        Rows it rejects pay no geometry fetch and no exact-test cost;
        shard ownership filters hook in here.
        """
        op_name = operator.upper()
        if op_name == "SDO_NN":
            yield from self.fetch_nn(args, ctx, exact)
            return
        if op_name not in OPERATORS:
            raise OperatorError(f"unknown operator {operator!r}")
        if not args:
            raise OperatorError(f"{operator} requires a query geometry argument")
        query: Geometry = args[0]
        visits_before = 0.0
        if ctx is not None:
            # Fixed cost of one operator invocation through the framework.
            ctx.charge("index_probe")
            visits_before = ctx.meter.counts.get("rtree_node_visit", 0.0)

        # Zone-map pushdown: when the whole table is columnar-resident
        # (empty DML journal) and the query window intersects no chunk's
        # zone map, the result is provably empty — skip the tree search
        # for the price of one zone_skip per chunk directory entry.
        seg = self.table.columnar
        if seg is not None and seg.journal_empty():
            distance = (
                float(args[1])
                if op_name == "SDO_WITHIN_DISTANCE" and len(args) >= 2
                else 0.0
            )
            qmbr = query.mbr
            box = (qmbr.min_x, qmbr.min_y, qmbr.max_x, qmbr.max_y)
            if seg.all_zones_miss(box, distance, ctx):
                return

        if op_name == "SDO_WITHIN_DISTANCE":
            if len(args) < 2:
                raise OperatorError("SDO_WITHIN_DISTANCE requires a distance")
            distance = float(args[1])
            candidates = self.tree.search_within(query.mbr, distance, ctx)
        else:
            candidates = self.tree.search(query.mbr, ctx)

        if prefilter is not None:
            candidates = (
                (mbr, rowid)
                for mbr, rowid in candidates
                if prefilter(mbr, rowid)
            )

        if op_name == "SDO_FILTER" or not exact:
            for _mbr, rowid in candidates:
                yield rowid
            self._charge_node_misses(ctx, visits_before)
            return

        op = OPERATORS[op_name]
        for _mbr, rowid in candidates:
            geom = self.geometry_of(rowid, ctx)
            if ctx is not None:
                ctx.charge("exact_test_base")
                ctx.charge(
                    "exact_test_per_vertex", geom.num_vertices + query.num_vertices
                )
            if op.evaluate(geom, *args):
                yield rowid
        self._charge_node_misses(ctx, visits_before)

    def fetch_nn(
        self,
        args: Sequence[Any],
        ctx: Optional[WorkerContext] = None,
        exact: bool = True,
    ) -> Iterator[RowId]:
        """``sdo_nn``: the k nearest rows to a query geometry.

        Best-first MBR-ranked enumeration with exact-distance refinement:
        candidates stream out of the index in MBR-distance order; each is
        refined against the exact geometry; the scan stops once the k-th
        best exact distance is below the next candidate's MBR distance
        (a sound lower bound).  With ``exact=False`` the MBR ranking is
        returned directly.
        """
        import heapq

        from repro.geometry.distance import distance as exact_distance
        from repro.index.rtree.knn import incremental_nearest

        if not args:
            raise OperatorError("SDO_NN requires a query geometry argument")
        query: Geometry = args[0]
        k = int(args[1]) if len(args) > 1 else 1
        if k < 1:
            raise OperatorError(f"SDO_NN requires k >= 1, got {k}")
        if ctx is not None:
            ctx.charge("index_probe")
        qx, qy = query.mbr.center
        # Ranking is by distance to the query's centre point; to keep the
        # early-termination bound sound for extended query geometry,
        # candidates within (centre distance - query radius) of the k-th
        # best cannot be pruned.
        import math

        query_radius = max(
            math.hypot(cx - qx, cy - qy) for cx, cy in query.mbr.corners()
        )

        if not exact:
            emitted = 0
            for _d, rowid in incremental_nearest(self.tree, qx, qy, ctx):
                yield rowid
                emitted += 1
                if emitted >= k:
                    return
            return

        # (-exact_d, rowid) max-heap of the best k so far.
        best: list = []
        for mbr_d, rowid in incremental_nearest(self.tree, qx, qy, ctx):
            if len(best) == k and mbr_d - query_radius > -best[0][0]:
                break  # no later candidate can improve the k-th best
            geom = self.geometry_of(rowid, ctx)
            if ctx is not None:
                ctx.charge("exact_test_base")
                ctx.charge(
                    "exact_test_per_vertex", geom.num_vertices + query.num_vertices
                )
            d = exact_distance(geom, query)
            if len(best) < k:
                heapq.heappush(best, (-d, rowid))
            elif d < -best[0][0]:
                heapq.heapreplace(best, (-d, rowid))
        for neg_d, rowid in sorted(best, key=lambda item: (-item[0], item[1])):
            yield rowid

    def _charge_node_misses(self, ctx: Optional[WorkerContext], visits_before: float) -> None:
        """Charge physical reads for probe node visits that miss the cache.

        A repeatedly probed index larger than :data:`NODE_CACHE` nodes
        cannot stay resident; the excess fraction of each probe's node
        visits is billed as physical I/O.  (A one-shot synchronized join
        touches each node once, so it never triggers this.)
        """
        if ctx is None:
            return
        node_count = self._node_count_cache
        if node_count is None:
            node_count = self.tree.node_count()
            self._node_count_cache = node_count
        miss_fraction = max(0.0, 1.0 - self.NODE_CACHE / max(node_count, 1))
        if miss_fraction <= 0.0:
            return
        visits = ctx.meter.counts.get("rtree_node_visit", 0.0) - visits_before
        if visits > 0:
            ctx.charge("physical_read", visits * miss_fraction)
