"""The linear quadtree domain index.

A linear quadtree is "tiles in a B-tree": index creation tessellates every
data geometry into fixed-level tiles and stores ``(tile_code, rowid)`` keys
in a B+-tree (paper §5: "computes tile approximations ... and creates
B-tree indexes on the encoded tile approximations").  Window queries
tessellate the query geometry and turn each query tile into a key-range
scan.

Query-time filter discipline follows Oracle's: a candidate found via an
*interior* tile of either side needs no secondary filter for ANYINTERACT
semantics; boundary-boundary matches go to the exact predicate.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import IndexTypeError, OperatorError
from repro.engine.indextype import OPERATORS, DomainIndex
from repro.engine.parallel import WorkerContext
from repro.engine.table import Table
from repro.geometry.geometry import Geometry
from repro.geometry.mbr import MBR
from repro.index.quadtree.codes import TileGrid
from repro.index.quadtree.tessellate import Tile, tessellate
from repro.storage.btree import BPlusTree
from repro.storage.heap import RowId

__all__ = ["QuadtreeIndex", "DEFAULT_TILING_LEVEL"]

DEFAULT_TILING_LEVEL = 8


class QuadtreeIndex(DomainIndex):
    """Spatial indextype backed by a fixed-level linear quadtree."""

    kind = "QUADTREE"

    def __init__(
        self,
        name: str,
        table: Table,
        column: str,
        domain: MBR,
        tiling_level: int = DEFAULT_TILING_LEVEL,
        btree_order: int = 64,
    ):
        super().__init__(name, table, column)
        self.grid = TileGrid(domain=domain, level=tiling_level)
        self.btree_order = btree_order
        # key: (tile_code, rowid) -> interior flag
        self.btree = BPlusTree(order=btree_order)

    @property
    def tiling_level(self) -> int:
        return self.grid.level

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def create(self, ctx: Optional[WorkerContext] = None) -> None:
        """Sequential creation: tessellate all rows, bulk-load the B-tree.

        (The parallel path — tessellation as a parallel table function
        feeding a parallel B-tree build — is in
        :mod:`repro.core.index_build`.)
        """
        items: List[Tuple[Tuple[int, RowId], bool]] = []
        for rowid, geom in self.table.column_values(self.column):
            if geom is None:
                continue
            for tile in tessellate(geom, self.grid, ctx):
                if ctx is not None:
                    ctx.charge("tile_insert")
                items.append(((tile.code, rowid), tile.interior))
        items.sort(key=lambda kv: kv[0])
        self.btree = BPlusTree.bulk_load(items, order=self.btree_order)

    def insert(
        self, rowid: RowId, geom: Geometry, ctx: Optional[WorkerContext] = None
    ) -> None:
        for tile in tessellate(geom, self.grid, ctx):
            if ctx is not None:
                ctx.charge("tile_insert")
            self.btree.insert((tile.code, rowid), tile.interior)

    def delete(
        self, rowid: RowId, geom: Geometry, ctx: Optional[WorkerContext] = None
    ) -> None:
        tiles = tessellate(geom, self.grid, ctx)
        if not tiles:
            return
        for tile in tiles:
            key = (tile.code, rowid)
            if key not in self.btree:
                raise IndexTypeError(
                    f"{self.name}: tile {tile.code} for {rowid} missing from index"
                )
            self.btree.delete(key)

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def fetch(
        self,
        operator: str,
        args: Sequence[Any],
        ctx: Optional[WorkerContext] = None,
        exact: bool = True,
    ) -> Iterator[RowId]:
        op_name = operator.upper()
        if op_name not in OPERATORS:
            raise OperatorError(f"unknown operator {operator!r}")
        if not args:
            raise OperatorError(f"{operator} requires a query geometry argument")
        query: Geometry = args[0]
        if ctx is not None:
            # Fixed cost of one operator invocation through the framework.
            ctx.charge("index_probe")

        if op_name == "SDO_WITHIN_DISTANCE":
            if len(args) < 2:
                raise OperatorError("SDO_WITHIN_DISTANCE requires a distance")
            distance = float(args[1])
            window_mbr = query.mbr.expand(distance).intersection(
                self.grid.quadrant_mbr(0, 0, 0)
            )
            if window_mbr.is_empty or window_mbr.area == 0.0:
                return
            window = Geometry.from_mbr(window_mbr)
        else:
            window = query

        candidates = self._primary_filter(window, ctx)

        if op_name == "SDO_FILTER" or not exact:
            yield from sorted(candidates)
            return

        op = OPERATORS[op_name]
        anyinteract = op_name == "SDO_RELATE" and (
            len(args) < 2 or str(args[1]).upper() in ("ANYINTERACT", "INTERSECT")
        )
        for rowid in sorted(candidates):
            # Interior-tile certainty: only valid for plain intersection.
            if anyinteract and candidates[rowid]:
                yield rowid
                continue
            geom = self.geometry_of(rowid, ctx)
            if ctx is not None:
                ctx.charge("exact_test_base")
                ctx.charge(
                    "exact_test_per_vertex", geom.num_vertices + query.num_vertices
                )
            if op.evaluate(geom, *args):
                yield rowid

    def _primary_filter(
        self, window: Geometry, ctx: Optional[WorkerContext]
    ) -> Dict[RowId, bool]:
        """Tile-match the window against the index.

        Returns candidate rowids mapped to a certainty flag: True when the
        match came through an interior tile (of the query or of the data),
        so intersection is guaranteed without the secondary filter.
        """
        candidates: Dict[RowId, bool] = {}
        hook = self.btree.visit_hook
        try:
            if ctx is not None:
                self.btree.visit_hook = lambda _leaf: ctx.charge("btree_node_visit")
            for qtile in tessellate(window, self.grid, ctx):
                lo = (qtile.code,)
                hi = (qtile.code + 1,)
                for (code, rowid), interior in self.btree.scan(
                    lo, hi, include_hi=False
                ):
                    certain = qtile.interior or interior
                    if rowid in candidates:
                        candidates[rowid] = candidates[rowid] or certain
                    else:
                        candidates[rowid] = certain
        finally:
            self.btree.visit_hook = hook
        return candidates

    # ------------------------------------------------------------------
    def tile_count(self) -> int:
        return len(self.btree)

    def tiles_of(self, rowid: RowId) -> List[Tile]:
        """All tiles stored for one rowid (diagnostic; full index scan)."""
        return [
            Tile(code, interior)
            for (code, rid), interior in self.btree.items()
            if rid == rowid
        ]
