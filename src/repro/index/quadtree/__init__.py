"""Linear quadtree spatial index: tile codes, tessellation, B-tree index."""

from repro.index.quadtree.codes import (
    TileGrid,
    child_codes,
    descendant_range,
    morton_decode,
    morton_encode,
    parent_code,
)
from repro.index.quadtree.join import quadtree_join_candidates, quadtree_tile_join
from repro.index.quadtree.persist import dump_quadtree, load_quadtree
from repro.index.quadtree.quadtree import DEFAULT_TILING_LEVEL, QuadtreeIndex
from repro.index.quadtree.tessellate import Tile, tessellate

__all__ = [
    "morton_encode",
    "morton_decode",
    "parent_code",
    "child_codes",
    "descendant_range",
    "TileGrid",
    "Tile",
    "tessellate",
    "QuadtreeIndex",
    "DEFAULT_TILING_LEVEL",
    "quadtree_tile_join",
    "quadtree_join_candidates",
    "dump_quadtree",
    "load_quadtree",
]
