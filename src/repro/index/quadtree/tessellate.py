"""Geometry tessellation: the expensive step of quadtree index creation.

``tessellate`` covers a geometry with fixed-level quadtree tiles by
recursive quadrant subdivision, classifying each emitted tile as *boundary*
(the geometry's boundary passes through it) or *interior* (the tile lies
wholly inside a polygon).  Interior tiles let window queries and joins skip
the secondary filter, and entire interior quadrants are expanded without
further geometry tests — which is why the per-geometry cost is dominated
by boundary length, as the paper observes for "large and complex polygon
geometries" (§5).

Work units charged: ``tessellate_per_vertex`` once per geometry vertex and
``tessellate_per_tile`` per quadrant examined with an exact test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.engine.parallel import WorkerContext
from repro.geometry.geometry import Geometry, GeometryType
from repro.geometry.mbr import MBR
from repro.geometry.predicates import contains, intersects
from repro.index.quadtree.codes import TileGrid, morton_encode

__all__ = ["Tile", "tessellate"]


@dataclass(frozen=True, slots=True)
class Tile:
    """One index tile: its fixed-level Morton code and interior flag."""

    code: int
    interior: bool


def tessellate(
    geom: Geometry,
    grid: TileGrid,
    ctx: Optional[WorkerContext] = None,
) -> List[Tile]:
    """Cover ``geom`` with fixed-level tiles of ``grid``.

    Returns the tiles sorted by code (deterministic, and the order bulk
    B-tree loading wants).
    """
    if ctx is not None:
        ctx.charge("tessellate_per_vertex", geom.num_vertices)
    tiles: List[Tile] = []
    polygonal = any(
        p.geom_type is GeometryType.POLYGON for p in geom.simple_parts()
    )
    _recurse(geom, grid, 0, 0, 0, polygonal, tiles, ctx)
    tiles.sort(key=lambda t: t.code)
    return tiles


def _recurse(
    geom: Geometry,
    grid: TileGrid,
    level: int,
    ix: int,
    iy: int,
    polygonal: bool,
    out: List[Tile],
    ctx: Optional[WorkerContext],
) -> None:
    quad = grid.quadrant_mbr(level, ix, iy)
    # Cheap reject on the geometry's MBR before any exact work.
    if ctx is not None:
        ctx.charge("mbr_test")
    if not quad.intersects(geom.mbr):
        return
    if ctx is not None:
        ctx.charge("tessellate_per_tile")
    quad_rect = Geometry.from_mbr(quad)
    if not intersects(quad_rect, geom):
        return
    if polygonal and contains(geom, quad_rect):
        _emit_block(grid, level, ix, iy, interior=True, out=out)
        return
    if level == grid.level:
        out.append(Tile(morton_encode(ix, iy), interior=False))
        return
    for dx in (0, 1):
        for dy in (0, 1):
            _recurse(
                geom, grid, level + 1, ix * 2 + dx, iy * 2 + dy, polygonal, out, ctx
            )


def _emit_block(
    grid: TileGrid, level: int, ix: int, iy: int, interior: bool, out: List[Tile]
) -> None:
    """Expand a fully-interior quadrant into its fixed-level tiles."""
    span = 1 << (grid.level - level)
    base_x = ix * span
    base_y = iy * span
    for dx in range(span):
        for dy in range(span):
            out.append(Tile(morton_encode(base_x + dx, base_y + dy), interior))
