"""Geometry tessellation: the expensive step of quadtree index creation.

``tessellate`` covers a geometry with fixed-level quadtree tiles by
quadrant subdivision, classifying each emitted tile as *boundary* (the
geometry's boundary passes through it) or *interior* (the tile lies wholly
inside a polygon).  Interior tiles let window queries and joins skip the
secondary filter, and entire interior quadrants are expanded without
further geometry tests — which is why the per-geometry cost is dominated
by boundary length, as the paper observes for "large and complex polygon
geometries" (§5).

Subdivision proceeds level-synchronously: the whole quadrant frontier of a
recursion level is classified in one :func:`repro.geometry.kernels.classify_tiles`
call (vectorized under the numpy backend), instead of one ``intersects`` /
``contains`` pair per tile.  Tile output, work charges and classification
outcomes are identical to the depth-first formulation on both backends.

Work units charged: ``tessellate_per_vertex`` once per geometry vertex and
``tessellate_per_tile`` per quadrant examined with an exact test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.engine.parallel import WorkerContext
from repro.geometry import kernels
from repro.geometry.geometry import Geometry, GeometryType
from repro.index.quadtree.codes import TileGrid, morton_encode
from repro.obs import trace

__all__ = ["Tile", "tessellate"]


@dataclass(frozen=True, slots=True)
class Tile:
    """One index tile: its fixed-level Morton code and interior flag."""

    code: int
    interior: bool


def tessellate(
    geom: Geometry,
    grid: TileGrid,
    ctx: Optional[WorkerContext] = None,
) -> List[Tile]:
    """Cover ``geom`` with fixed-level tiles of ``grid``.

    Returns the tiles sorted by code (deterministic, and the order bulk
    B-tree loading wants).
    """
    if ctx is not None:
        ctx.charge("tessellate_per_vertex", geom.num_vertices)
    with trace.span(
        "tessellate", ctx, vertices=geom.num_vertices, grid_level=grid.level
    ) as geom_span:
        tiles: List[Tile] = []
        polygonal = any(
            p.geom_type is GeometryType.POLYGON for p in geom.simple_parts()
        )
        frontier: List[Tuple[int, int]] = [(0, 0)]
        level = 0
        while frontier:
            with trace.span(
                "tessellate.level", ctx, level=level, frontier=len(frontier)
            ):
                quads = [grid.quadrant_mbr(level, ix, iy) for ix, iy in frontier]
                # Cheap reject on the geometry's MBR before any exact work (one
                # charge per quadrant examined, exactly as per-tile descent would).
                if ctx is not None:
                    ctx.charge("mbr_test", len(quads))
                codes = kernels.classify_tiles(geom, quads, polygonal)
                if ctx is not None:
                    examined = sum(
                        1 for c in codes if c != kernels.TILE_OUTSIDE_MBR
                    )
                    if examined:
                        ctx.charge("tessellate_per_tile", examined)
                next_frontier: List[Tuple[int, int]] = []
                for (ix, iy), code in zip(frontier, codes):
                    if code in (kernels.TILE_OUTSIDE_MBR, kernels.TILE_OUTSIDE):
                        continue
                    if code == kernels.TILE_INTERIOR:
                        _emit_block(grid, level, ix, iy, interior=True, out=tiles)
                    elif level == grid.level:
                        tiles.append(Tile(morton_encode(ix, iy), interior=False))
                    else:
                        for dx in (0, 1):
                            for dy in (0, 1):
                                next_frontier.append((ix * 2 + dx, iy * 2 + dy))
                frontier = next_frontier
                level += 1
        tiles.sort(key=lambda t: t.code)
        geom_span.set_tag("tiles", len(tiles))
    return tiles


def _emit_block(
    grid: TileGrid, level: int, ix: int, iy: int, interior: bool, out: List[Tile]
) -> None:
    """Expand a fully-interior quadrant into its fixed-level tiles."""
    span = 1 << (grid.level - level)
    base_x = ix * span
    base_y = iy * span
    for dx in range(span):
        for dy in range(span):
            out.append(Tile(morton_encode(base_x + dx, base_y + dy), interior))
