"""Linear quadtree tile codes (Morton / Z-order encoding).

A fixed tiling level L partitions the index domain into a 2^L x 2^L grid.
Each tile gets a Morton code — its x/y indices bit-interleaved — so that
the four children of any quadtree quadrant occupy a contiguous code range.
That contiguity is what makes a B-tree on tile codes behave like a
quadtree: quadrant queries become key-range scans.

``TileGrid`` fixes a domain MBR and a level and converts between tile
indices, codes, and tile MBRs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.errors import IndexBuildError
from repro.geometry.mbr import MBR

__all__ = [
    "morton_encode",
    "morton_decode",
    "parent_code",
    "child_codes",
    "descendant_range",
    "TileGrid",
]

MAX_LEVEL = 28  # 2^28 per axis: far beyond any tiling level in use


def _spread_bits(v: int) -> int:
    """Interleave zeros between the bits of ``v`` (supports MAX_LEVEL bits)."""
    result = 0
    for i in range(MAX_LEVEL):
        result |= (v & (1 << i)) << i
    return result


def _squash_bits(v: int) -> int:
    """Inverse of :func:`_spread_bits` for even-position bits."""
    result = 0
    for i in range(MAX_LEVEL):
        result |= ((v >> (2 * i)) & 1) << i
    return result


def morton_encode(ix: int, iy: int) -> int:
    """Z-order code of tile (ix, iy): x in even bit positions, y in odd."""
    if ix < 0 or iy < 0:
        raise IndexBuildError(f"negative tile index ({ix}, {iy})")
    return _spread_bits(ix) | (_spread_bits(iy) << 1)


def morton_decode(code: int) -> Tuple[int, int]:
    """Tile indices (ix, iy) for a Z-order code."""
    if code < 0:
        raise IndexBuildError(f"negative tile code {code}")
    return _squash_bits(code), _squash_bits(code >> 1)


def parent_code(code: int) -> int:
    """Code of the tile's parent quadrant, one level up."""
    return code >> 2


def child_codes(code: int) -> Tuple[int, int, int, int]:
    """Codes of the four child tiles, one level down (SW, SE, NW, NE)."""
    base = code << 2
    return (base, base + 1, base + 2, base + 3)


def descendant_range(code: int, levels_down: int) -> Tuple[int, int]:
    """Inclusive code range covered by a tile ``levels_down`` levels deeper.

    Every level-(l+k) descendant of a level-l tile with code c has a code
    in [c << 2k, ((c+1) << 2k) - 1] — the property quadrant range scans use.
    """
    lo = code << (2 * levels_down)
    hi = ((code + 1) << (2 * levels_down)) - 1
    return lo, hi


@dataclass(frozen=True)
class TileGrid:
    """A fixed-level tiling of a square index domain.

    The domain is the MBR recorded in the index metadata (Oracle's
    dimension bounds).  Non-square domains are handled by tiling the
    bounding square of the domain; tiles outside the domain simply never
    receive data.
    """

    domain: MBR
    level: int

    def __post_init__(self) -> None:
        if self.level < 0 or self.level > MAX_LEVEL:
            raise IndexBuildError(f"tiling level {self.level} outside [0, {MAX_LEVEL}]")
        if self.domain.is_empty or self.domain.area == 0.0:
            raise IndexBuildError("tile grid domain must have positive area")

    @property
    def tiles_per_axis(self) -> int:
        return 1 << self.level

    @property
    def side(self) -> float:
        """Side length of the (square) tiled region."""
        return max(self.domain.width, self.domain.height)

    @property
    def tile_size(self) -> float:
        return self.side / self.tiles_per_axis

    def tile_index(self, x: float, y: float) -> Tuple[int, int]:
        """Tile indices of the tile containing (x, y), clamped to the grid."""
        n = self.tiles_per_axis
        ix = int((x - self.domain.min_x) / self.tile_size)
        iy = int((y - self.domain.min_y) / self.tile_size)
        return min(max(ix, 0), n - 1), min(max(iy, 0), n - 1)

    def tile_mbr(self, ix: int, iy: int) -> MBR:
        size = self.tile_size
        x0 = self.domain.min_x + ix * size
        y0 = self.domain.min_y + iy * size
        return MBR(x0, y0, x0 + size, y0 + size)

    def code(self, ix: int, iy: int) -> int:
        n = self.tiles_per_axis
        if not (0 <= ix < n and 0 <= iy < n):
            raise IndexBuildError(f"tile ({ix}, {iy}) outside {n}x{n} grid")
        return morton_encode(ix, iy)

    def code_mbr(self, code: int) -> MBR:
        ix, iy = morton_decode(code)
        return self.tile_mbr(ix, iy)

    def quadrant_mbr(self, level: int, ix: int, iy: int) -> MBR:
        """MBR of a quadrant at an intermediate level (0 = whole domain)."""
        size = self.side / (1 << level)
        x0 = self.domain.min_x + ix * size
        y0 = self.domain.min_y + iy * size
        return MBR(x0, y0, x0 + size, y0 + size)

    def covering_indices(self, mbr: MBR) -> Tuple[int, int, int, int]:
        """Inclusive (ix_lo, iy_lo, ix_hi, iy_hi) tile ranges touching ``mbr``."""
        ix_lo, iy_lo = self.tile_index(mbr.min_x, mbr.min_y)
        ix_hi, iy_hi = self.tile_index(mbr.max_x, mbr.max_y)
        return ix_lo, iy_lo, ix_hi, iy_hi

    def tiles_touching(self, mbr: MBR) -> Iterator[int]:
        """Codes of every fixed-level tile whose MBR intersects ``mbr``."""
        ix_lo, iy_lo, ix_hi, iy_hi = self.covering_indices(mbr)
        for ix in range(ix_lo, ix_hi + 1):
            for iy in range(iy_lo, iy_hi + 1):
                yield morton_encode(ix, iy)
