"""Quadtree spatial join: sorted tile-list merge.

Linear quadtrees join by merging their B-trees' ``(tile_code, rowid)``
entries: two rows are candidates when they share at least one tile, and
the match is *certain* (no secondary filter needed for ANYINTERACT) when
either side's shared tile is interior.  This is the join style Oracle's
quadtree supported before the R-tree join existed, and the natural
comparison point for the paper's R-tree table-function join.

Both indexes must share the same grid (domain + tiling level) — tile codes
are only comparable within one tessellation.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import JoinError
from repro.engine.parallel import WorkerContext
from repro.index.quadtree.quadtree import QuadtreeIndex
from repro.storage.heap import RowId

__all__ = ["quadtree_tile_join", "quadtree_join_candidates"]


def quadtree_join_candidates(
    index_a: QuadtreeIndex,
    index_b: QuadtreeIndex,
    ctx: Optional[WorkerContext] = None,
) -> Dict[Tuple[RowId, RowId], bool]:
    """Candidate rowid pairs from a sorted merge of the two tile B-trees.

    Returns ``{(rowid_a, rowid_b): certain}`` where ``certain`` means the
    pair shared an interior tile (intersection guaranteed).
    """
    if index_a.grid != index_b.grid:
        raise JoinError(
            "quadtree join requires both indexes on the same tile grid "
            f"(got level {index_a.tiling_level} vs {index_b.tiling_level})"
        )
    candidates: Dict[Tuple[RowId, RowId], bool] = {}
    iter_a = _grouped_by_code(index_a, ctx)
    iter_b = _grouped_by_code(index_b, ctx)
    group_a = next(iter_a, None)
    group_b = next(iter_b, None)
    while group_a is not None and group_b is not None:
        code_a, rows_a = group_a
        code_b, rows_b = group_b
        if code_a < code_b:
            group_a = next(iter_a, None)
        elif code_b < code_a:
            group_b = next(iter_b, None)
        else:
            for rid_a, interior_a in rows_a:
                for rid_b, interior_b in rows_b:
                    if ctx is not None:
                        ctx.charge("mbr_test")
                    key = (rid_a, rid_b)
                    certain = interior_a or interior_b
                    if key in candidates:
                        candidates[key] = candidates[key] or certain
                    else:
                        candidates[key] = certain
            group_a = next(iter_a, None)
            group_b = next(iter_b, None)
    return candidates


def _grouped_by_code(
    index: QuadtreeIndex, ctx: Optional[WorkerContext]
) -> Iterator[Tuple[int, List[Tuple[RowId, bool]]]]:
    """Stream the index's entries grouped by tile code (codes ascending)."""
    current_code: Optional[int] = None
    bucket: List[Tuple[RowId, bool]] = []
    count = 0
    for (code, rowid), interior in index.btree.items():
        count += 1
        if code != current_code:
            if current_code is not None:
                yield current_code, bucket
            current_code = code
            bucket = []
        bucket.append((rowid, interior))
    if current_code is not None:
        yield current_code, bucket
    if ctx is not None:
        # Streaming the leaf level is a sequential scan of the index table.
        ctx.charge("btree_node_visit", count / max(1, index.btree_order // 2))
        ctx.charge("sort_per_item", count)


def quadtree_tile_join(
    index_a: QuadtreeIndex,
    index_b: QuadtreeIndex,
    ctx: Optional[WorkerContext] = None,
) -> List[Tuple[RowId, RowId]]:
    """Full ANYINTERACT join of two quadtree-indexed geometry columns.

    Tile-certain pairs are accepted directly; the rest go through the
    exact geometry predicate.
    """
    from repro.geometry.predicates import intersects

    candidates = quadtree_join_candidates(index_a, index_b, ctx)
    results: List[Tuple[RowId, RowId]] = []
    for (rid_a, rid_b), certain in sorted(candidates.items()):
        if certain:
            if ctx is not None:
                ctx.charge("result_row")
            results.append((rid_a, rid_b))
            continue
        geom_a = index_a.geometry_of(rid_a, ctx)
        geom_b = index_b.geometry_of(rid_b, ctx)
        if ctx is not None:
            ctx.charge("exact_test_base")
            ctx.charge(
                "exact_test_per_vertex", geom_a.num_vertices + geom_b.num_vertices
            )
        if intersects(geom_a, geom_b):
            if ctx is not None:
                ctx.charge("result_row")
            results.append((rid_a, rid_b))
    return results
