"""Persisting quadtrees into spatial index tables.

The paper (§3): "The index table stores index information such as ...
Quadtree tiles in the case of Quadtrees."  ``dump_quadtree`` writes one
row per tile — ``(tile_code, rowid, interior)`` — into a heap index table;
``load_quadtree`` bulk-rebuilds the B-tree from it.  The grid parameters
(domain, tiling level) belong in the index metadata row, exactly as the
paper describes, and are returned/required here explicitly.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import IndexBuildError
from repro.engine.table import Table
from repro.geometry.mbr import MBR
from repro.index.quadtree.quadtree import QuadtreeIndex
from repro.storage.btree import BPlusTree
from repro.storage.codec import decode_row, encode_row
from repro.storage.heap import HeapFile, RowId

__all__ = ["dump_quadtree", "load_quadtree"]


def dump_quadtree(index: QuadtreeIndex, heap: HeapFile) -> int:
    """Write every tile row of ``index`` into ``heap``; returns row count.

    Rows are written in key order, so a later bulk rebuild reads them
    back already sorted (sequential I/O both ways).
    """
    count = 0
    for (code, rowid), interior in index.btree.items():
        heap.insert(encode_row((code, rowid, interior)))
        count += 1
    return count


def load_quadtree(
    heap: HeapFile,
    name: str,
    table: Table,
    column: str,
    domain: MBR,
    tiling_level: int,
    btree_order: int = 64,
) -> QuadtreeIndex:
    """Rebuild a quadtree index from its index-table rows.

    ``domain`` and ``tiling_level`` come from the index metadata (the
    catalog's :class:`~repro.storage.catalog.IndexMeta` parameters).
    """
    index = QuadtreeIndex(
        name, table, column, domain=domain, tiling_level=tiling_level,
        btree_order=btree_order,
    )
    items: List[Tuple[Tuple[int, RowId], bool]] = []
    for _rid, record in heap.scan():
        values = decode_row(record)
        if len(values) != 3:
            raise IndexBuildError("index table row is not a (code, rowid, flag) tile")
        code, rowid, interior = values
        if not isinstance(code, int) or not isinstance(rowid, RowId):
            raise IndexBuildError("index table row is not a (code, rowid, flag) tile")
        items.append(((code, rowid), bool(interior)))
    items.sort(key=lambda kv: kv[0])
    index.btree = BPlusTree.bulk_load(items, order=btree_order)
    return index
