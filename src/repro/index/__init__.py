"""Spatial index implementations (R-tree and linear quadtree)."""

from repro.index.quadtree import QuadtreeIndex
from repro.index.rtree import RTree, RTreeIndex

__all__ = ["RTree", "RTreeIndex", "QuadtreeIndex"]
