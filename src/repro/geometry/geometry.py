"""The geometry object model.

This is the library's stand-in for Oracle Spatial's ``sdo_geometry`` object
type: a single :class:`Geometry` class whose :class:`GeometryType` tag covers
points, lines, polygons with holes, and the homogeneous/heterogeneous
multi-element types defined by the OGC simple-feature model.

Construction is via the classmethod factories (:meth:`Geometry.point`,
:meth:`Geometry.polygon`, ...) which validate their inputs once; instances
are immutable afterwards, and derived values (MBR, vertex count) are cached.
"""

from __future__ import annotations

import enum
import math
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import GeometryError
from repro.geometry.mbr import EMPTY_MBR, MBR, mbr_of_points
from repro.geometry.segments import EPSILON, on_segment, orientation

__all__ = ["GeometryType", "Ring", "Geometry"]

Coord = Tuple[float, float]


class GeometryType(enum.Enum):
    """OGC simple-feature geometry types supported by the library."""

    POINT = "POINT"
    LINESTRING = "LINESTRING"
    POLYGON = "POLYGON"
    MULTIPOINT = "MULTIPOINT"
    MULTILINESTRING = "MULTILINESTRING"
    MULTIPOLYGON = "MULTIPOLYGON"
    COLLECTION = "GEOMETRYCOLLECTION"

    @property
    def is_multi(self) -> bool:
        return self in (
            GeometryType.MULTIPOINT,
            GeometryType.MULTILINESTRING,
            GeometryType.MULTIPOLYGON,
            GeometryType.COLLECTION,
        )


class Ring:
    """A closed polygon ring.

    The coordinate list excludes the repeated closing vertex; ``ring.coords``
    always satisfies ``coords[0] != coords[-1]`` (the closure is implicit).
    Rings know their signed area and can answer point-location queries.
    """

    __slots__ = ("coords", "_mbr", "_signed_area", "_coords_array")

    def __init__(self, coords: Sequence[Coord]):
        pts = [(float(x), float(y)) for x, y in coords]
        if len(pts) >= 2 and pts[0] == pts[-1]:
            pts = pts[:-1]  # normalise away an explicit closing vertex
        if len(pts) < 3:
            raise GeometryError(f"ring needs >= 3 distinct vertices, got {len(pts)}")
        self.coords: Tuple[Coord, ...] = tuple(pts)
        self._mbr: Optional[MBR] = None
        self._signed_area: Optional[float] = None
        self._coords_array = None

    def __len__(self) -> int:
        return len(self.coords)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Ring) and self.coords == other.coords

    def __hash__(self) -> int:
        return hash(self.coords)

    def __repr__(self) -> str:
        return f"Ring({len(self.coords)} vertices)"

    # Pickling: ship the coordinates, not the derived caches.
    def __getstate__(self):
        return self.coords

    def __setstate__(self, state) -> None:
        self.coords = state
        self._mbr = None
        self._signed_area = None
        self._coords_array = None

    @property
    def mbr(self) -> MBR:
        if self._mbr is None:
            self._mbr = mbr_of_points(self.coords)
        return self._mbr

    def coords_array(self):
        """Cached contiguous ``float64`` ndarray view of the ring vertices.

        Shape ``(n, 2)``; never invalidated — rings are immutable, so the
        decode cost is paid once per object.  Requires numpy (only the
        vectorized kernel backend calls this).
        """
        cached = self._coords_array
        if cached is None:
            import numpy as np

            cached = np.asarray(self.coords, dtype=np.float64).reshape(-1, 2)
            self._coords_array = cached
        return cached

    @property
    def signed_area(self) -> float:
        """Shoelace area: positive for counter-clockwise orientation."""
        if self._signed_area is None:
            total = 0.0
            pts = self.coords
            n = len(pts)
            for i in range(n):
                x1, y1 = pts[i]
                x2, y2 = pts[(i + 1) % n]
                total += x1 * y2 - x2 * y1
            self._signed_area = total / 2.0
        return self._signed_area

    @property
    def area(self) -> float:
        return abs(self.signed_area)

    @property
    def is_ccw(self) -> bool:
        return self.signed_area > 0.0

    def reversed(self) -> "Ring":
        return Ring(tuple(reversed(self.coords)))

    def oriented(self, ccw: bool) -> "Ring":
        """Return this ring with the requested orientation."""
        if self.is_ccw == ccw:
            return self
        return self.reversed()

    def edges(self) -> Iterator[Tuple[Coord, Coord]]:
        pts = self.coords
        n = len(pts)
        for i in range(n):
            yield pts[i], pts[(i + 1) % n]

    def contains_point(self, x: float, y: float, eps: float = EPSILON) -> bool:
        """Point-in-ring test (boundary counts as inside).

        Standard ray casting with an explicit boundary pre-check so that
        vertices and edge-interior points are classified deterministically.
        """
        if not self.mbr.contains_point(x, y):
            return False
        p = (x, y)
        for a, b in self.edges():
            if on_segment(p, a, b, eps):
                return True
        inside = False
        pts = self.coords
        n = len(pts)
        j = n - 1
        for i in range(n):
            xi, yi = pts[i]
            xj, yj = pts[j]
            if (yi > y) != (yj > y):
                x_cross = (xj - xi) * (y - yi) / (yj - yi) + xi
                if x < x_cross:
                    inside = not inside
            j = i
        return inside

    def is_convex(self) -> bool:
        """True when all turns share one orientation (collinear runs allowed)."""
        sign = 0
        pts = self.coords
        n = len(pts)
        for i in range(n):
            o = orientation(pts[i], pts[(i + 1) % n], pts[(i + 2) % n])
            if o == 0:
                continue
            if sign == 0:
                sign = o
            elif o != sign:
                return False
        return True


class Geometry:
    """An immutable 2-D geometry (the library's ``sdo_geometry`` analogue).

    Internal representation by type:

    * ``POINT`` — ``coords`` holds one coordinate pair.
    * ``LINESTRING`` — ``coords`` holds the vertex chain.
    * ``POLYGON`` — ``exterior`` is the outer :class:`Ring` (CCW),
      ``holes`` the inner rings (CW).
    * multi types / collections — ``parts`` holds component geometries.
    """

    __slots__ = (
        "geom_type",
        "coords",
        "exterior",
        "holes",
        "parts",
        "_mbr",
        "_nvertices",
        "_coords_array",
        "_edges_array",
    )

    def __init__(
        self,
        geom_type: GeometryType,
        coords: Tuple[Coord, ...] = (),
        exterior: Optional[Ring] = None,
        holes: Tuple[Ring, ...] = (),
        parts: Tuple["Geometry", ...] = (),
    ):
        self.geom_type = geom_type
        self.coords = coords
        self.exterior = exterior
        self.holes = holes
        self.parts = parts
        self._mbr: Optional[MBR] = None
        self._nvertices: Optional[int] = None
        self._coords_array = None
        self._edges_array = None

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    @classmethod
    def point(cls, x: float, y: float) -> "Geometry":
        x, y = float(x), float(y)
        if not (math.isfinite(x) and math.isfinite(y)):
            raise GeometryError(f"non-finite point coordinates ({x}, {y})")
        return cls(GeometryType.POINT, coords=((x, y),))

    @classmethod
    def linestring(cls, coords: Sequence[Coord]) -> "Geometry":
        pts = tuple((float(x), float(y)) for x, y in coords)
        if len(pts) < 2:
            raise GeometryError(f"linestring needs >= 2 vertices, got {len(pts)}")
        for x, y in pts:
            if not (math.isfinite(x) and math.isfinite(y)):
                raise GeometryError(f"non-finite linestring vertex ({x}, {y})")
        return cls(GeometryType.LINESTRING, coords=pts)

    @classmethod
    def polygon(
        cls,
        exterior: Sequence[Coord],
        holes: Sequence[Sequence[Coord]] = (),
    ) -> "Geometry":
        """Polygon from an exterior ring and optional holes.

        Ring orientation in the input is normalised: exterior to CCW, holes
        to CW, matching the OGC convention.
        """
        outer = Ring(exterior).oriented(ccw=True)
        inner = tuple(Ring(h).oriented(ccw=False) for h in holes)
        for hole in inner:
            if not outer.mbr.contains(hole.mbr):
                raise GeometryError("hole MBR extends outside the exterior ring")
        return cls(GeometryType.POLYGON, exterior=outer, holes=inner)

    @classmethod
    def rectangle(cls, min_x: float, min_y: float, max_x: float, max_y: float) -> "Geometry":
        """Axis-aligned rectangular polygon (a common query window)."""
        if min_x >= max_x or min_y >= max_y:
            raise GeometryError("rectangle requires min < max on both axes")
        return cls.polygon(
            [(min_x, min_y), (max_x, min_y), (max_x, max_y), (min_x, max_y)]
        )

    @classmethod
    def from_mbr(cls, mbr: MBR) -> "Geometry":
        if mbr.is_empty:
            raise GeometryError("cannot build geometry from empty MBR")
        if mbr.width == 0.0 and mbr.height == 0.0:
            return cls.point(mbr.min_x, mbr.min_y)
        if mbr.width == 0.0 or mbr.height == 0.0:
            return cls.linestring([(mbr.min_x, mbr.min_y), (mbr.max_x, mbr.max_y)])
        return cls.rectangle(mbr.min_x, mbr.min_y, mbr.max_x, mbr.max_y)

    @classmethod
    def multipoint(cls, points: Sequence[Coord]) -> "Geometry":
        parts = tuple(cls.point(x, y) for x, y in points)
        if not parts:
            raise GeometryError("multipoint needs >= 1 point")
        return cls(GeometryType.MULTIPOINT, parts=parts)

    @classmethod
    def multilinestring(cls, lines: Sequence[Sequence[Coord]]) -> "Geometry":
        parts = tuple(cls.linestring(line) for line in lines)
        if not parts:
            raise GeometryError("multilinestring needs >= 1 linestring")
        return cls(GeometryType.MULTILINESTRING, parts=parts)

    @classmethod
    def multipolygon(
        cls, polygons: Sequence[Tuple[Sequence[Coord], Sequence[Sequence[Coord]]]]
    ) -> "Geometry":
        """Multipolygon from ``[(exterior, holes), ...]`` tuples."""
        parts = tuple(cls.polygon(ext, holes) for ext, holes in polygons)
        if not parts:
            raise GeometryError("multipolygon needs >= 1 polygon")
        return cls(GeometryType.MULTIPOLYGON, parts=parts)

    @classmethod
    def collection(cls, geometries: Sequence["Geometry"]) -> "Geometry":
        parts = tuple(geometries)
        if not parts:
            raise GeometryError("collection needs >= 1 geometry")
        return cls(GeometryType.COLLECTION, parts=parts)

    # ------------------------------------------------------------------
    # Derived values
    # ------------------------------------------------------------------
    @property
    def mbr(self) -> MBR:
        if self._mbr is None:
            self._mbr = self._compute_mbr()
        return self._mbr

    def _compute_mbr(self) -> MBR:
        if self.geom_type is GeometryType.POINT:
            (x, y) = self.coords[0]
            return MBR(x, y, x, y)
        if self.geom_type is GeometryType.LINESTRING:
            return mbr_of_points(self.coords)
        if self.geom_type is GeometryType.POLYGON:
            assert self.exterior is not None
            return self.exterior.mbr
        result = EMPTY_MBR
        for part in self.parts:
            result = result.union(part.mbr)
        return result

    @property
    def num_vertices(self) -> int:
        if self._nvertices is None:
            self._nvertices = self._count_vertices()
        return self._nvertices

    def _count_vertices(self) -> int:
        if self.geom_type in (GeometryType.POINT, GeometryType.LINESTRING):
            return len(self.coords)
        if self.geom_type is GeometryType.POLYGON:
            assert self.exterior is not None
            return len(self.exterior) + sum(len(h) for h in self.holes)
        return sum(part.num_vertices for part in self.parts)

    @property
    def area(self) -> float:
        """Total polygon area (holes subtracted); 0 for points and lines."""
        if self.geom_type is GeometryType.POLYGON:
            assert self.exterior is not None
            return self.exterior.area - sum(h.area for h in self.holes)
        if self.geom_type.is_multi:
            return sum(part.area for part in self.parts)
        return 0.0

    @property
    def length(self) -> float:
        """Total boundary/chain length; 0 for points."""
        if self.geom_type is GeometryType.LINESTRING:
            return _chain_length(self.coords, closed=False)
        if self.geom_type is GeometryType.POLYGON:
            assert self.exterior is not None
            total = _chain_length(self.exterior.coords, closed=True)
            for hole in self.holes:
                total += _chain_length(hole.coords, closed=True)
            return total
        if self.geom_type.is_multi:
            return sum(part.length for part in self.parts)
        return 0.0

    # ------------------------------------------------------------------
    # Decomposition helpers used by predicates and tessellation
    # ------------------------------------------------------------------
    def simple_parts(self) -> Iterator["Geometry"]:
        """Yield the primitive (non-multi) geometries this one is made of."""
        if self.geom_type.is_multi:
            for part in self.parts:
                yield from part.simple_parts()
        else:
            yield self

    def boundary_edges(self) -> Iterator[Tuple[Coord, Coord]]:
        """Yield every boundary segment of the geometry.

        Polygon edges include hole boundaries; points yield nothing.
        """
        for part in self.simple_parts():
            if part.geom_type is GeometryType.LINESTRING:
                pts = part.coords
                for i in range(len(pts) - 1):
                    yield pts[i], pts[i + 1]
            elif part.geom_type is GeometryType.POLYGON:
                assert part.exterior is not None
                yield from part.exterior.edges()
                for hole in part.holes:
                    yield from hole.edges()

    def vertices(self) -> Iterator[Coord]:
        """Yield every vertex of the geometry."""
        for part in self.simple_parts():
            if part.geom_type in (GeometryType.POINT, GeometryType.LINESTRING):
                yield from part.coords
            else:
                assert part.exterior is not None
                yield from part.exterior.coords
                for hole in part.holes:
                    yield from hole.coords

    def coords_array(self):
        """Cached ``(n, 2)`` float64 ndarray of every vertex.

        Vertex order matches :meth:`vertices`.  Never invalidated —
        geometries are immutable, so the decode cost is paid once per
        fetched geometry, not once per predicate evaluation.  Requires
        numpy (only the vectorized kernel backend calls this).
        """
        cached = self._coords_array
        if cached is None:
            import numpy as np

            cached = np.asarray(list(self.vertices()), dtype=np.float64).reshape(
                -1, 2
            )
            self._coords_array = cached
        return cached

    def edges_array(self):
        """Cached ``(m, 4)`` float64 ndarray of every boundary segment.

        Row layout is ``(x1, y1, x2, y2)`` in :meth:`boundary_edges` order
        (polygon edges include hole boundaries; points contribute nothing).
        Cached forever, like :meth:`coords_array`.
        """
        cached = self._edges_array
        if cached is None:
            import numpy as np

            cached = np.asarray(
                [(a[0], a[1], b[0], b[1]) for a, b in self.boundary_edges()],
                dtype=np.float64,
            ).reshape(-1, 4)
            self._edges_array = cached
        return cached

    def contains_point(self, x: float, y: float) -> bool:
        """True if (x, y) lies on or inside the geometry."""
        for part in self.simple_parts():
            if part.geom_type is GeometryType.POINT:
                px, py = part.coords[0]
                dx, dy = px - x, py - y
                # Squared comparison (see repro.geometry.kernels: the
                # vectorized backend replicates exactly these operations).
                if dx * dx + dy * dy <= EPSILON * EPSILON:
                    return True
            elif part.geom_type is GeometryType.LINESTRING:
                pts = part.coords
                for i in range(len(pts) - 1):
                    if on_segment((x, y), pts[i], pts[i + 1]):
                        return True
            else:
                assert part.exterior is not None
                if part.exterior.contains_point(x, y):
                    in_hole = False
                    for hole in part.holes:
                        # Strictly interior to a hole => outside the polygon;
                        # on the hole boundary => still on the polygon.
                        if hole.contains_point(x, y) and not _on_ring_boundary(
                            hole, x, y
                        ):
                            in_hole = True
                            break
                    if not in_hole:
                        return True
        return False

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Geometry):
            return NotImplemented
        return (
            self.geom_type == other.geom_type
            and self.coords == other.coords
            and self.exterior == other.exterior
            and self.holes == other.holes
            and self.parts == other.parts
        )

    def __hash__(self) -> int:
        return hash((self.geom_type, self.coords, self.exterior, self.holes, self.parts))

    def __repr__(self) -> str:
        return f"Geometry({self.geom_type.value}, {self.num_vertices} vertices)"

    # Pickling (geometries ride process-executor task payloads): ship only
    # the defining fields, not the derived ndarray caches.
    def __getstate__(self):
        return (self.geom_type, self.coords, self.exterior, self.holes, self.parts)

    def __setstate__(self, state) -> None:
        self.geom_type, self.coords, self.exterior, self.holes, self.parts = state
        self._mbr = None
        self._nvertices = None
        self._coords_array = None
        self._edges_array = None


def _chain_length(coords: Sequence[Coord], closed: bool) -> float:
    total = 0.0
    n = len(coords)
    last = n if closed else n - 1
    for i in range(last):
        x1, y1 = coords[i]
        x2, y2 = coords[(i + 1) % n]
        total += math.hypot(x2 - x1, y2 - y1)
    return total


def _on_ring_boundary(ring: Ring, x: float, y: float) -> bool:
    p = (x, y)
    for a, b in ring.edges():
        if on_segment(p, a, b):
            return True
    return False
