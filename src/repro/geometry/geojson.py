"""GeoJSON (RFC 7946) reader and writer.

A second interchange format next to WKT: the examples ship data in and
out of the library with it, and round-tripping through a dict-based
format exercises different paths than the text codec.

Supported: Point, LineString, Polygon, MultiPoint, MultiLineString,
MultiPolygon, GeometryCollection, plus Feature / FeatureCollection
unwrapping on read.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import GeometryError
from repro.geometry.geometry import Geometry, GeometryType

__all__ = ["to_geojson", "from_geojson", "to_geojson_str", "from_geojson_str"]

Coord = Tuple[float, float]


def to_geojson(geom: Geometry) -> Dict[str, Any]:
    """Encode a :class:`Geometry` as a GeoJSON geometry object (dict)."""
    t = geom.geom_type
    if t is GeometryType.POINT:
        return {"type": "Point", "coordinates": list(geom.coords[0])}
    if t is GeometryType.LINESTRING:
        return {"type": "LineString", "coordinates": [list(c) for c in geom.coords]}
    if t is GeometryType.POLYGON:
        return {"type": "Polygon", "coordinates": _polygon_rings(geom)}
    if t is GeometryType.MULTIPOINT:
        return {
            "type": "MultiPoint",
            "coordinates": [list(p.coords[0]) for p in geom.parts],
        }
    if t is GeometryType.MULTILINESTRING:
        return {
            "type": "MultiLineString",
            "coordinates": [[list(c) for c in p.coords] for p in geom.parts],
        }
    if t is GeometryType.MULTIPOLYGON:
        return {
            "type": "MultiPolygon",
            "coordinates": [_polygon_rings(p) for p in geom.parts],
        }
    return {
        "type": "GeometryCollection",
        "geometries": [to_geojson(p) for p in geom.parts],
    }


def _polygon_rings(geom: Geometry) -> List[List[List[float]]]:
    assert geom.exterior is not None
    rings = [geom.exterior] + list(geom.holes)
    out = []
    for ring in rings:
        closed = list(ring.coords) + [ring.coords[0]]
        out.append([list(c) for c in closed])
    return out


def from_geojson(obj: Dict[str, Any]) -> Geometry:
    """Decode a GeoJSON object (geometry, Feature, or FeatureCollection).

    Features decode to their geometry; FeatureCollections decode to a
    geometry collection of their features' geometries.
    """
    if not isinstance(obj, dict) or "type" not in obj:
        raise GeometryError("GeoJSON object must be a dict with a 'type'")
    gtype = obj["type"]
    if gtype == "Feature":
        geometry = obj.get("geometry")
        if geometry is None:
            raise GeometryError("Feature with null geometry")
        return from_geojson(geometry)
    if gtype == "FeatureCollection":
        features = obj.get("features", [])
        if not features:
            raise GeometryError("empty FeatureCollection")
        return Geometry.collection([from_geojson(f) for f in features])
    if gtype == "GeometryCollection":
        return Geometry.collection(
            [from_geojson(g) for g in obj.get("geometries", [])]
        )

    coords = obj.get("coordinates")
    if coords is None:
        raise GeometryError(f"{gtype} without coordinates")
    if gtype == "Point":
        return Geometry.point(coords[0], coords[1])
    if gtype == "LineString":
        return Geometry.linestring([_pt(c) for c in coords])
    if gtype == "Polygon":
        return _polygon_from_rings(coords)
    if gtype == "MultiPoint":
        return Geometry.multipoint([_pt(c) for c in coords])
    if gtype == "MultiLineString":
        return Geometry.multilinestring([[_pt(c) for c in line] for line in coords])
    if gtype == "MultiPolygon":
        parts = [_polygon_from_rings(rings) for rings in coords]
        return Geometry.multipolygon(
            [
                (
                    list(p.exterior.coords),  # type: ignore[union-attr]
                    [list(h.coords) for h in p.holes],
                )
                for p in parts
            ]
        )
    raise GeometryError(f"unsupported GeoJSON type {gtype!r}")


def _pt(c: Sequence[float]) -> Coord:
    if len(c) < 2:
        raise GeometryError(f"coordinate {c!r} needs at least x and y")
    return (float(c[0]), float(c[1]))


def _polygon_from_rings(rings: Sequence[Sequence[Sequence[float]]]) -> Geometry:
    if not rings:
        raise GeometryError("Polygon needs at least an exterior ring")
    exterior = [_pt(c) for c in rings[0]]
    holes = [[_pt(c) for c in ring] for ring in rings[1:]]
    return Geometry.polygon(exterior, holes)


def to_geojson_str(geom: Geometry, **json_kwargs: Any) -> str:
    """Encode a geometry as GeoJSON text."""
    return json.dumps(to_geojson(geom), **json_kwargs)


def from_geojson_str(text: str) -> Geometry:
    """Parse GeoJSON text into a geometry."""
    try:
        obj = json.loads(text)
    except json.JSONDecodeError as exc:
        raise GeometryError(f"invalid GeoJSON text: {exc}") from exc
    return from_geojson(obj)
