"""Geometry validation.

``validate`` returns a list of human-readable problems (empty = valid);
``is_valid`` is the boolean convenience wrapper.  Index creation uses this
to reject garbage before it reaches the tessellator, mirroring the
``VALIDATE_GEOMETRY`` step an Oracle Spatial loader runs.
"""

from __future__ import annotations

import math
from typing import List

from repro.geometry.geometry import Geometry, GeometryType, Ring
from repro.geometry.segments import segments_intersect

__all__ = ["validate", "is_valid"]


def validate(geom: Geometry) -> List[str]:
    """Return a list of validity problems (empty list means valid)."""
    problems: List[str] = []
    for part in geom.simple_parts():
        if part.geom_type is GeometryType.POINT:
            _check_finite(part, problems)
        elif part.geom_type is GeometryType.LINESTRING:
            _check_finite(part, problems)
            _check_no_repeated_consecutive(part, problems)
        elif part.geom_type is GeometryType.POLYGON:
            _check_polygon(part, problems)
    return problems


def is_valid(geom: Geometry) -> bool:
    """True when :func:`validate` reports no problems."""
    return not validate(geom)


def _check_finite(part: Geometry, problems: List[str]) -> None:
    for x, y in part.vertices():
        if not (math.isfinite(x) and math.isfinite(y)):
            problems.append(f"non-finite vertex ({x}, {y})")
            return


def _check_no_repeated_consecutive(part: Geometry, problems: List[str]) -> None:
    prev = None
    for pt in part.coords:
        if prev is not None and pt == prev:
            problems.append(f"repeated consecutive vertex {pt}")
            return
        prev = pt


def _check_polygon(part: Geometry, problems: List[str]) -> None:
    assert part.exterior is not None
    _check_finite(part, problems)
    if part.exterior.area == 0.0:
        problems.append("exterior ring has zero area")
    if _ring_self_intersects(part.exterior):
        problems.append("exterior ring self-intersects")
    if not part.exterior.is_ccw:
        problems.append("exterior ring is not counter-clockwise")
    for i, hole in enumerate(part.holes):
        if hole.area == 0.0:
            problems.append(f"hole {i} has zero area")
        if _ring_self_intersects(hole):
            problems.append(f"hole {i} self-intersects")
        if hole.is_ccw:
            problems.append(f"hole {i} is not clockwise")
        # Hole vertices must lie inside (or on) the exterior ring.
        for x, y in hole.coords:
            if not part.exterior.contains_point(x, y):
                problems.append(f"hole {i} vertex ({x}, {y}) outside exterior")
                break


def _ring_self_intersects(ring: Ring) -> bool:
    """O(n^2) self-intersection check between non-adjacent edges.

    Adequate for validation of the synthetic datasets (rings are small);
    adjacency (shared endpoints) is excluded from the test.
    """
    edges = list(ring.edges())
    n = len(edges)
    for i in range(n):
        a1, a2 = edges[i]
        for j in range(i + 1, n):
            if j == i or (i == 0 and j == n - 1):
                continue
            if j == i + 1:
                continue
            b1, b2 = edges[j]
            if segments_intersect(a1, a2, b1, b2):
                return True
    return False
