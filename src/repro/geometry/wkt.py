"""Well-Known Text reader and writer.

WKT is the interchange format used by the examples and dataset dumps.  The
reader is a small recursive-descent parser over a token stream; the writer
emits canonical uppercase WKT with explicit ring closure.
"""

from __future__ import annotations

import re
from typing import Iterator, List, Tuple

from repro.errors import WktError
from repro.geometry.geometry import Geometry, GeometryType

__all__ = ["to_wkt", "from_wkt"]

Coord = Tuple[float, float]

_TOKEN_RE = re.compile(
    r"""
    (?P<word>[A-Za-z]+)
  | (?P<number>[-+]?\d+(?:\.\d*)?(?:[eE][-+]?\d+)?|[-+]?\.\d+(?:[eE][-+]?\d+)?)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<ws>\s+)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> Iterator[Tuple[str, str]]:
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise WktError(f"unexpected character at offset {pos}: {text[pos]!r}")
        pos = match.end()
        kind = match.lastgroup
        if kind != "ws":
            assert kind is not None
            yield kind, match.group()
    yield "eof", ""


class _Parser:
    def __init__(self, text: str):
        self._tokens = list(_tokenize(text))
        self._index = 0

    def _peek(self) -> Tuple[str, str]:
        return self._tokens[self._index]

    def _next(self) -> Tuple[str, str]:
        tok = self._tokens[self._index]
        self._index += 1
        return tok

    def _expect(self, kind: str) -> str:
        tok_kind, value = self._next()
        if tok_kind != kind:
            raise WktError(f"expected {kind}, got {tok_kind} {value!r}")
        return value

    def parse(self) -> Geometry:
        geom = self._geometry()
        kind, value = self._peek()
        if kind != "eof":
            raise WktError(f"trailing input after geometry: {value!r}")
        return geom

    def _geometry(self) -> Geometry:
        tag = self._expect("word").upper()
        if tag == "POINT":
            coords = self._coord_list_parens()
            if len(coords) != 1:
                raise WktError("POINT must have exactly one coordinate")
            return Geometry.point(*coords[0])
        if tag == "LINESTRING":
            return Geometry.linestring(self._coord_list_parens())
        if tag == "POLYGON":
            rings = self._ring_list()
            return Geometry.polygon(rings[0], rings[1:])
        if tag == "MULTIPOINT":
            return Geometry.multipoint(self._multipoint_coords())
        if tag == "MULTILINESTRING":
            return Geometry.multilinestring(self._ring_or_line_list())
        if tag == "MULTIPOLYGON":
            self._expect("lparen")
            polys = [self._ring_list()]
            while self._peek()[0] == "comma":
                self._next()
                polys.append(self._ring_list())
            self._expect("rparen")
            return Geometry.multipolygon([(rings[0], rings[1:]) for rings in polys])
        if tag == "GEOMETRYCOLLECTION":
            self._expect("lparen")
            parts = [self._geometry()]
            while self._peek()[0] == "comma":
                self._next()
                parts.append(self._geometry())
            self._expect("rparen")
            return Geometry.collection(parts)
        raise WktError(f"unknown geometry tag {tag!r}")

    def _number(self) -> float:
        return float(self._expect("number"))

    def _coord(self) -> Coord:
        return (self._number(), self._number())

    def _coord_list_parens(self) -> List[Coord]:
        self._expect("lparen")
        coords = [self._coord()]
        while self._peek()[0] == "comma":
            self._next()
            coords.append(self._coord())
        self._expect("rparen")
        return coords

    def _ring_list(self) -> List[List[Coord]]:
        self._expect("lparen")
        rings = [self._coord_list_parens()]
        while self._peek()[0] == "comma":
            self._next()
            rings.append(self._coord_list_parens())
        self._expect("rparen")
        return rings

    def _ring_or_line_list(self) -> List[List[Coord]]:
        return self._ring_list()

    def _multipoint_coords(self) -> List[Coord]:
        """MULTIPOINT accepts both (1 2, 3 4) and ((1 2), (3 4))."""
        self._expect("lparen")
        coords: List[Coord] = []
        while True:
            if self._peek()[0] == "lparen":
                self._next()
                coords.append(self._coord())
                self._expect("rparen")
            else:
                coords.append(self._coord())
            if self._peek()[0] == "comma":
                self._next()
                continue
            break
        self._expect("rparen")
        return coords


def from_wkt(text: str) -> Geometry:
    """Parse a WKT string into a :class:`Geometry`."""
    return _Parser(text).parse()


def to_wkt(geom: Geometry) -> str:
    """Serialise a :class:`Geometry` to canonical WKT."""
    t = geom.geom_type
    if t is GeometryType.POINT:
        return f"POINT ({_fmt_coord(geom.coords[0])})"
    if t is GeometryType.LINESTRING:
        return f"LINESTRING {_fmt_coords(geom.coords)}"
    if t is GeometryType.POLYGON:
        return f"POLYGON {_fmt_polygon(geom)}"
    if t is GeometryType.MULTIPOINT:
        inner = ", ".join(f"({_fmt_coord(p.coords[0])})" for p in geom.parts)
        return f"MULTIPOINT ({inner})"
    if t is GeometryType.MULTILINESTRING:
        inner = ", ".join(_fmt_coords(p.coords) for p in geom.parts)
        return f"MULTILINESTRING ({inner})"
    if t is GeometryType.MULTIPOLYGON:
        inner = ", ".join(_fmt_polygon(p) for p in geom.parts)
        return f"MULTIPOLYGON ({inner})"
    inner = ", ".join(to_wkt(p) for p in geom.parts)
    return f"GEOMETRYCOLLECTION ({inner})"


def _fmt_num(v: float) -> str:
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(v)


def _fmt_coord(c: Coord) -> str:
    return f"{_fmt_num(c[0])} {_fmt_num(c[1])}"


def _fmt_coords(coords) -> str:
    return "(" + ", ".join(_fmt_coord(c) for c in coords) + ")"


def _fmt_polygon(geom: Geometry) -> str:
    assert geom.exterior is not None
    rings = [geom.exterior] + list(geom.holes)
    parts = []
    for ring in rings:
        closed = ring.coords + (ring.coords[0],)
        parts.append(_fmt_coords(closed))
    return "(" + ", ".join(parts) + ")"
