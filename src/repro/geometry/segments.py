"""Low-level planar primitives: orientation, segment intersection, distances.

These routines use a small epsilon for robustness rather than exact
arithmetic.  That matches the precision model of the system being
reproduced (Oracle Spatial operates on a user-supplied tolerance); all
higher-level predicates funnel through the functions here so the tolerance
policy lives in one place.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

__all__ = [
    "EPSILON",
    "orientation",
    "on_segment",
    "segments_intersect",
    "segment_intersection_point",
    "point_segment_distance",
    "point_segment_distance_sq",
    "segment_segment_distance",
    "segment_segment_distance_sq",
]

# Default tolerance for collinearity / incidence decisions.  Datasets in this
# library live in coordinate ranges of roughly [0, 1e4], for which 1e-9 is far
# below any meaningful feature size while still absorbing float noise.
EPSILON = 1e-9

Point = Tuple[float, float]


def orientation(p: Point, q: Point, r: Point, eps: float = EPSILON) -> int:
    """Orientation of the ordered triple (p, q, r).

    Returns +1 for counter-clockwise, -1 for clockwise and 0 for collinear
    (within ``eps`` scaled by the magnitude of the cross product operands).
    """
    cross = (q[0] - p[0]) * (r[1] - p[1]) - (q[1] - p[1]) * (r[0] - p[0])
    # Scale the tolerance by the operand magnitude so large coordinates do
    # not spuriously read as collinear-or-not depending on their offset.
    scale = (
        abs(q[0] - p[0]) + abs(q[1] - p[1]) + abs(r[0] - p[0]) + abs(r[1] - p[1])
    )
    tol = eps * max(scale, 1.0)
    if cross > tol:
        return 1
    if cross < -tol:
        return -1
    return 0


def on_segment(p: Point, a: Point, b: Point, eps: float = EPSILON) -> bool:
    """True if point ``p`` lies on segment ``ab`` (inclusive of endpoints)."""
    if orientation(a, b, p, eps) != 0:
        return False
    return (
        min(a[0], b[0]) - eps <= p[0] <= max(a[0], b[0]) + eps
        and min(a[1], b[1]) - eps <= p[1] <= max(a[1], b[1]) + eps
    )


def segments_intersect(
    a: Point, b: Point, c: Point, d: Point, eps: float = EPSILON
) -> bool:
    """True if closed segments ``ab`` and ``cd`` share at least one point."""
    o1 = orientation(a, b, c, eps)
    o2 = orientation(a, b, d, eps)
    o3 = orientation(c, d, a, eps)
    o4 = orientation(c, d, b, eps)

    if o1 != o2 and o3 != o4:
        return True

    # Collinear special cases: an endpoint of one segment lies on the other.
    if o1 == 0 and on_segment(c, a, b, eps):
        return True
    if o2 == 0 and on_segment(d, a, b, eps):
        return True
    if o3 == 0 and on_segment(a, c, d, eps):
        return True
    if o4 == 0 and on_segment(b, c, d, eps):
        return True
    return False


def segment_intersection_point(
    a: Point, b: Point, c: Point, d: Point, eps: float = EPSILON
) -> Optional[Point]:
    """Intersection point of two *properly* crossing segments.

    Returns ``None`` for parallel, collinear-overlapping, or disjoint pairs.
    Touching at an endpoint counts as an intersection and returns that point.
    """
    r_x, r_y = b[0] - a[0], b[1] - a[1]
    s_x, s_y = d[0] - c[0], d[1] - c[1]
    denom = r_x * s_y - r_y * s_x
    if abs(denom) <= eps * max(abs(r_x) + abs(r_y) + abs(s_x) + abs(s_y), 1.0):
        return None
    t = ((c[0] - a[0]) * s_y - (c[1] - a[1]) * s_x) / denom
    u = ((c[0] - a[0]) * r_y - (c[1] - a[1]) * r_x) / denom
    if -eps <= t <= 1.0 + eps and -eps <= u <= 1.0 + eps:
        return (a[0] + t * r_x, a[1] + t * r_y)
    return None


def point_segment_distance_sq(p: Point, a: Point, b: Point) -> float:
    """Squared Euclidean distance from point ``p`` to closed segment ``ab``.

    All distance comparisons in the library happen in squared space (one
    multiply instead of a ``sqrt`` per comparison); the square root is
    taken once at the public API boundary.  The batch kernels replicate
    exactly these arithmetic operations, so the scalar and vectorized
    backends produce bit-identical comparison outcomes.
    """
    ab_x, ab_y = b[0] - a[0], b[1] - a[1]
    ap_x, ap_y = p[0] - a[0], p[1] - a[1]
    denom = ab_x * ab_x + ab_y * ab_y
    if denom == 0.0:  # degenerate segment
        return ap_x * ap_x + ap_y * ap_y
    t = (ap_x * ab_x + ap_y * ab_y) / denom
    t = max(0.0, min(1.0, t))
    dx = p[0] - (a[0] + t * ab_x)
    dy = p[1] - (a[1] + t * ab_y)
    return dx * dx + dy * dy


def point_segment_distance(p: Point, a: Point, b: Point) -> float:
    """Euclidean distance from point ``p`` to closed segment ``ab``."""
    return math.sqrt(point_segment_distance_sq(p, a, b))


def segment_segment_distance_sq(a: Point, b: Point, c: Point, d: Point) -> float:
    """Squared minimum distance between closed segments ``ab`` and ``cd``."""
    if segments_intersect(a, b, c, d):
        return 0.0
    return min(
        point_segment_distance_sq(a, c, d),
        point_segment_distance_sq(b, c, d),
        point_segment_distance_sq(c, a, b),
        point_segment_distance_sq(d, a, b),
    )


def segment_segment_distance(a: Point, b: Point, c: Point, d: Point) -> float:
    """Minimum distance between closed segments ``ab`` and ``cd``."""
    return math.sqrt(segment_segment_distance_sq(a, b, c, d))
