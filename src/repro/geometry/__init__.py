"""2-D geometry engine: the library's ``sdo_geometry`` equivalent.

Public surface:

* :class:`Geometry` / :class:`GeometryType` / :class:`Ring` — the object model.
* :class:`MBR` — minimum bounding rectangles (the index currency).
* predicates — ``intersects``, ``contains``, ``touches``, ``relate`` masks.
* ``distance`` / ``within_distance`` — exact metric operations.
* ``to_wkt`` / ``from_wkt`` and ``to_sdo`` / ``from_sdo`` — interchange.
"""

from repro.geometry.distance import distance, within_distance
from repro.geometry.geojson import (
    from_geojson,
    from_geojson_str,
    to_geojson,
    to_geojson_str,
)
from repro.geometry.geometry import Geometry, GeometryType, Ring
from repro.geometry.interior import interior_rectangle
from repro.geometry.mbr import EMPTY_MBR, MBR, mbr_of_points, union_all
from repro.geometry.predicates import (
    INTERACTION_MASKS,
    contains,
    disjoint,
    equals,
    inside,
    intersects,
    relate,
    touches,
)
from repro.geometry.sdo import SdoGeometry, from_sdo, to_sdo
from repro.geometry.validation import is_valid, validate
from repro.geometry.wkt import from_wkt, to_wkt

__all__ = [
    "Geometry",
    "GeometryType",
    "Ring",
    "MBR",
    "EMPTY_MBR",
    "mbr_of_points",
    "union_all",
    "intersects",
    "contains",
    "inside",
    "touches",
    "equals",
    "disjoint",
    "relate",
    "INTERACTION_MASKS",
    "distance",
    "within_distance",
    "interior_rectangle",
    "SdoGeometry",
    "to_sdo",
    "from_sdo",
    "to_wkt",
    "from_wkt",
    "to_geojson",
    "from_geojson",
    "to_geojson_str",
    "from_geojson_str",
    "validate",
    "is_valid",
]
