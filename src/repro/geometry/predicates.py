"""Exact topological predicates between geometries.

These are the *secondary filter* of the spatial join and of window queries:
the primary (MBR) filter proposes candidates, and the functions here give
the exact answer.  The supported interaction masks mirror Oracle Spatial's
``sdo_relate`` masks: ``ANYINTERACT`` (a.k.a. ``INTERSECT``), ``CONTAINS``,
``INSIDE``, ``COVERS``, ``COVEREDBY``, ``TOUCH``, ``EQUAL`` and
``DISJOINT``.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.errors import OperatorError
from repro.geometry.geometry import Coord, Geometry, GeometryType
from repro.geometry.segments import (
    EPSILON,
    on_segment,
    orientation,
    segments_intersect,
)

__all__ = [
    "intersects",
    "contains",
    "inside",
    "touches",
    "equals",
    "disjoint",
    "relate",
    "INTERACTION_MASKS",
]


# ----------------------------------------------------------------------
# intersects
# ----------------------------------------------------------------------
def intersects(g1: Geometry, g2: Geometry) -> bool:
    """True if the two geometries share at least one point (ANYINTERACT)."""
    if not g1.mbr.intersects(g2.mbr):
        return False
    for a in g1.simple_parts():
        for b in g2.simple_parts():
            if a.mbr.intersects(b.mbr) and _simple_intersects(a, b):
                return True
    return False


def _simple_intersects(a: Geometry, b: Geometry) -> bool:
    ta, tb = a.geom_type, b.geom_type
    # Normalise so the "smaller" type comes first: POINT < LINESTRING < POLYGON
    order = {GeometryType.POINT: 0, GeometryType.LINESTRING: 1, GeometryType.POLYGON: 2}
    if order[ta] > order[tb]:
        a, b = b, a
        ta, tb = tb, ta

    if ta is GeometryType.POINT:
        x, y = a.coords[0]
        return b.contains_point(x, y)

    if ta is GeometryType.LINESTRING and tb is GeometryType.LINESTRING:
        return _chains_intersect(a.coords, b.coords)

    if ta is GeometryType.LINESTRING:  # line vs polygon
        # Any boundary crossing, or the whole line inside the polygon.
        for s1, s2 in _chain_edges(a.coords):
            for e1, e2 in b.boundary_edges():
                if segments_intersect(s1, s2, e1, e2):
                    return True
        x, y = a.coords[0]
        return b.contains_point(x, y)

    # polygon vs polygon: boundary crossing, or one contains the other.
    for s1, s2 in a.boundary_edges():
        for e1, e2 in b.boundary_edges():
            if segments_intersect(s1, s2, e1, e2):
                return True
    ax, ay = a.exterior.coords[0]  # type: ignore[union-attr]
    if b.contains_point(ax, ay):
        return True
    bx, by = b.exterior.coords[0]  # type: ignore[union-attr]
    return a.contains_point(bx, by)


def _chain_edges(coords: Tuple[Coord, ...]):
    for i in range(len(coords) - 1):
        yield coords[i], coords[i + 1]


def _chains_intersect(c1: Tuple[Coord, ...], c2: Tuple[Coord, ...]) -> bool:
    for s1, s2 in _chain_edges(c1):
        for e1, e2 in _chain_edges(c2):
            if segments_intersect(s1, s2, e1, e2):
                return True
    return False


# ----------------------------------------------------------------------
# containment
# ----------------------------------------------------------------------
def contains(g1: Geometry, g2: Geometry) -> bool:
    """True if ``g1`` covers every point of ``g2``.

    This matches ``COVERS``-style semantics (boundary contact allowed); it
    is the containment notion the spatial index operators need.  Exact for
    valid simple-feature inputs: every vertex of ``g2`` must lie on/inside
    ``g1`` and no edge of ``g2`` may properly cross a boundary edge of
    ``g1`` or enter one of its holes.
    """
    if not g1.mbr.contains(g2.mbr):
        return False
    for part in g2.simple_parts():
        if not _covered_by_geometry(part, g1):
            return False
    return True


def inside(g1: Geometry, g2: Geometry) -> bool:
    """True if ``g1`` lies within ``g2`` (the converse of :func:`contains`)."""
    return contains(g2, g1)


def _covered_by_geometry(small: Geometry, big: Geometry) -> bool:
    # Every vertex of the small geometry must be on/in the big one.
    for x, y in small.vertices():
        if not big.contains_point(x, y):
            return False
    # No edge of the small geometry may properly cross the big boundary
    # (a crossing would put part of the edge outside or inside a hole).
    for s1, s2 in small.boundary_edges():
        for e1, e2 in big.boundary_edges():
            if _proper_crossing(s1, s2, e1, e2):
                return False
        # Edge midpoints guard against edges that pass through holes whose
        # boundary they do not touch.
        mid = ((s1[0] + s2[0]) / 2.0, (s1[1] + s2[1]) / 2.0)
        if not big.contains_point(*mid):
            return False
    if small.geom_type is GeometryType.POINT and small.coords:
        x, y = small.coords[0]
        return big.contains_point(x, y)
    return True


def _proper_crossing(a: Coord, b: Coord, c: Coord, d: Coord) -> bool:
    """True only for a transversal crossing (not a touch or shared point)."""
    o1 = orientation(a, b, c)
    o2 = orientation(a, b, d)
    o3 = orientation(c, d, a)
    o4 = orientation(c, d, b)
    return o1 != o2 and o3 != o4 and 0 not in (o1, o2, o3, o4)


# ----------------------------------------------------------------------
# touches / equals / disjoint
# ----------------------------------------------------------------------
def touches(g1: Geometry, g2: Geometry) -> bool:
    """True if the geometries meet only at their boundaries.

    Pragmatic implementation for valid inputs: they must intersect, no
    boundary edges may properly cross, and no vertex of either may be
    strictly interior to the other.
    """
    if not intersects(g1, g2):
        return False
    for s1, s2 in g1.boundary_edges():
        for e1, e2 in g2.boundary_edges():
            if _proper_crossing(s1, s2, e1, e2):
                return False
    if _any_vertex_strictly_inside(g1, g2) or _any_vertex_strictly_inside(g2, g1):
        return False
    # Two overlapping-but-vertex-disjoint polygons would have crossing
    # edges, so reaching here means boundary-only contact.
    return True


def _any_vertex_strictly_inside(g: Geometry, container: Geometry) -> bool:
    for x, y in g.vertices():
        if container.contains_point(x, y) and not _on_boundary(container, x, y):
            return True
    return False


def _on_boundary(g: Geometry, x: float, y: float) -> bool:
    p = (x, y)
    for a, b in g.boundary_edges():
        if on_segment(p, a, b):
            return True
    # Point geometries have no edges; compare directly (squared, matching
    # Geometry.contains_point and the vectorized kernels).
    for part in g.simple_parts():
        if part.geom_type is GeometryType.POINT:
            px, py = part.coords[0]
            dx, dy = px - x, py - y
            if dx * dx + dy * dy <= EPSILON * EPSILON:
                return True
    return False


def equals(g1: Geometry, g2: Geometry) -> bool:
    """Spatial equality: mutual coverage (robust to vertex order/rotation)."""
    if g1.mbr != g2.mbr and not (
        g1.mbr.contains(g2.mbr) and g2.mbr.contains(g1.mbr)
    ):
        return False
    return contains(g1, g2) and contains(g2, g1)


def disjoint(g1: Geometry, g2: Geometry) -> bool:
    """True when the geometries share no point (the negation of intersects)."""
    return not intersects(g1, g2)


# ----------------------------------------------------------------------
# sdo_relate-style mask dispatch
# ----------------------------------------------------------------------
INTERACTION_MASKS: Dict[str, Callable[[Geometry, Geometry], bool]] = {
    "ANYINTERACT": intersects,
    "INTERSECT": intersects,
    "CONTAINS": contains,
    "COVERS": contains,
    "INSIDE": inside,
    "COVEREDBY": inside,
    "TOUCH": touches,
    "EQUAL": equals,
    "DISJOINT": disjoint,
}


def relate(g1: Geometry, g2: Geometry, mask: str) -> bool:
    """Evaluate an Oracle-style interaction mask between two geometries.

    ``mask`` may be a ``+``-separated union of mask names, in which case the
    result is true when any member mask holds, mirroring ``sdo_relate``.
    """
    result = False
    for name in mask.upper().split("+"):
        name = name.strip()
        try:
            fn = INTERACTION_MASKS[name]
        except KeyError:
            raise OperatorError(f"unknown interaction mask: {name!r}") from None
        result = result or fn(g1, g2)
    return result
