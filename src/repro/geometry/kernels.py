"""Vectorized batch geometry kernels (the data-parallel secondary filter).

The paper's two-stage query pipeline bottoms out in exact geometry tests:
the secondary filter of the spatial join (§4.2) and tile classification
during tessellation (§5).  This module evaluates those tests over *batches*
— many candidate geometries against one probe, many tiles against one
geometry, all edge pairs of two chains at once — using numpy, with a pure
Python fallback so environments without numpy (and CI parity jobs) run the
same code paths.

Backend selection
-----------------
The active backend is chosen by, in order of precedence:

1. ``set_backend("numpy" | "python")`` / the ``use_backend()`` context
   manager;
2. the ``REPRO_KERNELS`` environment variable at import time;
3. autodetection (numpy if importable, else python).

Bit-identical results
---------------------
Both backends are required to return *identical* results, not merely
approximately equal ones.  The python backend simply delegates to the
scalar predicates in :mod:`repro.geometry.predicates`,
:mod:`repro.geometry.segments` and :mod:`repro.geometry.distance`.  The
numpy backend replicates the scalar code's floating-point operations in
the same order (same subtractions, same products, same tolerance scaling),
so every comparison resolves the same way down to the last ULP.  Two
library-wide conventions make this practical:

* all distance comparisons happen in *squared* space (``math.hypot`` and
  ``np.hypot`` may differ by one ULP; ``dx*dx + dy*dy`` cannot);
* the epsilon-scaled orientation test is a fixed expression shared by
  ``segments.orientation`` and :func:`_orient_arr` below.

The parity suite (``tests/geometry/test_kernels_parity.py``) enforces the
contract over randomized and adversarially degenerate inputs.
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import GeometryError
from repro.geometry.distance import within_distance
from repro.geometry.geometry import Geometry, GeometryType, Ring
from repro.geometry.predicates import contains, intersects, touches
from repro.geometry.segments import (
    EPSILON,
    segment_segment_distance,
    segments_intersect,
)

try:  # numpy is an optional accelerator, never a hard requirement
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    np = None  # type: ignore[assignment]

__all__ = [
    "available_backends",
    "get_backend",
    "set_backend",
    "use_backend",
    "counters",
    "reset_counters",
    "mbr_intersects_batch",
    "mbr_filter_indices",
    "tile_ranges_batch",
    "segments_intersect_batch",
    "pairwise_segment_distance_batch",
    "points_in_polygon_batch",
    "intersects_batch",
    "contains_batch",
    "touches_batch",
    "within_distance_batch",
    "distance_batch",
    "evaluate_predicate_batch",
    "classify_tiles",
    "TILE_OUTSIDE_MBR",
    "TILE_OUTSIDE",
    "TILE_BOUNDARY",
    "TILE_INTERIOR",
]

# Below this (frontier size × vertex count) product, classify_tiles routes
# through the scalar path even on the numpy backend: array dispatch costs
# more than the handful of tuple tests it would replace.
_SCALAR_TILE_CUTOFF = 64

# Tile classification codes returned by :func:`classify_tiles`.
TILE_OUTSIDE_MBR = 0  # quadrant does not even meet the geometry's MBR
TILE_OUTSIDE = 1  # meets the MBR but not the geometry
TILE_BOUNDARY = 2  # intersects the geometry boundary
TILE_INTERIOR = 3  # wholly inside a polygonal geometry

# Cap on the element count of any intermediate (n, m) pair matrix; larger
# batches are processed in row chunks so peak memory stays bounded
# (~8 MB per float64 temporary at this setting).
_CHUNK_ELEMS = 1 << 20

_BACKENDS = ("numpy", "python")


def _resolve_backend(name: str) -> str:
    name = name.strip().lower()
    if name not in _BACKENDS:
        raise GeometryError(
            f"unknown kernels backend {name!r}; expected one of {_BACKENDS}"
        )
    if name == "numpy" and np is None:
        raise GeometryError("kernels backend 'numpy' requested but numpy is not importable")
    return name


def _initial_backend() -> str:
    env = os.environ.get("REPRO_KERNELS", "").strip()
    if env:
        return _resolve_backend(env)
    return "numpy" if np is not None else "python"


_active_backend = _initial_backend()


def available_backends() -> Tuple[str, ...]:
    """Backends usable in this environment."""
    return _BACKENDS if np is not None else ("python",)


def get_backend() -> str:
    """Name of the active kernels backend (``"numpy"`` or ``"python"``)."""
    return _active_backend


def set_backend(name: str) -> None:
    """Select the kernels backend for the whole process."""
    global _active_backend
    _active_backend = _resolve_backend(name)


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Temporarily switch backend (used by tests and the ablation bench)."""
    previous = _active_backend
    set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


# ----------------------------------------------------------------------
# Kernel call counters (exposed by the server's ``metrics`` op)
# ----------------------------------------------------------------------
_counters: Dict[str, Dict[str, int]] = {"calls": {}, "items": {}}


def _count(entry: str, items: int) -> None:
    calls = _counters["calls"]
    calls[entry] = calls.get(entry, 0) + 1
    tally = _counters["items"]
    tally[entry] = tally.get(entry, 0) + int(items)


def counters() -> Dict[str, Any]:
    """Per-entry-point call and item tallies for the active process.

    ``calls`` counts invocations of each batch entry point; ``items``
    counts the elements those invocations processed, so
    ``items / calls`` is the mean batch width a backend actually saw.
    """
    return {
        "backend": get_backend(),
        "calls": dict(_counters["calls"]),
        "items": dict(_counters["items"]),
    }


def reset_counters() -> None:
    """Zero the kernel counters (tests and per-run benchmarks)."""
    _counters["calls"].clear()
    _counters["items"].clear()


# ======================================================================
# MBR kernels
# ======================================================================
def mbr_intersects_batch(
    min_xs: Sequence[float],
    min_ys: Sequence[float],
    max_xs: Sequence[float],
    max_ys: Sequence[float],
    box: Tuple[float, float, float, float],
    distance: float = 0.0,
) -> List[bool]:
    """Closed-interval MBR-vs-window tests over parallel coordinate arrays.

    ``box`` is ``(lo_x, lo_y, hi_x, hi_y)``.  With ``distance > 0`` the test
    becomes the gap-form within-distance filter used by the join's primary
    filter: an entry survives when no axis gap exceeds ``distance``.
    """
    lo_x, lo_y, hi_x, hi_y = box
    d = distance
    _count("mbr_intersects_batch", len(min_xs))
    if _active_backend == "python" or np is None:
        return [
            not (
                lo_x - max_xs[i] > d
                or min_xs[i] - hi_x > d
                or lo_y - max_ys[i] > d
                or min_ys[i] - hi_y > d
            )
            for i in range(len(min_xs))
        ]
    x0, y0, x1, y1 = (_as_f64(a) for a in (min_xs, min_ys, max_xs, max_ys))
    keep = (
        (lo_x - x1 <= d) & (x0 - hi_x <= d) & (lo_y - y1 <= d) & (y0 - hi_y <= d)
    )
    return keep.tolist()


def mbr_filter_indices(
    coords: Tuple[Sequence[float], Sequence[float], Sequence[float], Sequence[float]],
    box: Tuple[float, float, float, float],
    distance: float = 0.0,
    exact: bool = False,
) -> List[int]:
    """Indices of entries whose MBR passes the window / within-distance test.

    ``coords`` is the flat ``(min_xs, min_ys, max_xs, max_ys)`` layout that
    R-tree nodes expose via ``coords()``.  ``exact=True`` additionally
    applies the corner-distance refinement (squared, matching the scalar
    sweep in :mod:`repro.index.rtree.join`): the axis-gap test alone admits
    rectangles whose corner distance exceeds ``distance``.
    """
    x0s, y0s, x1s, y1s = coords
    lo_x, lo_y, hi_x, hi_y = box
    d = distance
    _count("mbr_filter_indices", len(x0s))
    if _active_backend == "python" or np is None:
        out = []
        d2 = d * d
        for i in range(len(x0s)):
            gx_lo = lo_x - x1s[i]
            gx_hi = x0s[i] - hi_x
            gy_lo = lo_y - y1s[i]
            gy_hi = y0s[i] - hi_y
            if gx_lo > d or gx_hi > d or gy_lo > d or gy_hi > d:
                continue
            if exact and d > 0.0:
                dx = max(gx_lo, gx_hi, 0.0)
                dy = max(gy_lo, gy_hi, 0.0)
                if dx * dx + dy * dy > d2:
                    continue
            out.append(i)
        return out
    x0, y0, x1, y1 = (_as_f64(a) for a in (x0s, y0s, x1s, y1s))
    gx_lo = lo_x - x1
    gx_hi = x0 - hi_x
    gy_lo = lo_y - y1
    gy_hi = y0 - hi_y
    keep = (gx_lo <= d) & (gx_hi <= d) & (gy_lo <= d) & (gy_hi <= d)
    if exact and d > 0.0:
        dx = np.maximum(np.maximum(gx_lo, gx_hi), 0.0)
        dy = np.maximum(np.maximum(gy_lo, gy_hi), 0.0)
        keep &= dx * dx + dy * dy <= d * d
    return np.nonzero(keep)[0].tolist()


def _as_f64(seq):
    """Zero-copy float64 view where possible (ndarray / array('d'))."""
    if isinstance(seq, np.ndarray):
        return seq if seq.dtype == np.float64 else seq.astype(np.float64)
    try:
        return np.frombuffer(seq, dtype=np.float64)  # array('d') fast path
    except (TypeError, ValueError, AttributeError):
        return np.asarray(seq, dtype=np.float64)


def tile_ranges_batch(
    coords: Tuple[Sequence[float], Sequence[float], Sequence[float], Sequence[float]],
    origin: Tuple[float, float],
    tile_size: Tuple[float, float],
    shape: Tuple[int, int],
    expand: float = 0.0,
) -> Tuple[List[int], List[int], List[int], List[int]]:
    """Bin MBRs into uniform-grid tile index ranges (grid-join assignment).

    ``coords`` is the flat ``(min_xs, min_ys, max_xs, max_ys)`` layout; the
    grid starts at ``origin`` with ``tile_size = (width, height)`` tiles in
    an ``shape = (nx, ny)`` arrangement.  Each MBR — optionally expanded by
    ``expand`` on every side, the within-distance slack — maps to the
    inclusive index ranges ``ix0..ix1`` / ``iy0..iy1`` of the tiles it
    overlaps, clamped to the grid.  Returned as four parallel int lists.

    Both backends floor the same float64 expression ``(v - origin) / size``
    so the integer bins are bit-identical, and downstream duplicate
    avoidance (which compares only these integers) never faces an epsilon:
    an MBR edge exactly on a tile boundary lands in the same bin on every
    backend and for every entry sharing that coordinate.
    """
    x0s, y0s, x1s, y1s = coords
    gx, gy = origin
    tw, th = tile_size
    nx, ny = shape
    n = len(x0s)
    _count("tile_ranges_batch", n)
    if _active_backend == "python" or np is None:
        ix0: List[int] = [0] * n
        ix1: List[int] = [0] * n
        iy0: List[int] = [0] * n
        iy1: List[int] = [0] * n
        for i in range(n):
            ix0[i] = min(max(math.floor((x0s[i] - expand - gx) / tw), 0), nx - 1)
            ix1[i] = min(max(math.floor((x1s[i] + expand - gx) / tw), 0), nx - 1)
            iy0[i] = min(max(math.floor((y0s[i] - expand - gy) / th), 0), ny - 1)
            iy1[i] = min(max(math.floor((y1s[i] + expand - gy) / th), 0), ny - 1)
        return ix0, ix1, iy0, iy1
    x0, y0, x1, y1 = (_as_f64(a) for a in (x0s, y0s, x1s, y1s))
    ix0a = np.clip(np.floor((x0 - expand - gx) / tw), 0, nx - 1).astype(np.intp)
    ix1a = np.clip(np.floor((x1 + expand - gx) / tw), 0, nx - 1).astype(np.intp)
    iy0a = np.clip(np.floor((y0 - expand - gy) / th), 0, ny - 1).astype(np.intp)
    iy1a = np.clip(np.floor((y1 + expand - gy) / th), 0, ny - 1).astype(np.intp)
    return ix0a.tolist(), ix1a.tolist(), iy0a.tolist(), iy1a.tolist()


# ======================================================================
# Segment-pair kernels
# ======================================================================
def segments_intersect_batch(edges_a, edges_b) -> List[List[bool]]:
    """All-pairs closed-segment intersection matrix.

    ``edges_a`` / ``edges_b`` are ``(n, 4)`` / ``(m, 4)`` row arrays of
    ``(x1, y1, x2, y2)``; returns an ``n x m`` nested list of booleans.
    """
    if _active_backend == "python" or np is None:
        return [
            [
                segments_intersect((r[0], r[1]), (r[2], r[3]), (s[0], s[1]), (s[2], s[3]))
                for s in edges_b
            ]
            for r in edges_a
        ]
    ea = np.asarray(edges_a, dtype=np.float64).reshape(-1, 4)
    eb = np.asarray(edges_b, dtype=np.float64).reshape(-1, 4)
    out = np.zeros((len(ea), len(eb)), dtype=bool)
    for sl in _row_chunks(len(ea), len(eb)):
        out[sl] = _intersect_matrix(ea[sl], eb)
    return out.tolist()


def pairwise_segment_distance_batch(edges_a, edges_b) -> List[List[float]]:
    """All-pairs minimum distances between two edge sets (``n x m``)."""
    if _active_backend == "python" or np is None:
        return [
            [
                segment_segment_distance(
                    (r[0], r[1]), (r[2], r[3]), (s[0], s[1]), (s[2], s[3])
                )
                for s in edges_b
            ]
            for r in edges_a
        ]
    ea = np.asarray(edges_a, dtype=np.float64).reshape(-1, 4)
    eb = np.asarray(edges_b, dtype=np.float64).reshape(-1, 4)
    out = np.zeros((len(ea), len(eb)), dtype=np.float64)
    for sl in _row_chunks(len(ea), len(eb)):
        out[sl] = np.sqrt(_seg_distance_sq_matrix(ea[sl], eb))
    return out.tolist()


def _row_chunks(n: int, m: int):
    """Slices over the rows of an (n, m) pair matrix, bounded by _CHUNK_ELEMS."""
    if n == 0:
        return
    step = max(1, _CHUNK_ELEMS // max(m, 1))
    for start in range(0, n, step):
        yield slice(start, min(start + step, n))


def _orient_arr(px, py, qx, qy, rx, ry):
    """Vectorized ``segments.orientation``: identical cross/tolerance math."""
    dqx, dqy = qx - px, qy - py
    drx, dry = rx - px, ry - py
    cross = dqx * dry - dqy * drx
    scale = np.abs(dqx) + np.abs(dqy) + np.abs(drx) + np.abs(dry)
    tol = EPSILON * np.maximum(scale, 1.0)
    return (cross > tol).astype(np.int8) - (cross < -tol).astype(np.int8)


def _bounds_arr(px, py, ax, ay, bx, by):
    """Bounding-box incidence (the non-orientation half of ``on_segment``)."""
    return (
        (np.minimum(ax, bx) - EPSILON <= px)
        & (px <= np.maximum(ax, bx) + EPSILON)
        & (np.minimum(ay, by) - EPSILON <= py)
        & (py <= np.maximum(ay, by) + EPSILON)
    )


def _pair_orients_cols(ea, cx, cy, dx, dy):
    """Orientation matrices of ``ea`` rows vs column arrays ``(cx..dy)``.

    ``ea`` rows broadcast down columns ``(n, 1)``; the ``eb`` operands are
    already split into flat ``(m,)`` arrays.
    """
    ax, ay, bx, by = (ea[:, k : k + 1] for k in range(4))
    o1 = _orient_arr(ax, ay, bx, by, cx, cy)
    o2 = _orient_arr(ax, ay, bx, by, dx, dy)
    o3 = _orient_arr(cx, cy, dx, dy, ax, ay)
    o4 = _orient_arr(cx, cy, dx, dy, bx, by)
    return (ax, ay, bx, by), (o1, o2, o3, o4)


def _pair_orients(ea, eb):
    """Broadcast edge-pair operands and the four orientation matrices."""
    cx, cy, dx, dy = (eb[:, k] for k in range(4))
    (ax, ay, bx, by), orients = _pair_orients_cols(ea, cx, cy, dx, dy)
    return (ax, ay, bx, by, cx, cy, dx, dy), orients


def _orient_signs(bqx, bqy, b_abs, drx, dry):
    """Strictly-positive / strictly-negative orientation masks against a
    shared base vector (``dq`` and ``|dqx| + |dqy|`` hoisted by the caller).

    Same cross and tolerance floats as ``_orient_arr`` — the scale sum
    keeps its left-to-right association — but the sign lands in two bool
    masks, skipping the int8 materialization on the hot path.
    """
    cross = bqx * dry - bqy * drx
    scale = b_abs + np.abs(drx) + np.abs(dry)
    tol = EPSILON * np.maximum(scale, 1.0)
    return cross > tol, cross < -tol


def _intersect_matrix_cols(ea, cx, cy, dx, dy, cd_pre=None):
    """Vectorized ``segments_intersect`` of ``ea`` rows vs edge columns.

    The four orientations share their base-vector differences and abs
    sums (``o1``/``o2`` sit on edge ``ab``, ``o3``/``o4`` on ``cd``), and
    signs stay as bool-mask pairs: ``o_i != o_j`` becomes a pair of mask
    comparisons, ``o_i == 0`` becomes neither-mask.  Kernel-call count is
    what dominates on small per-run matrices, so every fused op counts.
    """
    ax, ay, bx, by = (ea[:, k : k + 1] for k in range(4))
    abx, aby = bx - ax, by - ay
    ab_abs = np.abs(abx) + np.abs(aby)
    p1, n1 = _orient_signs(abx, aby, ab_abs, cx - ax, cy - ay)
    p2, n2 = _orient_signs(abx, aby, ab_abs, dx - ax, dy - ay)
    if cd_pre is None:
        cdx, cdy = dx - cx, dy - cy
        cd_abs = np.abs(cdx) + np.abs(cdy)
    else:  # hoisted by callers that reuse one edge soup across chunks
        cdx, cdy, cd_abs = cd_pre
    p3, n3 = _orient_signs(cdx, cdy, cd_abs, ax - cx, ay - cy)
    p4, n4 = _orient_signs(cdx, cdy, cd_abs, bx - cx, by - cy)
    hit = ((p1 != p2) | (n1 != n2)) & ((p3 != p4) | (n3 != n4))
    # The collinear/bounds terms only matter where some orientation is
    # exactly zero.  Zeros are sparse but not rare — a self-join's identity
    # pair and any shared border produce them in every batch — so the four
    # bounds tests run on the gathered zero entries, not the full matrix.
    nz = (p1 | n1) & (p2 | n2) & (p3 | n3) & (p4 | n4)
    if not nz.all():
        zi, zj = np.nonzero(~nz)
        axz, ayz = ax[zi, 0], ay[zi, 0]
        bxz, byz = bx[zi, 0], by[zi, 0]
        cxz, cyz = cx[zj], cy[zj]
        dxz, dyz = dx[zj], dy[zj]
        hz = hit[zi, zj]
        hz |= ~(p1[zi, zj] | n1[zi, zj]) & _bounds_arr(cxz, cyz, axz, ayz, bxz, byz)
        hz |= ~(p2[zi, zj] | n2[zi, zj]) & _bounds_arr(dxz, dyz, axz, ayz, bxz, byz)
        hz |= ~(p3[zi, zj] | n3[zi, zj]) & _bounds_arr(axz, ayz, cxz, cyz, dxz, dyz)
        hz |= ~(p4[zi, zj] | n4[zi, zj]) & _bounds_arr(bxz, byz, cxz, cyz, dxz, dyz)
        hit[zi, zj] = hz
    return hit


def _intersect_matrix(ea, eb):
    """Vectorized ``segments_intersect`` over all edge pairs."""
    return _intersect_matrix_cols(ea, eb[:, 0], eb[:, 1], eb[:, 2], eb[:, 3])


def _proper_matrix(ea, eb):
    """Vectorized ``predicates._proper_crossing`` (transversal crossings only)."""
    _, (o1, o2, o3, o4) = _pair_orients(ea, eb)
    return (
        (o1 != o2)
        & (o3 != o4)
        & (o1 != 0)
        & (o2 != 0)
        & (o3 != 0)
        & (o4 != 0)
    )


def _cross_any(ea, eb) -> bool:
    """True if any edge of ``ea`` intersects any edge of ``eb`` (chunked)."""
    if len(ea) == 0 or len(eb) == 0:
        return False
    for sl in _row_chunks(len(ea), len(eb)):
        if bool(_intersect_matrix(ea[sl], eb).any()):
            return True
    return False


def _proper_any(ea, eb) -> bool:
    if len(ea) == 0 or len(eb) == 0:
        return False
    for sl in _row_chunks(len(ea), len(eb)):
        if bool(_proper_matrix(ea[sl], eb).any()):
            return True
    return False


def _point_segment_dist_sq_arr(px, py, ax, ay, bx, by):
    """Vectorized ``segments.point_segment_distance_sq`` (same op order)."""
    ab_x, ab_y = bx - ax, by - ay
    ap_x, ap_y = px - ax, py - ay
    denom = ab_x * ab_x + ab_y * ab_y
    with np.errstate(divide="ignore", invalid="ignore"):
        t = (ap_x * ab_x + ap_y * ab_y) / denom
    t = np.maximum(0.0, np.minimum(1.0, t))
    dx = px - (ax + t * ab_x)
    dy = py - (ay + t * ab_y)
    d = dx * dx + dy * dy
    return np.where(denom == 0.0, ap_x * ap_x + ap_y * ap_y, d)


def _seg_distance_sq_matrix_cols(ea, cx, cy, dx, dy):
    """Vectorized ``segment_segment_distance_sq`` vs edge columns."""
    hit = _intersect_matrix_cols(ea, cx, cy, dx, dy)
    ax, ay, bx, by = (ea[:, k : k + 1] for k in range(4))
    d = np.minimum(
        np.minimum(
            _point_segment_dist_sq_arr(ax, ay, cx, cy, dx, dy),
            _point_segment_dist_sq_arr(bx, by, cx, cy, dx, dy),
        ),
        np.minimum(
            _point_segment_dist_sq_arr(cx, cy, ax, ay, bx, by),
            _point_segment_dist_sq_arr(dx, dy, ax, ay, bx, by),
        ),
    )
    return np.where(hit, 0.0, d)


def _seg_distance_sq_matrix(ea, eb):
    """Vectorized ``segments.segment_segment_distance_sq`` over all pairs."""
    return _seg_distance_sq_matrix_cols(ea, eb[:, 0], eb[:, 1], eb[:, 2], eb[:, 3])


def _min_seg_distance_sq(ea, eb) -> float:
    """Minimum squared distance over all edge pairs (chunked reduce)."""
    best = float("inf")
    for sl in _row_chunks(len(ea), len(eb)):
        m = float(_seg_distance_sq_matrix(ea[sl], eb).min())
        if m < best:
            best = m
            if best == 0.0:
                return best
    return best


# ======================================================================
# Point-location kernels
# ======================================================================
def points_in_polygon_batch(points, geom: Geometry) -> List[bool]:
    """Batch ``geom.contains_point`` over ``points`` (sequence of ``(x, y)``).

    This is the vectorized crossing-number test: one call classifies every
    point against every ring of ``geom`` (boundary counts as inside, holes
    punch out their strict interior), matching ``Geometry.contains_point``
    bit for bit.
    """
    if _active_backend == "python" or np is None:
        return [geom.contains_point(x, y) for x, y in points]
    pts = np.asarray(points, dtype=np.float64).reshape(-1, 2)
    res = _geometry_contains_points(geom, pts[:, 0], pts[:, 1])
    return res.tolist()


def _points_on_edges(px, py, edges) -> "np.ndarray":
    """Per-point: does the point lie on any of ``edges``?  (on_segment batch)"""
    out = np.zeros(px.shape[0], dtype=bool)
    if len(edges) == 0:
        return out
    pxc, pyc = px[:, None], py[:, None]
    ax, ay, bx, by = (edges[:, k] for k in range(4))
    for sl in _row_chunks(px.shape[0], len(edges)):
        o = _orient_arr(ax, ay, bx, by, pxc[sl], pyc[sl])
        hit = (o == 0) & _bounds_arr(pxc[sl], pyc[sl], ax, ay, bx, by)
        out[sl] = hit.any(axis=1)
    return out


def _shift_back(a):
    """``np.roll(a, -1)`` without its axis-normalization overhead."""
    out = np.empty_like(a)
    out[:-1] = a[1:]
    out[-1] = a[0]
    return out


def _shift_fwd(a):
    """``np.roll(a, 1)`` without its axis-normalization overhead."""
    out = np.empty_like(a)
    out[1:] = a[:-1]
    out[0] = a[-1]
    return out


def _ring_edge_arrays(ring: Ring):
    c = ring.coords_array()
    ax, ay = c[:, 0], c[:, 1]
    bx, by = _shift_back(ax), _shift_back(ay)
    return np.stack([ax, ay, bx, by], axis=1)


def _ring_boundary_points(ring: Ring, px, py) -> "np.ndarray":
    """Batch ``geometry._on_ring_boundary``."""
    return _points_on_edges(px, py, _ring_edge_arrays(ring))


def _ring_contains_points(ring: Ring, px, py) -> "np.ndarray":
    """Batch ``Ring.contains_point``: MBR gate, boundary pre-check, ray cast."""
    n_pts = px.shape[0]
    res = np.zeros(n_pts, dtype=bool)
    m = ring.mbr
    sel = (m.min_x <= px) & (px <= m.max_x) & (m.min_y <= py) & (py <= m.max_y)
    idx = np.nonzero(sel)[0]
    if idx.size == 0:
        return res
    c = ring.coords_array()
    n = len(c)
    xi, yi = c[:, 0], c[:, 1]
    # The scalar loop pairs vertex i with its predecessor j = i - 1 (mod n);
    # edges run i -> i+1 (mod n).
    xj, yj = _shift_fwd(xi), _shift_fwd(yi)
    bx, by = _shift_back(xi), _shift_back(yi)
    dqx, dqy = bx - xi, by - yi
    dq_abs = np.abs(dqx) + np.abs(dqy)
    step = max(1, _CHUNK_ELEMS // max(n, 1))
    for start in range(0, idx.size, step):
        sub = idx[start : start + step]
        sx, sy = px[sub][:, None], py[sub][:, None]
        # Boundary pre-check; the bounds tests run only on the (sparse)
        # entries whose orientation is exactly zero.
        pos, neg = _orient_signs(dqx, dqy, dq_abs, sx - xi, sy - yi)
        nz = pos | neg
        on_bnd = np.zeros(sub.size, dtype=bool)
        if not nz.all():
            zi, zj = np.nonzero(~nz)
            ob = _bounds_arr(sx[zi, 0], sy[zi, 0], xi[zj], yi[zj], bx[zj], by[zj])
            on_bnd[zi[ob]] = True
        cond = (yi > sy) != (yj > sy)
        with np.errstate(divide="ignore", invalid="ignore"):
            x_cross = (xj - xi) * (sy - yi) / (yj - yi) + xi
        crossings = (cond & (sx < x_cross)).sum(axis=1)
        inside = (crossings & 1).astype(bool)
        res[sub] = on_bnd | inside
    return res


def _part_contains_points(part: Geometry, px, py) -> "np.ndarray":
    """Batch point-in-primitive, replicating ``Geometry.contains_point``."""
    if part.geom_type is GeometryType.POINT:
        qx, qy = part.coords[0]
        dx, dy = qx - px, qy - py
        return dx * dx + dy * dy <= EPSILON * EPSILON
    if part.geom_type is GeometryType.LINESTRING:
        return _points_on_edges(px, py, part.edges_array())
    assert part.exterior is not None
    res = _ring_contains_points(part.exterior, px, py)
    for hole in part.holes:
        if not res.any():
            break
        strict = _ring_contains_points(hole, px, py) & ~_ring_boundary_points(
            hole, px, py
        )
        res &= ~strict
    return res


def _geometry_contains_points(geom: Geometry, px, py) -> "np.ndarray":
    """Batch ``Geometry.contains_point`` (OR over primitive parts)."""
    res = np.zeros(px.shape[0], dtype=bool)
    for part in geom.simple_parts():
        res |= _part_contains_points(part, px, py)
        if res.all():
            break
    return res


def _points_intersect_geometry(geom: Geometry, px, py) -> "np.ndarray":
    """Batch ``predicates.intersects(geom, POINT)``.

    Unlike ``contains_point`` this includes the per-part MBR gates the
    scalar ``intersects`` applies, which matter within EPSILON of a part's
    bounding box (and make point-vs-point contact an exact equality).
    """
    m = geom.mbr
    top = (m.min_x <= px) & (px <= m.max_x) & (m.min_y <= py) & (py <= m.max_y)
    res = np.zeros(px.shape[0], dtype=bool)
    for part in geom.simple_parts():
        pm = part.mbr
        gate = (pm.min_x <= px) & (px <= pm.max_x) & (pm.min_y <= py) & (py <= pm.max_y)
        if part.geom_type is GeometryType.POINT:
            qx, qy = part.coords[0]
            res |= (px == qx) & (py == qy)
        elif part.geom_type is GeometryType.LINESTRING:
            res |= gate & _points_on_edges(px, py, part.edges_array())
        else:
            res |= gate & _part_contains_points(part, px, py)
        if res.all():
            break
    return top & res


def _points_on_boundary(geom: Geometry, px, py) -> "np.ndarray":
    """Batch ``predicates._on_boundary``."""
    res = _points_on_edges(px, py, geom.edges_array())
    for part in geom.simple_parts():
        if part.geom_type is GeometryType.POINT:
            qx, qy = part.coords[0]
            dx, dy = qx - px, qy - py
            res |= dx * dx + dy * dy <= EPSILON * EPSILON
    return res


# ======================================================================
# Whole-geometry predicates (numpy implementations)
# ======================================================================
_TYPE_ORDER = {
    GeometryType.POINT: 0,
    GeometryType.LINESTRING: 1,
    GeometryType.POLYGON: 2,
}


def _intersects_np(g1: Geometry, g2: Geometry) -> bool:
    if not g1.mbr.intersects(g2.mbr):
        return False
    for a in g1.simple_parts():
        for b in g2.simple_parts():
            if a.mbr.intersects(b.mbr) and _simple_intersects_np(a, b):
                return True
    return False


def _simple_intersects_np(a: Geometry, b: Geometry) -> bool:
    if _TYPE_ORDER[a.geom_type] > _TYPE_ORDER[b.geom_type]:
        a, b = b, a
    ta, tb = a.geom_type, b.geom_type
    if ta is GeometryType.POINT:
        x, y = a.coords[0]
        return b.contains_point(x, y)
    if ta is GeometryType.LINESTRING and tb is GeometryType.LINESTRING:
        return _cross_any(a.edges_array(), b.edges_array())
    if ta is GeometryType.LINESTRING:  # line vs polygon
        if _cross_any(a.edges_array(), b.edges_array()):
            return True
        x, y = a.coords[0]
        return b.contains_point(x, y)
    # polygon vs polygon
    if _cross_any(a.edges_array(), b.edges_array()):
        return True
    ax, ay = a.exterior.coords[0]  # type: ignore[union-attr]
    if b.contains_point(ax, ay):
        return True
    bx, by = b.exterior.coords[0]  # type: ignore[union-attr]
    return a.contains_point(bx, by)


def _contains_np(g1: Geometry, g2: Geometry) -> bool:
    if not g1.mbr.contains(g2.mbr):
        return False
    for part in g2.simple_parts():
        if not _covered_by_np(part, g1):
            return False
    return True


def _covered_by_np(small: Geometry, big: Geometry) -> bool:
    verts = small.coords_array()
    if len(verts) and not bool(
        _geometry_contains_points(big, verts[:, 0], verts[:, 1]).all()
    ):
        return False
    edges = small.edges_array()
    if len(edges):
        if _proper_any(edges, big.edges_array()):
            return False
        mid_x = (edges[:, 0] + edges[:, 2]) / 2.0
        mid_y = (edges[:, 1] + edges[:, 3]) / 2.0
        if not bool(_geometry_contains_points(big, mid_x, mid_y).all()):
            return False
    if small.geom_type is GeometryType.POINT and small.coords:
        x, y = small.coords[0]
        return big.contains_point(x, y)
    return True


def _touches_np(g1: Geometry, g2: Geometry) -> bool:
    if not _intersects_np(g1, g2):
        return False
    if _proper_any(g1.edges_array(), g2.edges_array()):
        return False
    if _any_vertex_strictly_inside_np(g1, g2) or _any_vertex_strictly_inside_np(g2, g1):
        return False
    return True


def _any_vertex_strictly_inside_np(g: Geometry, container: Geometry) -> bool:
    verts = g.coords_array()
    if not len(verts):
        return False
    inside = _geometry_contains_points(container, verts[:, 0], verts[:, 1])
    idx = np.nonzero(inside)[0]
    if idx.size == 0:
        return False
    on_bnd = _points_on_boundary(container, verts[idx, 0], verts[idx, 1])
    return bool((~on_bnd).any())


def _distance_sq_np(g1: Geometry, g2: Geometry, stop_below_sq: float = 0.0) -> float:
    """Vectorized ``distance.distance_sq``; same pruning, full-matrix mins."""
    if g1.mbr.intersects(g2.mbr) and _intersects_np(g1, g2):
        return 0.0
    best = float("inf")
    for a in g1.simple_parts():
        for b in g2.simple_parts():
            if _mbr_distance_sq(a, b) >= best:
                continue
            d = _simple_distance_sq_np(a, b)
            if d < best:
                best = d
                if best <= stop_below_sq:
                    return best
    return best


def _mbr_distance_sq(a: Geometry, b: Geometry) -> float:
    ma, mb = a.mbr, b.mbr
    dx = max(mb.min_x - ma.max_x, ma.min_x - mb.max_x, 0.0)
    dy = max(mb.min_y - ma.max_y, ma.min_y - mb.max_y, 0.0)
    return dx * dx + dy * dy


def _simple_distance_sq_np(a: Geometry, b: Geometry) -> float:
    if _TYPE_ORDER[a.geom_type] > _TYPE_ORDER[b.geom_type]:
        a, b = b, a
    ta, tb = a.geom_type, b.geom_type
    if ta is GeometryType.POINT and tb is GeometryType.POINT:
        (x1, y1), (x2, y2) = a.coords[0], b.coords[0]
        dx, dy = x2 - x1, y2 - y1
        return dx * dx + dy * dy
    if ta is GeometryType.POINT:
        px, py = a.coords[0]
        e = b.edges_array()
        return float(
            _point_segment_dist_sq_arr(
                px, py, e[:, 0], e[:, 1], e[:, 2], e[:, 3]
            ).min()
        )
    return _min_seg_distance_sq(a.edges_array(), b.edges_array())


def _within_distance_np(g1: Geometry, g2: Geometry, dist: float) -> bool:
    if dist < 0:
        return False
    if not g1.mbr.expand(dist).intersects(g2.mbr):
        return False
    if dist == 0.0:
        return _intersects_np(g1, g2)
    d2 = dist * dist
    return _distance_sq_np(g1, g2, stop_below_sq=d2) <= d2


# ======================================================================
# Public batch predicates
# ======================================================================
def intersects_batch(g1: Geometry, geoms: Sequence[Geometry]) -> List[bool]:
    """Batch ``predicates.intersects(g1, g)`` over candidate geometries."""
    if _active_backend == "python" or np is None:
        return [intersects(g1, g) for g in geoms]
    pts = _all_points_array(geoms)
    if pts is not None:
        return _points_intersect_geometry(g1, pts[:, 0], pts[:, 1]).tolist()
    if _poly_probe(g1):
        out = _poly_batch_eval(g1, geoms, _poly_batch_intersects)
        if out is not None:
            return out
    return [_intersects_np(g1, g) for g in geoms]


def contains_batch(g1: Geometry, geoms: Sequence[Geometry]) -> List[bool]:
    """Batch ``predicates.contains(g1, g)``."""
    if _active_backend == "python" or np is None:
        return [contains(g1, g) for g in geoms]
    return [_contains_np(g1, g) for g in geoms]


def touches_batch(g1: Geometry, geoms: Sequence[Geometry]) -> List[bool]:
    """Batch ``predicates.touches(g1, g)``."""
    if _active_backend == "python" or np is None:
        return [touches(g1, g) for g in geoms]
    return [_touches_np(g1, g) for g in geoms]


def within_distance_batch(
    g1: Geometry, geoms: Sequence[Geometry], dist: float
) -> List[bool]:
    """Batch ``distance.within_distance(g1, g, dist)``."""
    if _active_backend == "python" or np is None:
        return [within_distance(g1, g, dist) for g in geoms]
    pts = _all_points_array(geoms)
    if pts is not None and dist > 0.0 and not _has_point_parts(g1):
        return _points_within_distance_np(g1, pts, dist)
    if dist > 0.0 and _poly_probe(g1):
        out = _poly_batch_eval(
            g1, geoms, lambda probe, pb: _poly_batch_within(probe, pb, dist)
        )
        if out is not None:
            return out
    return [_within_distance_np(g1, g, dist) for g in geoms]


def distance_batch(g1: Geometry, geoms: Sequence[Geometry]) -> List[float]:
    """Batch exact distances (rooted once, at this API boundary)."""
    if _active_backend == "python" or np is None:
        from repro.geometry.distance import distance

        return [distance(g1, g) for g in geoms]
    import math

    return [math.sqrt(_distance_sq_np(g1, g)) for g in geoms]


def _all_points_array(geoms: Sequence[Geometry]):
    """(n, 2) array when every candidate is a simple POINT, else None."""
    if not geoms:
        return None
    for g in geoms:
        if g.geom_type is not GeometryType.POINT:
            return None
    return np.asarray([g.coords[0] for g in geoms], dtype=np.float64).reshape(-1, 2)


def _has_point_parts(g: Geometry) -> bool:
    return any(p.geom_type is GeometryType.POINT for p in g.simple_parts())


def _points_within_distance_np(g1: Geometry, pts, dist: float) -> List[bool]:
    """within_distance of one edge-bearing geometry vs many points, batched."""
    px, py = pts[:, 0], pts[:, 1]
    exp = g1.mbr.expand(dist)
    gate = (exp.min_x <= px) & (px <= exp.max_x) & (exp.min_y <= py) & (py <= exp.max_y)
    inter = _points_intersect_geometry(g1, px, py)
    edges = g1.edges_array()
    best = np.full(px.shape[0], np.inf)
    ax, ay, bx, by = (edges[:, k] for k in range(4))
    for sl in _row_chunks(px.shape[0], len(edges)):
        d = _point_segment_dist_sq_arr(
            px[sl][:, None], py[sl][:, None], ax, ay, bx, by
        )
        best[sl] = d.min(axis=1)
    result = gate & (inter | (best <= dist * dist))
    return result.tolist()


# ----------------------------------------------------------------------
# Cross-candidate polygon fast path.
#
# Per-pair numpy evaluation pays its dispatch overhead once per candidate,
# which loses to the scalar engine on small polygons (a 20-vertex star
# costs more to wrap in arrays than to test in pure Python).  When a whole
# candidate batch consists of single-ring polygons — the shape of every
# secondary-filter run over the paper's workloads — the batch is instead
# concatenated into one edge soup with per-ring offsets, and every stage
# of the intersects / within-distance tests (edge crossings, both
# representative-point containments, edge-pair distances) runs as a single
# vectorized pass with per-candidate ``reduceat`` reductions.
# ----------------------------------------------------------------------
def _gather_poly_candidates(geoms: Sequence[Geometry]):
    """Concatenated ring arrays for an all-single-ring-polygon batch.

    Returns ``None`` when any candidate is not a hole-free simple polygon
    (the caller then uses the per-pair path).
    """
    edges = []
    append = edges.append
    poly = GeometryType.POLYGON
    for g in geoms:
        if g.geom_type is not poly or g.holes:
            return None
        e = g._edges_array
        append(e if e is not None else g.edges_array())
    counts = np.asarray([e.shape[0] for e in edges], dtype=np.intp)
    offsets = np.zeros(len(edges), dtype=np.intp)
    np.cumsum(counts[:-1], out=offsets[1:])
    # A hole-free polygon's cached edges array rows are exactly
    # ``(v_i, v_{i+1 mod n})`` over the exterior ring, so one concatenation
    # yields the vertex columns and the wrapped edge-end columns at once.
    vx, vy, ex, ey = np.ascontiguousarray(np.concatenate(edges, axis=0).T)
    last = offsets + counts - 1
    # Per-ring bounds; identical floats to each candidate's stored MBR.
    bx0 = np.minimum.reduceat(vx, offsets)
    by0 = np.minimum.reduceat(vy, offsets)
    bx1 = np.maximum.reduceat(vx, offsets)
    by1 = np.maximum.reduceat(vy, offsets)
    # Edge difference vectors and their abs sums, hoisted once per batch
    # for every orientation test against the soup.
    cdx, cdy = ex - vx, ey - vy
    cd_abs = np.abs(cdx) + np.abs(cdy)
    return (
        vx, vy, ex, ey, offsets, counts, last,
        bx0, by0, bx1, by1, (cdx, cdy, cd_abs),
    )


def _rings_contain_point(pb, px: float, py: float) -> "np.ndarray":
    """One point against every candidate ring (batch ``Ring.contains_point``)."""
    vx, vy, ex, ey, offsets, counts, last, bx0, by0, bx1, by1, cd_pre = pb
    gate = (bx0 <= px) & (px <= bx1) & (by0 <= py) & (py <= by1)
    cdx, cdy, cd_abs = cd_pre
    # Boundary pre-check; bounds tests only on the exactly-zero entries.
    pos, neg = _orient_signs(cdx, cdy, cd_abs, px - vx, py - vy)
    nz = pos | neg
    if nz.all():
        on_bnd = np.zeros(offsets.size, dtype=bool)
    else:
        zj = np.nonzero(~nz)[0]
        on_edge = ~nz
        on_edge[zj] = _bounds_arr(px, py, vx[zj], vy[zj], ex[zj], ey[zj])
        on_bnd = np.logical_or.reduceat(on_edge, offsets)
    # Ray cast pairs vertex i with its predecessor j = i - 1 (mod n).
    xj, yj = _shift_fwd(vx), _shift_fwd(vy)
    xj[offsets] = vx[last]
    yj[offsets] = vy[last]
    cond = (vy > py) != (yj > py)
    with np.errstate(divide="ignore", invalid="ignore"):
        x_cross = (xj - vx) * (py - vy) / (yj - vy) + vx
    crossings = np.add.reduceat(
        (cond & (px < x_cross)).astype(np.int64), offsets
    )
    return gate & (on_bnd | (crossings & 1).astype(bool))


def _poly_batch_intersects(g1: Geometry, pb) -> "np.ndarray":
    """Batch ``predicates.intersects`` of one polygon vs gathered candidates."""
    vx, vy, ex, ey, offsets, counts, last, bx0, by0, bx1, by1, cd_pre = pb
    m = g1.mbr
    gate = (m.min_x <= bx1) & (bx0 <= m.max_x) & (m.min_y <= by1) & (by0 <= m.max_y)
    ea = g1.edges_array()
    hit_edge = np.zeros(vx.shape[0], dtype=bool)
    for sl in _row_chunks(len(ea), vx.shape[0]):
        hit_edge |= _intersect_matrix_cols(
            ea[sl], vx, vy, ex, ey, cd_pre
        ).any(axis=0)
    hit = np.logical_or.reduceat(hit_edge, offsets)
    # Containment probes only run while some candidate is still undecided
    # (OR semantics make skipping them sound once everything hit).
    if not hit.all():
        # Candidate's first exterior vertex inside g1 ...
        hit |= _part_contains_points(g1, vx[offsets], vy[offsets])
        if not hit.all():
            # ... or g1's first exterior vertex inside the candidate.
            px, py = g1.exterior.coords[0]  # type: ignore[union-attr]
            hit |= _rings_contain_point(pb, px, py)
    return gate & hit


def _poly_batch_within(g1: Geometry, pb, dist: float) -> "np.ndarray":
    """Batch ``within_distance`` of one polygon vs gathered candidates."""
    vx, vy, ex, ey, offsets, counts, last, bx0, by0, bx1, by1, cd_pre = pb
    exp = g1.mbr.expand(dist)
    gate = (
        (exp.min_x <= bx1) & (bx0 <= exp.max_x)
        & (exp.min_y <= by1) & (by0 <= exp.max_y)
    )
    inter = _poly_batch_intersects(g1, pb)
    out = gate & inter
    # Edge-pair distances are only needed for gated candidates that do not
    # already intersect; compress the edge soup to those columns.
    need = gate & ~inter
    if not need.any():
        return out
    sub_counts = counts[need]
    edge_need = np.repeat(need, counts)
    svx, svy = vx[edge_need], vy[edge_need]
    sex, sey = ex[edge_need], ey[edge_need]
    sub_offsets = np.zeros(len(sub_counts), dtype=np.intp)
    np.cumsum(sub_counts[:-1], out=sub_offsets[1:])
    ea = g1.edges_array()
    dmin_edge = np.full(svx.shape[0], np.inf)
    for sl in _row_chunks(len(ea), svx.shape[0]):
        np.minimum(
            dmin_edge,
            _seg_distance_sq_matrix_cols(ea[sl], svx, svy, sex, sey).min(axis=0),
            out=dmin_edge,
        )
    dmin = np.minimum.reduceat(dmin_edge, sub_offsets)
    out[need] = dmin <= dist * dist
    return out


def _poly_probe(g1: Geometry) -> bool:
    """Is ``g1`` a simple polygon (the fast path's probe precondition)?"""
    return g1.geom_type is GeometryType.POLYGON


def _poly_batch_eval(g1, geoms, evaluator) -> Optional[List[bool]]:
    """Run a gathered-batch evaluator, fast-accepting identity candidates.

    A self-join's identity candidate (``g is g1``) always qualifies for
    the intersect and within-distance predicates, same as the scalar path
    concludes the long way round.  Excluding it from the edge soup also
    keeps exact-zero orientations rare, which the kernels' sparse
    collinear branches are sized for.  Returns ``None`` when the batch is
    not all hole-free polygons (caller falls back to the per-pair path).
    """
    sub = [g for g in geoms if g is not g1]
    if len(sub) == len(geoms):
        pb = _gather_poly_candidates(geoms)
        if pb is None:
            return None
        return evaluator(g1, pb).tolist()
    if not sub:
        return [True] * len(geoms)
    pb = _gather_poly_candidates(sub)
    if pb is None:
        return None
    hits = iter(evaluator(g1, pb).tolist())
    return [True if g is g1 else next(hits) for g in geoms]


def evaluate_predicate_batch(
    g1: Geometry,
    geoms: Sequence[Geometry],
    mask: str,
    distance: float = 0.0,
) -> Optional[List[bool]]:
    """Batch-evaluate a join predicate for one probe vs many candidates.

    Returns ``None`` when the mask is outside the batchable subset (the
    caller then falls back to scalar evaluation).  Supported: the
    within-distance predicate (``distance > 0``) and the intersection
    masks ``ANYINTERACT`` / ``INTERSECT`` (including ``+``-unions of the
    two).  Results are bit-identical to the scalar path on both backends.
    """
    _count("evaluate_predicate_batch", len(geoms))
    if not geoms:
        return []
    if distance and distance > 0.0:
        return within_distance_batch(g1, geoms, distance)
    names = [n.strip() for n in mask.upper().split("+")] if mask else []
    if not names or any(n not in ("ANYINTERACT", "INTERSECT") for n in names):
        return None
    return intersects_batch(g1, geoms)


# ======================================================================
# Tile-classification kernel (tessellation frontier)
# ======================================================================
def classify_tiles(geom: Geometry, quads, polygonal: bool) -> List[int]:
    """Classify a frontier of quadrant MBRs against one geometry.

    Returns one code per quadrant: :data:`TILE_OUTSIDE_MBR`,
    :data:`TILE_OUTSIDE`, :data:`TILE_BOUNDARY` or :data:`TILE_INTERIOR`
    (the last only when ``polygonal``).  Matches the per-tile scalar
    sequence in ``tessellate``: MBR gate, ``intersects(rect, geom)``,
    then ``contains(geom, rect)``.
    """
    n = len(quads)
    _count("classify_tiles", n)
    if n == 0:
        return []
    # Tiny work items — a point's one-tile-per-level frontier, the root
    # quadrant of a small geometry — lose to array dispatch overhead.
    # Both paths are bit-identical, so routing them scalar is purely a
    # constant-factor switch (frontier size × vertex count ≈ work).
    if (
        _active_backend == "python"
        or np is None
        or n * geom.num_vertices < _SCALAR_TILE_CUTOFF
    ):
        return [_classify_tile_scalar(geom, quad, polygonal) for quad in quads]
    qx0 = np.asarray([q.min_x for q in quads], dtype=np.float64)
    qy0 = np.asarray([q.min_y for q in quads], dtype=np.float64)
    qx1 = np.asarray([q.max_x for q in quads], dtype=np.float64)
    qy1 = np.asarray([q.max_y for q in quads], dtype=np.float64)
    m = geom.mbr
    codes = np.zeros(n, dtype=np.int64)
    mbr_ok = (qx0 <= m.max_x) & (m.min_x <= qx1) & (qy0 <= m.max_y) & (m.min_y <= qy1)
    codes[mbr_ok] = TILE_OUTSIDE
    act = np.nonzero(mbr_ok)[0]
    if act.size == 0:
        return codes.tolist()
    # Degenerate quadrants (zero width/height) become point/line window
    # geometries in the scalar path; classify those few via the scalar code.
    deg = (qx1[act] == qx0[act]) | (qy1[act] == qy0[act])
    for t in act[deg]:
        codes[t] = _classify_tile_scalar(geom, quads[int(t)], polygonal)
    sub = act[~deg]
    if sub.size == 0:
        return codes.tolist()
    inter = _rects_intersect_geom(geom, qx0[sub], qy0[sub], qx1[sub], qy1[sub])
    hit = sub[inter]
    codes[hit] = TILE_BOUNDARY
    if polygonal and hit.size:
        within = _rects_within_geom(geom, qx0[hit], qy0[hit], qx1[hit], qy1[hit])
        codes[hit[within]] = TILE_INTERIOR
    return codes.tolist()


def _classify_tile_scalar(geom: Geometry, quad, polygonal: bool) -> int:
    if not quad.intersects(geom.mbr):
        return TILE_OUTSIDE_MBR
    rect = Geometry.from_mbr(quad)
    if not intersects(rect, geom):
        return TILE_OUTSIDE
    if polygonal and contains(geom, rect):
        return TILE_INTERIOR
    return TILE_BOUNDARY


def _rect_edge_array(x0, y0, x1, y1):
    """(R, 4, 4) boundary edges of axis-aligned rects, in Ring.edges order."""
    e = np.empty((x0.shape[0], 4, 4), dtype=np.float64)
    e[:, 0] = np.stack([x0, y0, x1, y0], axis=1)
    e[:, 1] = np.stack([x1, y0, x1, y1], axis=1)
    e[:, 2] = np.stack([x1, y1, x0, y1], axis=1)
    e[:, 3] = np.stack([x0, y1, x0, y0], axis=1)
    return e


def _rect_edges_any(rect_edges, part_edges, matrix_fn) -> "np.ndarray":
    """Per-rect: does any of its 4 edges satisfy ``matrix_fn`` vs part_edges?"""
    flat = rect_edges.reshape(-1, 4)
    out = np.zeros(flat.shape[0], dtype=bool)
    if len(part_edges):
        for sl in _row_chunks(flat.shape[0], len(part_edges)):
            out[sl] = matrix_fn(flat[sl], part_edges).any(axis=1)
    return out.reshape(-1, 4).any(axis=1)


def _rects_intersect_geom(geom: Geometry, x0, y0, x1, y1) -> "np.ndarray":
    """Batch ``predicates.intersects(rect, geom)`` for non-degenerate rects."""
    n = x0.shape[0]
    res = np.zeros(n, dtype=bool)
    rect_edges = _rect_edge_array(x0, y0, x1, y1)
    rect_cache = {}

    def rect_geom(i: int) -> Geometry:
        g = rect_cache.get(i)
        if g is None:
            g = Geometry.rectangle(x0[i], y0[i], x1[i], y1[i])
            rect_cache[i] = g
        return g

    for part in geom.simple_parts():
        pm = part.mbr
        gate = (x0 <= pm.max_x) & (pm.min_x <= x1) & (y0 <= pm.max_y) & (pm.min_y <= y1)
        need = np.nonzero(gate & ~res)[0]
        if need.size == 0:
            continue
        if part.geom_type is GeometryType.POINT:
            ppx, ppy = part.coords[0]
            for t in need:
                if rect_geom(int(t)).contains_point(ppx, ppy):
                    res[t] = True
            continue
        hit = _rect_edges_any(rect_edges[need], part.edges_array(), _intersect_matrix)
        res[need[hit]] = True
        rem = need[~hit]
        if rem.size == 0:
            continue
        if part.geom_type is GeometryType.LINESTRING:
            fx, fy = part.coords[0]
            for t in rem:
                if rect_geom(int(t)).contains_point(fx, fy):
                    res[t] = True
        else:
            corner_in = _part_contains_points(part, x0[rem], y0[rem])
            res[rem[corner_in]] = True
            rem2 = rem[~corner_in]
            if rem2.size:
                fx, fy = part.exterior.coords[0]  # type: ignore[union-attr]
                for t in rem2:
                    if rect_geom(int(t)).contains_point(fx, fy):
                        res[t] = True
    return res


def _rects_within_geom(geom: Geometry, x0, y0, x1, y1) -> "np.ndarray":
    """Batch ``predicates.contains(geom, rect)`` for non-degenerate rects."""
    n = x0.shape[0]
    gm = geom.mbr
    keep = (gm.min_x <= x0) & (gm.max_x >= x1) & (gm.min_y <= y0) & (gm.max_y >= y1)
    idx = np.nonzero(keep)[0]
    out = np.zeros(n, dtype=bool)
    if idx.size == 0:
        return out
    # All four corners covered by the geometry.
    cx = np.stack([x0[idx], x1[idx], x1[idx], x0[idx]], axis=1).ravel()
    cy = np.stack([y0[idx], y0[idx], y1[idx], y1[idx]], axis=1).ravel()
    ok = _geometry_contains_points(geom, cx, cy).reshape(-1, 4).all(axis=1)
    idx = idx[ok]
    if idx.size == 0:
        return out
    # No rect edge properly crosses a geometry boundary edge.
    ge = geom.edges_array()
    if len(ge):
        prop = _rect_edges_any(
            _rect_edge_array(x0[idx], y0[idx], x1[idx], y1[idx]), ge, _proper_matrix
        )
        idx = idx[~prop]
        if idx.size == 0:
            return out
    # Edge midpoints covered (guards against holes the edges do not touch).
    rx0, ry0, rx1, ry1 = x0[idx], y0[idx], x1[idx], y1[idx]
    mx = np.stack(
        [(rx0 + rx1) / 2.0, (rx1 + rx1) / 2.0, (rx1 + rx0) / 2.0, (rx0 + rx0) / 2.0],
        axis=1,
    ).ravel()
    my = np.stack(
        [(ry0 + ry0) / 2.0, (ry0 + ry1) / 2.0, (ry1 + ry1) / 2.0, (ry1 + ry0) / 2.0],
        axis=1,
    ).ravel()
    ok = _geometry_contains_points(geom, mx, my).reshape(-1, 4).all(axis=1)
    out[idx[ok]] = True
    return out
