"""Exact distance computations between geometries.

``distance`` and ``within_distance`` back the ``sdo_within_distance``
operator and the distance variants of the spatial join (Table 1 of the paper
joins the counties layer with itself at distances 0 / 0.1 / 0.25 / 0.5).

All internal comparisons happen on *squared* distances; the square root is
taken exactly once, at the :func:`distance` API boundary.  ``within_distance``
never roots at all (it compares against ``dist * dist``), which both saves a
``sqrt`` per edge pair and keeps the scalar path arithmetically identical to
the vectorized kernels in :mod:`repro.geometry.kernels`.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.geometry.geometry import Coord, Geometry, GeometryType
from repro.geometry.predicates import intersects
from repro.geometry.segments import (
    point_segment_distance_sq,
    segment_segment_distance_sq,
)

__all__ = ["distance", "distance_sq", "within_distance"]


def distance(g1: Geometry, g2: Geometry, stop_below: float = 0.0) -> float:
    """Minimum Euclidean distance between two geometries.

    Zero when they intersect (including one containing the other).
    ``stop_below`` allows early termination: once the running minimum is
    known to be <= ``stop_below`` the search stops and returns it (the
    result is then an upper bound that is still <= ``stop_below``, which
    is all a within-distance test needs).
    """
    return math.sqrt(distance_sq(g1, g2, stop_below_sq=stop_below * stop_below))


def distance_sq(g1: Geometry, g2: Geometry, stop_below_sq: float = 0.0) -> float:
    """Squared minimum distance (the comparison-friendly form).

    ``stop_below_sq`` is the squared early-termination threshold; see
    :func:`distance`.
    """
    if g1.mbr.intersects(g2.mbr) and intersects(g1, g2):
        return 0.0
    best = math.inf
    for a in g1.simple_parts():
        for b in g2.simple_parts():
            # MBR lower bound lets us skip part pairs that cannot improve.
            if _mbr_distance_sq(a, b) >= best:
                continue
            d = _simple_distance_sq(a, b, stop_below_sq)
            if d < best:
                best = d
                if best <= stop_below_sq:
                    return best
    return best


def within_distance(g1: Geometry, g2: Geometry, dist: float) -> bool:
    """True if the geometries are within ``dist`` of each other.

    ``dist = 0`` degenerates to an intersection test, matching the paper's
    Table 1 where "distance 0" means intersect.
    """
    if dist < 0:
        return False
    if not g1.mbr.expand(dist).intersects(g2.mbr):
        return False
    if dist == 0.0:
        return intersects(g1, g2)
    d2 = dist * dist
    return distance_sq(g1, g2, stop_below_sq=d2) <= d2


def _mbr_distance_sq(a: Geometry, b: Geometry) -> float:
    """Squared distance between two part MBRs (lower bound for pruning)."""
    ma, mb = a.mbr, b.mbr
    dx = max(mb.min_x - ma.max_x, ma.min_x - mb.max_x, 0.0)
    dy = max(mb.min_y - ma.max_y, ma.min_y - mb.max_y, 0.0)
    return dx * dx + dy * dy


def _simple_distance_sq(a: Geometry, b: Geometry, stop_below_sq: float = 0.0) -> float:
    """Squared distance between two primitive geometries known to be disjoint."""
    order = {GeometryType.POINT: 0, GeometryType.LINESTRING: 1, GeometryType.POLYGON: 2}
    if order[a.geom_type] > order[b.geom_type]:
        a, b = b, a
    ta, tb = a.geom_type, b.geom_type

    if ta is GeometryType.POINT and tb is GeometryType.POINT:
        (x1, y1), (x2, y2) = a.coords[0], b.coords[0]
        dx, dy = x2 - x1, y2 - y1
        return dx * dx + dy * dy

    if ta is GeometryType.POINT:
        # Containment was excluded by the caller, so boundary distance is it.
        p = a.coords[0]
        return _point_to_edges_sq(p, b)

    # line/polygon vs line/polygon: min over boundary segment pairs.  The
    # caller has already established the geometries are disjoint, so no
    # containment case can make this an overestimate.
    best = math.inf
    edges_b = list(b.boundary_edges())
    for s1, s2 in a.boundary_edges():
        # Per-edge bound: skip edges whose bounding box cannot improve.
        if edges_b and _edge_mbr_distance_sq(s1, s2, b) >= best:
            continue
        for e1, e2 in edges_b:
            d = segment_segment_distance_sq(s1, s2, e1, e2)
            if d < best:
                best = d
                if best <= stop_below_sq:
                    return best
    return best


def _edge_mbr_distance_sq(s1: Coord, s2: Coord, b: Geometry) -> float:
    """Squared lower bound: one edge's bbox to the other geometry's MBR."""
    min_x, max_x = (s1[0], s2[0]) if s1[0] <= s2[0] else (s2[0], s1[0])
    min_y, max_y = (s1[1], s2[1]) if s1[1] <= s2[1] else (s2[1], s1[1])
    other = b.mbr
    dx = max(other.min_x - max_x, min_x - other.max_x, 0.0)
    dy = max(other.min_y - max_y, min_y - other.max_y, 0.0)
    return dx * dx + dy * dy


def _point_to_edges_sq(p: Coord, g: Geometry) -> float:
    best = math.inf
    for a, b in g.boundary_edges():
        d = point_segment_distance_sq(p, a, b)
        if d < best:
            best = d
    return best
