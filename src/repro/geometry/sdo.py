"""SDO_GEOMETRY-style encoding of geometries.

Oracle Spatial stores geometry as a ``(SDO_GTYPE, SDO_ELEM_INFO,
SDO_ORDINATES)`` triple.  This module provides the same encoding so that the
storage layer can persist geometries as flat arrays — the representation a
tessellation or MBR-load table function actually reads off disk — and so
that round-tripping behaves like the original system's object type.

Supported subset (the 2-D cases the paper's workloads exercise):

* gtype ``2001`` point, ``2002`` linestring, ``2003`` polygon,
  ``2005`` multipoint, ``2006`` multilinestring, ``2007`` multipolygon.
* elem_info triplets ``(offset, etype, interpretation)`` with etype 1
  (point), 2 (linestring), 1003 (exterior ring, interpretation 1 =
  vertex-list or 3 = rectangle), 2003 (interior ring, same interpretations).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import SdoCodecError
from repro.geometry.geometry import Geometry, GeometryType

__all__ = ["SdoGeometry", "to_sdo", "from_sdo"]

GTYPE_POINT = 2001
GTYPE_LINE = 2002
GTYPE_POLYGON = 2003
GTYPE_MULTIPOINT = 2005
GTYPE_MULTILINE = 2006
GTYPE_MULTIPOLYGON = 2007

ETYPE_POINT = 1
ETYPE_LINE = 2
ETYPE_EXTERIOR = 1003
ETYPE_INTERIOR = 2003

INTERP_VERTEX_LIST = 1
INTERP_RECTANGLE = 3


class SdoGeometry:
    """A decoded ``(gtype, elem_info, ordinates)`` triple.

    ``elem_info`` uses 1-based ordinate offsets exactly as Oracle does, so
    dumps of this structure can be compared against Oracle documentation
    examples verbatim.
    """

    __slots__ = ("gtype", "elem_info", "ordinates")

    def __init__(
        self, gtype: int, elem_info: Sequence[int], ordinates: Sequence[float]
    ):
        if len(elem_info) % 3 != 0:
            raise SdoCodecError("elem_info length must be a multiple of 3")
        if len(ordinates) % 2 != 0:
            raise SdoCodecError("2-D ordinates length must be even")
        self.gtype = int(gtype)
        self.elem_info: Tuple[int, ...] = tuple(int(v) for v in elem_info)
        self.ordinates: Tuple[float, ...] = tuple(float(v) for v in ordinates)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SdoGeometry):
            return NotImplemented
        return (
            self.gtype == other.gtype
            and self.elem_info == other.elem_info
            and self.ordinates == other.ordinates
        )

    def __repr__(self) -> str:
        return (
            f"SdoGeometry(gtype={self.gtype}, elems={len(self.elem_info) // 3}, "
            f"ordinates={len(self.ordinates)})"
        )

    def elements(self) -> List[Tuple[int, int, Tuple[float, ...]]]:
        """Decode elem_info into ``(etype, interpretation, ordinate-slice)``."""
        result = []
        triplets = [
            self.elem_info[i : i + 3] for i in range(0, len(self.elem_info), 3)
        ]
        for idx, (offset, etype, interp) in enumerate(triplets):
            start = offset - 1  # 1-based to 0-based
            if start < 0 or start >= len(self.ordinates):
                raise SdoCodecError(f"elem_info offset {offset} out of range")
            if idx + 1 < len(triplets):
                end = triplets[idx + 1][0] - 1
            else:
                end = len(self.ordinates)
            if end <= start:
                raise SdoCodecError("elem_info offsets are not increasing")
            result.append((etype, interp, self.ordinates[start:end]))
        return result


def to_sdo(geom: Geometry) -> SdoGeometry:
    """Encode a :class:`Geometry` into SDO form."""
    t = geom.geom_type
    if t is GeometryType.POINT:
        (x, y) = geom.coords[0]
        return SdoGeometry(GTYPE_POINT, (1, ETYPE_POINT, 1), (x, y))
    if t is GeometryType.LINESTRING:
        ords = _flatten(geom.coords)
        return SdoGeometry(GTYPE_LINE, (1, ETYPE_LINE, 1), ords)
    if t is GeometryType.POLYGON:
        elem_info: List[int] = []
        ords: List[float] = []
        _encode_polygon(geom, elem_info, ords)
        return SdoGeometry(GTYPE_POLYGON, elem_info, ords)
    if t is GeometryType.MULTIPOINT:
        ords = []
        for part in geom.parts:
            ords.extend(part.coords[0])
        return SdoGeometry(
            GTYPE_MULTIPOINT, (1, ETYPE_POINT, len(geom.parts)), ords
        )
    if t is GeometryType.MULTILINESTRING:
        elem_info = []
        ords = []
        for part in geom.parts:
            elem_info.extend((len(ords) + 1, ETYPE_LINE, 1))
            ords.extend(_flatten(part.coords))
        return SdoGeometry(GTYPE_MULTILINE, elem_info, ords)
    if t is GeometryType.MULTIPOLYGON:
        elem_info = []
        ords = []
        for part in geom.parts:
            _encode_polygon(part, elem_info, ords)
        return SdoGeometry(GTYPE_MULTIPOLYGON, elem_info, ords)
    raise SdoCodecError(f"cannot encode geometry type {t.value}")


def _flatten(coords: Sequence[Tuple[float, float]]) -> List[float]:
    ords: List[float] = []
    for x, y in coords:
        ords.append(x)
        ords.append(y)
    return ords


def _encode_polygon(geom: Geometry, elem_info: List[int], ords: List[float]) -> None:
    assert geom.exterior is not None
    elem_info.extend((len(ords) + 1, ETYPE_EXTERIOR, INTERP_VERTEX_LIST))
    # SDO closes rings explicitly: first vertex repeated at the end.
    ords.extend(_flatten(geom.exterior.coords + (geom.exterior.coords[0],)))
    for hole in geom.holes:
        elem_info.extend((len(ords) + 1, ETYPE_INTERIOR, INTERP_VERTEX_LIST))
        ords.extend(_flatten(hole.coords + (hole.coords[0],)))


def from_sdo(sdo: SdoGeometry) -> Geometry:
    """Decode SDO form back into a :class:`Geometry`."""
    if sdo.gtype == GTYPE_POINT:
        if len(sdo.ordinates) != 2:
            raise SdoCodecError("point gtype requires exactly 2 ordinates")
        return Geometry.point(sdo.ordinates[0], sdo.ordinates[1])

    elements = sdo.elements()

    if sdo.gtype == GTYPE_LINE:
        etype, _interp, ords = elements[0]
        if etype != ETYPE_LINE:
            raise SdoCodecError(f"expected line etype, got {etype}")
        return Geometry.linestring(_pair(ords))

    if sdo.gtype == GTYPE_MULTIPOINT:
        etype, interp, ords = elements[0]
        if etype != ETYPE_POINT:
            raise SdoCodecError(f"expected point etype, got {etype}")
        pts = _pair(ords)
        if len(pts) != interp:
            raise SdoCodecError(
                f"multipoint interpretation {interp} != point count {len(pts)}"
            )
        return Geometry.multipoint(pts)

    if sdo.gtype == GTYPE_MULTILINE:
        lines = []
        for etype, _interp, ords in elements:
            if etype != ETYPE_LINE:
                raise SdoCodecError(f"expected line etype, got {etype}")
            lines.append(_pair(ords))
        return Geometry.multilinestring(lines)

    if sdo.gtype in (GTYPE_POLYGON, GTYPE_MULTIPOLYGON):
        polygons: List[Tuple[List[Tuple[float, float]], List[List[Tuple[float, float]]]]] = []
        for etype, interp, ords in elements:
            ring = _decode_ring(etype, interp, ords)
            if etype == ETYPE_EXTERIOR:
                polygons.append((ring, []))
            elif etype == ETYPE_INTERIOR:
                if not polygons:
                    raise SdoCodecError("interior ring before any exterior ring")
                polygons[-1][1].append(ring)
            else:
                raise SdoCodecError(f"unexpected etype {etype} in polygon")
        if not polygons:
            raise SdoCodecError("polygon gtype with no rings")
        if sdo.gtype == GTYPE_POLYGON:
            if len(polygons) != 1:
                raise SdoCodecError("polygon gtype with multiple exterior rings")
            ext, holes = polygons[0]
            return Geometry.polygon(ext, holes)
        return Geometry.multipolygon([(ext, holes) for ext, holes in polygons])

    raise SdoCodecError(f"unsupported gtype {sdo.gtype}")


def _pair(ords: Sequence[float]) -> List[Tuple[float, float]]:
    if len(ords) % 2 != 0:
        raise SdoCodecError("odd ordinate count in element")
    return [(ords[i], ords[i + 1]) for i in range(0, len(ords), 2)]


def _decode_ring(
    etype: int, interp: int, ords: Sequence[float]
) -> List[Tuple[float, float]]:
    if interp == INTERP_RECTANGLE:
        if len(ords) != 4:
            raise SdoCodecError("rectangle interpretation requires 4 ordinates")
        x1, y1, x2, y2 = ords
        ring = [(x1, y1), (x2, y1), (x2, y2), (x1, y2)]
        if etype == ETYPE_INTERIOR:
            ring.reverse()
        return ring
    if interp == INTERP_VERTEX_LIST:
        return _pair(ords)
    raise SdoCodecError(f"unsupported ring interpretation {interp}")
