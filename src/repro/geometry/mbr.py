"""Minimum bounding rectangles (MBRs).

The MBR is the workhorse of every spatial index in this library: R-tree nodes
store MBRs, the quadtree tessellates MBR-clipped geometry, and the spatial
join's primary filter is pure MBR intersection.  The class is immutable so
MBRs can be shared freely between index nodes and query states.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

from repro.errors import GeometryError

__all__ = ["MBR", "EMPTY_MBR", "mbr_of_points", "union_all"]


@dataclass(frozen=True, slots=True)
class MBR:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``.

    Degenerate rectangles (points and horizontal/vertical segments) are
    valid.  An *empty* MBR is represented by the sentinel :data:`EMPTY_MBR`
    whose bounds are inverted infinities; it behaves as the identity for
    :meth:`union` and intersects nothing.
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if not self.is_empty and (self.min_x > self.max_x or self.min_y > self.max_y):
            raise GeometryError(
                f"inverted MBR bounds: ({self.min_x}, {self.min_y}, "
                f"{self.max_x}, {self.max_y})"
            )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """True for the empty-MBR sentinel."""
        return self.min_x == math.inf and self.max_x == -math.inf

    @property
    def width(self) -> float:
        return 0.0 if self.is_empty else self.max_x - self.min_x

    @property
    def height(self) -> float:
        return 0.0 if self.is_empty else self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def perimeter(self) -> float:
        return 0.0 if self.is_empty else 2.0 * (self.width + self.height)

    @property
    def center(self) -> Tuple[float, float]:
        if self.is_empty:
            raise GeometryError("empty MBR has no center")
        return ((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def as_tuple(self) -> Tuple[float, float, float, float]:
        return (self.min_x, self.min_y, self.max_x, self.max_y)

    def corners(self) -> Iterator[Tuple[float, float]]:
        """Yield the four corners counter-clockwise from (min_x, min_y)."""
        yield (self.min_x, self.min_y)
        yield (self.max_x, self.min_y)
        yield (self.max_x, self.max_y)
        yield (self.min_x, self.max_y)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def intersects(self, other: "MBR") -> bool:
        """Closed-interval intersection test (shared edges count)."""
        if self.is_empty or other.is_empty:
            return False
        return (
            self.min_x <= other.max_x
            and other.min_x <= self.max_x
            and self.min_y <= other.max_y
            and other.min_y <= self.max_y
        )

    def contains(self, other: "MBR") -> bool:
        """True if ``other`` lies entirely inside this MBR (closed)."""
        if self.is_empty or other.is_empty:
            return False
        return (
            self.min_x <= other.min_x
            and self.max_x >= other.max_x
            and self.min_y <= other.min_y
            and self.max_y >= other.max_y
        )

    def contains_point(self, x: float, y: float) -> bool:
        if self.is_empty:
            return False
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def within_distance(self, other: "MBR", distance: float) -> bool:
        """True if the minimum distance between the rectangles is <= distance."""
        return self.distance(other) <= distance

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------
    def distance(self, other: "MBR") -> float:
        """Minimum Euclidean distance between two rectangles (0 if overlapping)."""
        if self.is_empty or other.is_empty:
            return math.inf
        dx = max(other.min_x - self.max_x, self.min_x - other.max_x, 0.0)
        dy = max(other.min_y - self.max_y, self.min_y - other.max_y, 0.0)
        return math.hypot(dx, dy)

    def distance_to_point(self, x: float, y: float) -> float:
        if self.is_empty:
            return math.inf
        dx = max(self.min_x - x, x - self.max_x, 0.0)
        dy = max(self.min_y - y, y - self.max_y, 0.0)
        return math.hypot(dx, dy)

    def intersection_area(self, other: "MBR") -> float:
        """Area of the overlap region (0 when disjoint)."""
        if not self.intersects(other):
            return 0.0
        w = min(self.max_x, other.max_x) - max(self.min_x, other.min_x)
        h = min(self.max_y, other.max_y) - max(self.min_y, other.min_y)
        return w * h

    def enlargement(self, other: "MBR") -> float:
        """Area increase needed to absorb ``other`` (R-tree insert heuristic)."""
        return self.union(other).area - self.area

    # ------------------------------------------------------------------
    # Constructive operations
    # ------------------------------------------------------------------
    def union(self, other: "MBR") -> "MBR":
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return MBR(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def intersection(self, other: "MBR") -> "MBR":
        if not self.intersects(other):
            return EMPTY_MBR
        return MBR(
            max(self.min_x, other.min_x),
            max(self.min_y, other.min_y),
            min(self.max_x, other.max_x),
            min(self.max_y, other.max_y),
        )

    def expand(self, margin: float) -> "MBR":
        """Grow (or shrink for negative margin) by ``margin`` on every side."""
        if self.is_empty:
            return self
        return MBR(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def quadrants(self) -> Tuple["MBR", "MBR", "MBR", "MBR"]:
        """Split into four equal quadrants: SW, SE, NW, NE.

        This is the subdivision order used by the linear quadtree's tile
        codes, so the order here is load-bearing.
        """
        if self.is_empty:
            raise GeometryError("cannot subdivide empty MBR")
        cx, cy = self.center
        return (
            MBR(self.min_x, self.min_y, cx, cy),  # SW
            MBR(cx, self.min_y, self.max_x, cy),  # SE
            MBR(self.min_x, cy, cx, self.max_y),  # NW
            MBR(cx, cy, self.max_x, self.max_y),  # NE
        )


EMPTY_MBR = MBR(math.inf, math.inf, -math.inf, -math.inf)


def mbr_of_points(points: Iterable[Tuple[float, float]]) -> MBR:
    """Bounding rectangle of a point sequence (:data:`EMPTY_MBR` if none)."""
    min_x = min_y = math.inf
    max_x = max_y = -math.inf
    seen = False
    for x, y in points:
        seen = True
        if x < min_x:
            min_x = x
        if x > max_x:
            max_x = x
        if y < min_y:
            min_y = y
        if y > max_y:
            max_y = y
    if not seen:
        return EMPTY_MBR
    return MBR(min_x, min_y, max_x, max_y)


def union_all(mbrs: Sequence[MBR]) -> MBR:
    """Union of many MBRs (:data:`EMPTY_MBR` for an empty sequence)."""
    result = EMPTY_MBR
    for mbr in mbrs:
        result = result.union(mbr)
    return result
