"""Interior approximations: inscribed rectangles for fast-accepts.

The paper's authors' companion work ("Efficient processing of large
spatial queries using interior approximations", SSTD 2001 — reference [21]
of the reproduced paper) speeds up the secondary filter with *interior*
rectangles: a rectangle wholly inside a polygon.  If two geometries'
interior rectangles intersect — or one's interior rectangle contains the
other's MBR — they definitely interact, and the exact geometry test can be
skipped.

``interior_rectangle`` computes a deterministic inscribed axis-aligned
rectangle by seeding at a guaranteed-interior point and growing each side
with bisection while containment holds.  It is an approximation (not the
maximum inscribed rectangle), which is fine: interior approximations only
ever need to be *sound* (fully inside), never tight.
"""

from __future__ import annotations

from typing import Optional

from repro.geometry.geometry import Geometry, GeometryType
from repro.geometry.mbr import EMPTY_MBR, MBR
from repro.geometry.predicates import contains

__all__ = ["interior_rectangle"]

_BISECT_STEPS = 8


def interior_rectangle(geom: Geometry) -> MBR:
    """A rectangle fully inside ``geom`` (EMPTY for non-areal geometry).

    Multi-polygons use their largest part.  Returns :data:`EMPTY_MBR` when
    no interior seed can be found (degenerate slivers).
    """
    part = _largest_polygon(geom)
    if part is None:
        return EMPTY_MBR
    seed = _interior_seed(part)
    if seed is None:
        return EMPTY_MBR
    x, y = seed
    bounds = part.mbr
    # Phase 1: the largest centred square (bisection on the half-size).
    # Growing a square first prevents the side-growth phase from collapsing
    # into a degenerate sliver on pointy shapes.
    eps = max(bounds.width, bounds.height) * 1e-6
    if not _rect_inside(part, MBR(x - eps, y - eps, x + eps, y + eps)):
        return EMPTY_MBR
    lo, hi = eps, min(bounds.width, bounds.height) / 2.0
    for _ in range(_BISECT_STEPS * 2):
        mid = (lo + hi) / 2.0
        if _rect_inside(part, MBR(x - mid, y - mid, x + mid, y + mid)):
            lo = mid
        else:
            hi = mid
    rect = MBR(x - lo, y - lo, x + lo, y + lo)
    # Phase 2: push each side outward independently.
    min_x = _grow(part, rect, "min_x", bounds.min_x)
    rect = MBR(min_x, rect.min_y, rect.max_x, rect.max_y)
    max_x = _grow(part, rect, "max_x", bounds.max_x)
    rect = MBR(rect.min_x, rect.min_y, max_x, rect.max_y)
    min_y = _grow(part, rect, "min_y", bounds.min_y)
    rect = MBR(rect.min_x, min_y, rect.max_x, rect.max_y)
    max_y = _grow(part, rect, "max_y", bounds.max_y)
    return MBR(rect.min_x, rect.min_y, rect.max_x, max_y)


def _largest_polygon(geom: Geometry) -> Optional[Geometry]:
    best = None
    best_area = 0.0
    for part in geom.simple_parts():
        if part.geom_type is GeometryType.POLYGON and part.area > best_area:
            best = part
            best_area = part.area
    return best


def _interior_seed(part: Geometry):
    """A point strictly inside the polygon.

    Tries the MBR centre, then the midpoints of interior spans of a few
    horizontal scanlines.
    """
    assert part.exterior is not None
    cx, cy = part.mbr.center
    if part.contains_point(cx, cy) and _strictly_inside(part, cx, cy):
        return (cx, cy)
    bounds = part.mbr
    for frac in (0.5, 0.33, 0.66, 0.25, 0.75, 0.4, 0.6):
        y = bounds.min_y + frac * bounds.height
        xs = _scanline_crossings(part, y)
        xs.sort()
        for i in range(0, len(xs) - 1, 2):
            mid = (xs[i] + xs[i + 1]) / 2.0
            if part.contains_point(mid, y) and _strictly_inside(part, mid, y):
                return (mid, y)
    return None


def _strictly_inside(part: Geometry, x: float, y: float) -> bool:
    """Seed must have some clearance so the eps-box fits inside."""
    eps = max(part.mbr.width, part.mbr.height) * 1e-5
    probes = ((x - eps, y), (x + eps, y), (x, y - eps), (x, y + eps))
    return all(part.contains_point(px, py) for px, py in probes)


def _scanline_crossings(part: Geometry, y: float):
    xs = []
    for (x1, y1), (x2, y2) in part.boundary_edges():
        if (y1 > y) != (y2 > y):
            xs.append(x1 + (y - y1) * (x2 - x1) / (y2 - y1))
    return xs


def _rect_inside(part: Geometry, rect: MBR) -> bool:
    return contains(part, Geometry.from_mbr(rect))


def _grow(part: Geometry, rect: MBR, side: str, limit: float) -> float:
    """Bisection: push one side of ``rect`` toward ``limit`` while the
    rectangle stays inside the polygon.  Returns the final coordinate."""
    lo = getattr(rect, side)  # known-good
    hi = limit  # optimistic
    if lo == hi:
        return lo
    for _ in range(_BISECT_STEPS):
        mid = (lo + hi) / 2.0
        candidate = _with_side(rect, side, mid)
        if candidate is not None and _rect_inside(part, candidate):
            lo = mid
        else:
            hi = mid
    return lo


def _with_side(rect: MBR, side: str, value: float) -> Optional[MBR]:
    values = {
        "min_x": rect.min_x,
        "min_y": rect.min_y,
        "max_x": rect.max_x,
        "max_y": rect.max_y,
    }
    values[side] = value
    if values["min_x"] >= values["max_x"] or values["min_y"] >= values["max_y"]:
        return None
    return MBR(values["min_x"], values["min_y"], values["max_x"], values["max_y"])
