"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
applications can catch library failures with a single ``except`` clause while
still being able to distinguish subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GeometryError(ReproError):
    """Invalid geometry construction or unsupported geometric operation."""


class WktError(GeometryError):
    """Malformed Well-Known Text input."""


class SdoCodecError(GeometryError):
    """Invalid SDO_GTYPE / SDO_ELEM_INFO / SDO_ORDINATES triple."""


class StorageError(ReproError):
    """Low-level storage failure (pager, heap, buffer cache)."""


class PageError(StorageError):
    """Page-level failure: bad page id, overflow, corrupted slot."""


class RowIdError(StorageError):
    """A rowid does not reference a live row."""


class ChecksumError(StorageError):
    """A page's stored checksum does not match its content (torn page)."""


class WalError(StorageError):
    """Write-ahead log failure (bad header, malformed record, misuse)."""


class RecoveryError(StorageError):
    """Crash recovery cannot restore a consistent state."""


class FaultError(StorageError):
    """Base class for errors injected by the fault-injection harness."""


class BTreeError(StorageError):
    """B-tree structural failure or misuse."""


class CatalogError(ReproError):
    """Catalog lookup/registration failure (unknown table, duplicate index)."""


class EngineError(ReproError):
    """Query-engine failure."""


class CursorError(EngineError):
    """Cursor protocol misuse (fetch after close, bad partitioning)."""


class TableFunctionError(EngineError):
    """Table-function protocol misuse (fetch before start, etc.)."""


class IndexTypeError(EngineError):
    """Extensible-indexing framework misuse."""


class OperatorError(EngineError):
    """Unknown operator or bad operator arguments."""


class SqlError(EngineError):
    """SQL front-end failure."""


class SqlSyntaxError(SqlError):
    """Lexical or grammatical error in a SQL statement."""


class SqlPlanError(SqlError):
    """The statement parsed but cannot be planned/executed."""


class JoinError(ReproError):
    """Spatial-join driver failure."""


class IndexBuildError(ReproError):
    """Spatial index creation failure."""


class DatasetError(ReproError):
    """Synthetic dataset generation failure."""


class ServerError(ReproError):
    """Query-service failure (wire protocol, sessions, admission)."""


class ProtocolError(ServerError):
    """Malformed or oversized wire message."""


class RetriableError(ServerError):
    """A request failed in a way the *caller* may safely retry.

    Raised by the client when an operation cannot be retried transparently
    (e.g. a mid-stream fetch hit backpressure: replaying it could skip or
    duplicate rows), or when automatic retries were exhausted.  Carries the
    originating wire ``code`` when one exists.
    """

    def __init__(self, message: str, code: str = "RETRIABLE"):
        super().__init__(message)
        self.code = code
