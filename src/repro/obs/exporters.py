"""Trace and metrics exporters.

* :func:`chrome_trace` — Chrome trace-event JSON (the ``traceEvents``
  format Perfetto and ``chrome://tracing`` load): one complete-event
  (``ph:"X"``) per span with wall-clock ``ts``/``dur`` in microseconds
  and the span's simulated-seconds / meter-delta attached as ``args``.
* :func:`spans_to_jsonl` — one JSON object per span, for ad-hoc
  ``jq``-style analysis.
* :func:`prometheus_text` — Prometheus text exposition (version 0.0.4)
  of a :meth:`ServerMetrics.snapshot` dict plus storage and
  kernel-backend counters; :func:`lint_prometheus` validates the line
  format (used by tests and the CI ``obs`` job).
* :func:`aggregate_spans` — per-span-name rollup (count, meter delta,
  simulated seconds) used by ``EXPLAIN ANALYZE``.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.engine.cost import CostModel, DEFAULT_COST_MODEL
from repro.obs.trace import Span, Tracer

__all__ = [
    "aggregate_spans",
    "chrome_trace",
    "lint_prometheus",
    "prometheus_text",
    "spans_to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]


def _spans_and_events(source: Union[Tracer, Sequence[Span]]):
    if isinstance(source, Tracer):
        with source._lock:
            return list(source.spans), list(source.events)
    return list(source), []


# ---------------------------------------------------------------------------
# Chrome trace-event JSON (Perfetto)
# ---------------------------------------------------------------------------

def chrome_trace(
    source: Union[Tracer, Sequence[Span]],
    model: CostModel = DEFAULT_COST_MODEL,
) -> Dict[str, Any]:
    """Render spans as a Chrome trace-event document.

    Wall-clock bounds become ``ts``/``dur`` (µs, rebased to the earliest
    span) so nesting renders correctly; the simulated-time story rides
    along in ``args`` (``simulated_seconds`` + per-kind meter deltas).
    """
    spans, events = _spans_and_events(source)
    if not spans and not events:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    starts = [s.start_wall for s in spans] + [e["ts"] for e in events]
    epoch = min(starts)
    trace_events: List[Dict[str, Any]] = []
    seen_threads = set()
    for s in spans:
        if (s.pid, s.tid) not in seen_threads:
            seen_threads.add((s.pid, s.tid))
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": s.pid,
                    "tid": s.tid,
                    "args": {"name": f"repro pid={s.pid}"},
                }
            )
        args: Dict[str, Any] = {
            "trace_id": s.trace_id,
            "span_id": s.span_id,
            "parent_id": s.parent_id,
        }
        args.update(s.tags)
        if s.meter_delta:
            args["meter"] = {k: s.meter_delta[k] for k in sorted(s.meter_delta)}
            args["simulated_seconds"] = s.simulated_seconds(model)
        trace_events.append(
            {
                "name": s.name,
                "cat": s.cat or "repro",
                "ph": "X",
                "ts": (s.start_wall - epoch) * 1e6,
                "dur": max(0.0, s.end_wall - s.start_wall) * 1e6,
                "pid": s.pid,
                "tid": s.tid,
                "args": args,
            }
        )
    for e in events:
        trace_events.append(
            {
                "name": e["name"],
                "cat": "repro",
                "ph": "i",
                "s": "t",
                "ts": (e["ts"] - epoch) * 1e6,
                "pid": e["pid"],
                "tid": e["tid"],
                "args": dict(e["tags"], parent_id=e["parent_id"]),
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str,
    source: Union[Tracer, Sequence[Span]],
    model: CostModel = DEFAULT_COST_MODEL,
) -> str:
    with open(path, "w") as fh:
        json.dump(chrome_trace(source, model), fh, indent=1, default=str)
        fh.write("\n")
    return path


# ---------------------------------------------------------------------------
# JSON-lines
# ---------------------------------------------------------------------------

def spans_to_jsonl(
    source: Union[Tracer, Sequence[Span]],
    model: CostModel = DEFAULT_COST_MODEL,
) -> str:
    """One JSON object per span (and per instant event), newline-separated."""
    spans, events = _spans_and_events(source)
    lines = []
    for s in spans:
        d = s.to_dict()
        d["wall_seconds"] = s.wall_seconds
        if s.meter_delta:
            d["simulated_seconds"] = s.simulated_seconds(model)
        lines.append(json.dumps(d, sort_keys=True, default=str))
    for e in events:
        lines.append(json.dumps(dict(e, kind="event"), sort_keys=True, default=str))
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(
    path: str,
    source: Union[Tracer, Sequence[Span]],
    model: CostModel = DEFAULT_COST_MODEL,
) -> str:
    with open(path, "w") as fh:
        fh.write(spans_to_jsonl(source, model))
    return path


# ---------------------------------------------------------------------------
# Per-operator rollup (EXPLAIN ANALYZE)
# ---------------------------------------------------------------------------

def aggregate_spans(
    spans: Iterable[Span],
    model: CostModel = DEFAULT_COST_MODEL,
) -> Dict[str, Dict[str, Any]]:
    """Roll spans up by name: count, summed meter delta, simulated and
    wall seconds.  Summation is order-independent (sorted kinds)."""
    rollup: Dict[str, Dict[str, Any]] = {}
    for s in spans:
        entry = rollup.setdefault(
            s.name,
            {"count": 0, "meter": {}, "wall_seconds": 0.0},
        )
        entry["count"] += 1
        entry["wall_seconds"] += s.wall_seconds
        for kind, n in s.meter_delta.items():
            entry["meter"][kind] = entry["meter"].get(kind, 0.0) + n
    for entry in rollup.values():
        total = 0.0
        for kind in sorted(entry["meter"]):
            total += model.cost_of(kind) * entry["meter"][kind]
        entry["simulated_seconds"] = total
    return rollup


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def _escape_label(value: Any) -> str:
    text = str(value)
    for raw, escaped in _LABEL_ESCAPES.items():
        text = text.replace(raw, escaped)
    return text


def _fmt_labels(labels: Dict[str, Any]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _fmt_value(value: Any) -> str:
    try:
        number = float(value)
    except (TypeError, ValueError):
        return "0"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


class _Expo:
    """Accumulates families in declaration order, one TYPE line each.

    ``extra_labels`` are merged into every sample — a shard server passes
    ``{"shard": id}`` so one scrape config can pool all shards' series.
    """

    def __init__(self, extra_labels: Optional[Dict[str, Any]] = None) -> None:
        self.lines: List[str] = []
        self._declared: set = set()
        self._extra = dict(extra_labels or {})

    def family(self, name: str, mtype: str, help_text: str) -> None:
        if name in self._declared:
            return
        self._declared.add(name)
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {mtype}")

    def sample(self, name: str, labels: Dict[str, Any], value: Any) -> None:
        merged = dict(self._extra, **labels) if self._extra else labels
        self.lines.append(f"{name}{_fmt_labels(merged)} {_fmt_value(value)}")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def prometheus_text(
    snapshot: Dict[str, Any],
    kernel: Optional[Dict[str, Any]] = None,
) -> str:
    """Render a ``ServerMetrics.snapshot()`` dict (with its ``storage``
    section) plus optional kernel-backend counters as Prometheus text.

    A snapshot carrying ``shard_id`` (one shard of a cluster) gets a
    ``shard`` label on every sample."""
    extra = (
        {"shard": snapshot["shard_id"]} if "shard_id" in snapshot else None
    )
    expo = _Expo(extra)

    requests = snapshot.get("requests", {})
    expo.family("repro_requests_total", "counter", "Wire requests by op.")
    for op in sorted(requests):
        expo.sample("repro_requests_total", {"op": op}, requests[op].get("count", 0))
    expo.family(
        "repro_request_errors_total", "counter", "Failed wire requests by op."
    )
    for op in sorted(requests):
        expo.sample(
            "repro_request_errors_total", {"op": op}, requests[op].get("errors", 0)
        )

    queries = snapshot.get("queries", {})
    expo.family(
        "repro_query_rows_total", "counter", "Rows served by query kind."
    )
    for kind in sorted(queries):
        expo.sample("repro_query_rows_total", {"kind": kind}, queries[kind].get("rows", 0))
    expo.family(
        "repro_query_errors_total", "counter", "Failed queries by kind."
    )
    for kind in sorted(queries):
        expo.sample(
            "repro_query_errors_total", {"kind": kind}, queries[kind].get("errors", 0)
        )
    expo.family(
        "repro_query_latency_ms",
        "gauge",
        "Request latency summary (milliseconds) by kind and statistic.",
    )
    for kind in sorted(queries):
        latency = queries[kind].get("latency", {})
        for stat in ("mean_ms", "p50_ms", "p90_ms", "p99_ms", "max_ms"):
            expo.sample(
                "repro_query_latency_ms",
                {"kind": kind, "stat": stat[:-3]},
                latency.get(stat, 0.0),
            )
    expo.family(
        "repro_query_latency_count", "counter", "Latency samples by kind."
    )
    for kind in sorted(queries):
        expo.sample(
            "repro_query_latency_count",
            {"kind": kind},
            queries[kind].get("latency", {}).get("count", 0),
        )

    meters = snapshot.get("meters", {})
    expo.family(
        "repro_meter_units_total",
        "counter",
        "Simulated work units charged, by query kind and unit kind.",
    )
    for kind in sorted(meters):
        for unit in sorted(meters[kind]):
            expo.sample(
                "repro_meter_units_total",
                {"kind": kind, "unit": unit},
                meters[kind][unit],
            )

    sessions = snapshot.get("sessions", {})
    expo.family(
        "repro_sessions_active", "gauge", "Sessions currently open."
    )
    expo.sample("repro_sessions_active", {}, sessions.get("active", 0))
    expo.family(
        "repro_sessions_total", "counter", "Session lifecycle events."
    )
    for event in sorted(sessions):
        if event == "active":
            continue
        expo.sample("repro_sessions_total", {"event": event}, sessions[event])

    resilience = snapshot.get("resilience", {})
    if resilience:
        expo.family(
            "repro_resilience_total",
            "counter",
            "Cluster resilience events (retries, hedges, re-scatters, "
            "breaker trips, failovers).",
        )
        for event in sorted(resilience):
            expo.sample(
                "repro_resilience_total", {"event": event}, resilience[event]
            )

    storage = snapshot.get("storage", {})
    expo.family(
        "repro_storage_info",
        "gauge",
        "Storage configuration (durability mode as a label).",
    )
    expo.sample(
        "repro_storage_info",
        {"durability": storage.get("durability", "none")},
        1,
    )
    numeric_keys = [
        k
        for k in sorted(storage)
        if k != "durability" and isinstance(storage[k], (int, float))
    ]
    expo.family(
        "repro_storage", "gauge", "Storage counters from storage_stats()."
    )
    for key in numeric_keys:
        expo.sample("repro_storage", {"stat": key}, storage[key])

    if kernel:
        expo.family(
            "repro_kernel_info",
            "gauge",
            "Active geometry-kernel backend (as a label).",
        )
        expo.sample(
            "repro_kernel_info", {"backend": kernel.get("backend", "python")}, 1
        )
        expo.family(
            "repro_kernel_calls_total",
            "counter",
            "Batch-kernel invocations by entry point.",
        )
        expo.family(
            "repro_kernel_items_total",
            "counter",
            "Items processed by batch kernels, by entry point.",
        )
        for entry in sorted(kernel.get("calls", {})):
            expo.sample(
                "repro_kernel_calls_total", {"entry": entry}, kernel["calls"][entry]
            )
        for entry in sorted(kernel.get("items", {})):
            expo.sample(
                "repro_kernel_items_total", {"entry": entry}, kernel["items"][entry]
            )
    return expo.text()


# -- exposition lint --------------------------------------------------------

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[-+]?(?:[0-9]*\.)?[0-9]+(?:[eE][-+]?[0-9]+)?|NaN|[-+]?Inf)"
    r"(?: [0-9]+)?$"
)
_LABEL_PAIR_RE = re.compile(
    r'^(?P<label>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$'
)
_VALID_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def lint_prometheus(text: str) -> List[str]:
    """Validate Prometheus text-format exposition; return error strings.

    Checks: line syntax (HELP/TYPE comments and samples), metric/label
    name charsets, TYPE declared before its samples, valid TYPE values,
    duplicate (name, labelset) samples, and a trailing newline.
    """
    errors: List[str] = []
    if text and not text.endswith("\n"):
        errors.append("exposition must end with a newline")
    typed: Dict[str, str] = {}
    seen_samples: set = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                errors.append(f"line {lineno}: malformed comment {line!r}")
                continue
            if not _METRIC_NAME_RE.match(parts[2]):
                errors.append(f"line {lineno}: bad metric name {parts[2]!r}")
            if parts[1] == "TYPE":
                mtype = parts[3].strip() if len(parts) > 3 else ""
                if mtype not in _VALID_TYPES:
                    errors.append(f"line {lineno}: bad TYPE {mtype!r}")
                if parts[2] in typed:
                    errors.append(
                        f"line {lineno}: duplicate TYPE for {parts[2]!r}"
                    )
                typed[parts[2]] = mtype
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            errors.append(f"line {lineno}: malformed sample {line!r}")
            continue
        name = match.group("name")
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                base = name[: -len(suffix)]
                break
        if base not in typed:
            errors.append(
                f"line {lineno}: sample {name!r} has no preceding TYPE"
            )
        labels = match.group("labels")
        labelset = ()
        if labels is not None and labels != "":
            pairs = []
            for pair in _split_label_pairs(labels):
                pm = _LABEL_PAIR_RE.match(pair)
                if not pm:
                    errors.append(
                        f"line {lineno}: malformed label pair {pair!r}"
                    )
                    continue
                if not _LABEL_NAME_RE.match(pm.group("label")):
                    errors.append(
                        f"line {lineno}: bad label name {pm.group('label')!r}"
                    )
                pairs.append((pm.group("label"), pm.group("value")))
            labelset = tuple(sorted(pairs))
        key = (name, labelset)
        if key in seen_samples:
            errors.append(f"line {lineno}: duplicate sample {line!r}")
        seen_samples.add(key)
    return errors


def _split_label_pairs(labels: str) -> List[str]:
    """Split ``a="x",b="y"`` on commas outside quoted values."""
    pairs: List[str] = []
    current: List[str] = []
    in_quotes = False
    escaped = False
    for ch in labels:
        if escaped:
            current.append(ch)
            escaped = False
            continue
        if ch == "\\":
            current.append(ch)
            escaped = True
            continue
        if ch == '"':
            in_quotes = not in_quotes
            current.append(ch)
            continue
        if ch == "," and not in_quotes:
            pairs.append("".join(current))
            current = []
            continue
        current.append(ch)
    if current:
        pairs.append("".join(current))
    return pairs
