"""Cluster observability plane: in-process TSDB, SLO engine, scrape loop.

Three cooperating pieces, all dependency-free and lock-safe:

* :class:`MetricStore` — a ring-buffer time-series database.  Each
  ``(name, labels)`` series keeps a bounded deque of raw ``(ts, value)``
  points under a fixed retention window, plus coarser *rollup* buckets
  (min/max/sum/count per ``rollup_every`` seconds) retained much longer,
  so dashboards get full-resolution recent history and downsampled
  long-range history from a few hundred KB of memory.  ``range_query()``
  reads raw points, ``rate()`` computes a counter-reset-aware per-second
  rate, ``rollup_query()`` reads the downsampled aggregates.

* :class:`SLOEngine` — declarative :class:`SLO` objectives (availability
  from counter pairs, latency/gauge ceilings from gauge series) evaluated
  over the store with **multi-window burn-rate alerts** à la the SRE
  workbook: a *page* fires when both the 5-minute and 1-hour burn rates
  exceed 14.4× budget, a *ticket* when both the 6-hour and 24-hour rates
  exceed 6×.  Transitions append typed :class:`Alert` records to an event
  log; current state exports as a Prometheus ``repro_slo_*`` family.

* :class:`ObservabilityPlane` — a collector registry plus a background
  scrape thread.  Collectors are plain callables ``fn(store, now)`` that
  read existing snapshot surfaces (``ServerMetrics.snapshot()``,
  ``storage_stats()``, kernel counters, replication/breaker/chaos state)
  and ``observe()`` into the store — a *pull* model, so when no plane is
  attached the instrumented subsystems pay nothing beyond keeping the
  counters they already kept.

Windows scale with ``time_scale`` so tests (and the chaos CI job) can
exercise real burn-rate math in hundreds of milliseconds.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Alert",
    "BurnWindow",
    "DEFAULT_WINDOWS",
    "MetricStore",
    "ObservabilityPlane",
    "SLO",
    "SLOEngine",
    "series_key",
]


def series_key(name: str, labels: Optional[Dict[str, Any]] = None) -> Tuple:
    """Canonical hashable key for one series."""
    if not labels:
        return (name,)
    return (name,) + tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Series:
    """One ring buffer of raw points plus its rollup buckets."""

    __slots__ = ("name", "labels", "points", "rollups", "observed")

    def __init__(self, name: str, labels: Dict[str, str], maxlen: int) -> None:
        self.name = name
        self.labels = labels
        self.points: deque = deque(maxlen=maxlen)  # (ts, value)
        self.rollups: Dict[float, List[float]] = {}  # bucket -> [min,max,sum,n]
        self.observed = 0


class MetricStore:
    """Lock-safe in-process ring-buffer TSDB with downsampling rollups."""

    def __init__(
        self,
        retention: float = 600.0,
        max_points: int = 2048,
        rollup_every: float = 10.0,
        rollup_retention: float = 3600.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.retention = float(retention)
        self.max_points = int(max_points)
        self.rollup_every = float(rollup_every)
        self.rollup_retention = float(rollup_retention)
        self.clock = clock
        self._series: Dict[Tuple, _Series] = {}
        self._lock = threading.Lock()

    # -- writes ------------------------------------------------------------
    def observe(
        self,
        name: str,
        labels: Optional[Dict[str, Any]] = None,
        value: float = 0.0,
        ts: Optional[float] = None,
    ) -> None:
        """Record one sample; evicts raw points older than retention."""
        now = self.clock() if ts is None else float(ts)
        value = float(value)
        key = series_key(name, labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                canon = (
                    {str(k): str(v) for k, v in labels.items()}
                    if labels
                    else {}
                )
                series = _Series(name, canon, self.max_points)
                self._series[key] = series
            series.points.append((now, value))
            series.observed += 1
            bucket = now - (now % self.rollup_every)
            agg = series.rollups.get(bucket)
            if agg is None:
                series.rollups[bucket] = [value, value, value, 1.0]
            else:
                if value < agg[0]:
                    agg[0] = value
                if value > agg[1]:
                    agg[1] = value
                agg[2] += value
                agg[3] += 1.0
            self._evict_locked(series, now)

    def _evict_locked(self, series: _Series, now: float) -> None:
        horizon = now - self.retention
        points = series.points
        while points and points[0][0] < horizon:
            points.popleft()
        if series.rollups:
            roll_horizon = now - self.rollup_retention
            stale = [b for b in series.rollups if b < roll_horizon]
            for b in stale:
                del series.rollups[b]

    # -- reads -------------------------------------------------------------
    def _get(self, name: str, labels: Optional[Dict[str, Any]]) -> Optional[_Series]:
        return self._series.get(series_key(name, labels))

    def latest(
        self, name: str, labels: Optional[Dict[str, Any]] = None
    ) -> Optional[float]:
        with self._lock:
            series = self._get(name, labels)
            if series is None or not series.points:
                return None
            return series.points[-1][1]

    def range_query(
        self,
        name: str,
        labels: Optional[Dict[str, Any]] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> List[Tuple[float, float]]:
        """Raw ``(ts, value)`` points within ``[start, end]``, time-ordered."""
        with self._lock:
            series = self._get(name, labels)
            if series is None:
                return []
            return [
                (ts, v)
                for ts, v in series.points
                if (start is None or ts >= start)
                and (end is None or ts <= end)
            ]

    def rollup_query(
        self,
        name: str,
        labels: Optional[Dict[str, Any]] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> List[Tuple[float, float, float, float, int]]:
        """Downsampled ``(bucket_ts, min, max, mean, count)`` aggregates."""
        with self._lock:
            series = self._get(name, labels)
            if series is None:
                return []
            out = []
            for bucket in sorted(series.rollups):
                if start is not None and bucket + self.rollup_every < start:
                    continue
                if end is not None and bucket > end:
                    continue
                mn, mx, total, n = series.rollups[bucket]
                out.append((bucket, mn, mx, total / n if n else 0.0, int(n)))
            return out

    def rate(
        self,
        name: str,
        labels: Optional[Dict[str, Any]] = None,
        window: float = 60.0,
        now: Optional[float] = None,
    ) -> float:
        """Per-second increase of a cumulative counter over ``window``.

        Counter resets (a value *dropping*, e.g. across a shard restart)
        contribute the post-reset value rather than a negative delta —
        the standard Prometheus ``rate()`` semantics.
        """
        now = self.clock() if now is None else now
        points = self.range_query(name, labels, start=now - window, end=now)
        if len(points) < 2:
            return 0.0
        increase = 0.0
        prev = points[0][1]
        for _, value in points[1:]:
            increase += value - prev if value >= prev else value
            prev = value
        elapsed = points[-1][0] - points[0][0]
        return increase / elapsed if elapsed > 0 else 0.0

    def increase(
        self,
        name: str,
        labels: Optional[Dict[str, Any]] = None,
        window: float = 60.0,
        now: Optional[float] = None,
    ) -> float:
        """Reset-aware total increase of a counter over ``window``."""
        now = self.clock() if now is None else now
        points = self.range_query(name, labels, start=now - window, end=now)
        if len(points) < 2:
            return 0.0
        total = 0.0
        prev = points[0][1]
        for _, value in points[1:]:
            total += value - prev if value >= prev else value
            prev = value
        return total

    # -- listings ----------------------------------------------------------
    def series(self) -> List[Dict[str, Any]]:
        """All series: name, labels, point/rollup counts, latest value."""
        with self._lock:
            out = []
            for series in self._series.values():
                latest = series.points[-1] if series.points else None
                out.append(
                    {
                        "name": series.name,
                        "labels": dict(series.labels),
                        "points": len(series.points),
                        "rollups": len(series.rollups),
                        "observed": series.observed,
                        "latest": latest[1] if latest else None,
                        "latest_ts": latest[0] if latest else None,
                    }
                )
            out.sort(key=lambda s: (s["name"], sorted(s["labels"].items())))
            return out

    def match(self, name: str, **label_filter: Any) -> List[Dict[str, str]]:
        """Label sets of series named ``name`` matching the filter subset."""
        with self._lock:
            out = []
            for series in self._series.values():
                if series.name != name:
                    continue
                if all(
                    series.labels.get(k) == str(v)
                    for k, v in label_filter.items()
                ):
                    out.append(dict(series.labels))
            return out


# ---------------------------------------------------------------------------
# SLOs and burn-rate alerting
# ---------------------------------------------------------------------------


class BurnWindow:
    """One multi-window burn-rate rule: fire when BOTH windows burn hot."""

    __slots__ = ("short_s", "long_s", "factor", "severity")

    def __init__(
        self, short_s: float, long_s: float, factor: float, severity: str
    ) -> None:
        self.short_s = float(short_s)
        self.long_s = float(long_s)
        self.factor = float(factor)
        self.severity = severity

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BurnWindow({self.short_s:g}s/{self.long_s:g}s "
            f"x{self.factor:g} -> {self.severity})"
        )


#: SRE-workbook defaults: fast pair pages, slow pair files a ticket.
DEFAULT_WINDOWS = (
    BurnWindow(300.0, 3600.0, 14.4, "page"),
    BurnWindow(21600.0, 86400.0, 6.0, "ticket"),
)


class SLO:
    """One declarative objective evaluated against the metric store.

    Kinds:

    * ``availability`` — ``total_metric``/``error_metric`` are cumulative
      counters; the bad-event ratio is ``increase(error)/increase(total)``.
    * ``latency`` / ``gauge_ceiling`` — ``metric`` is a gauge series
      (e.g. a scraped p99 or a replication-lag reading); a sample is bad
      when it exceeds ``threshold``.

    ``objective`` is the good fraction promised (0.999 → 0.1% budget);
    the *burn rate* over a window is ``bad_ratio / (1 - objective)``.
    """

    __slots__ = (
        "name",
        "kind",
        "objective",
        "metric",
        "labels",
        "threshold",
        "total_metric",
        "error_metric",
        "description",
    )

    def __init__(
        self,
        name: str,
        kind: str,
        objective: float,
        metric: Optional[str] = None,
        labels: Optional[Dict[str, Any]] = None,
        threshold: Optional[float] = None,
        total_metric: Optional[str] = None,
        error_metric: Optional[str] = None,
        description: str = "",
    ) -> None:
        if kind not in ("availability", "latency", "gauge_ceiling"):
            raise ValueError(f"unknown SLO kind {kind!r}")
        if not 0.0 < objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if kind == "availability":
            if not (total_metric and error_metric):
                raise ValueError("availability SLO needs total/error metrics")
        elif metric is None or threshold is None:
            raise ValueError(f"{kind} SLO needs metric and threshold")
        self.name = name
        self.kind = kind
        self.objective = float(objective)
        self.metric = metric
        self.labels = dict(labels) if labels else None
        self.threshold = threshold
        self.total_metric = total_metric
        self.error_metric = error_metric
        self.description = description

    @property
    def budget(self) -> float:
        return 1.0 - self.objective

    def bad_ratio(
        self, store: MetricStore, window: float, now: float
    ) -> Optional[float]:
        """Fraction of bad events/samples in the window; None = no data."""
        if self.kind == "availability":
            total = store.increase(
                self.total_metric, self.labels, window=window, now=now
            )
            if total <= 0:
                return None
            errors = store.increase(
                self.error_metric, self.labels, window=window, now=now
            )
            return max(0.0, min(1.0, errors / total))
        points = store.range_query(
            self.metric, self.labels, start=now - window, end=now
        )
        if not points:
            return None
        bad = sum(1 for _, v in points if v > self.threshold)
        return bad / len(points)

    def burn_rate(
        self, store: MetricStore, window: float, now: float
    ) -> Optional[float]:
        ratio = self.bad_ratio(store, window, now)
        if ratio is None:
            return None
        return ratio / self.budget

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "objective": self.objective,
            "metric": self.metric,
            "labels": dict(self.labels) if self.labels else None,
            "threshold": self.threshold,
            "total_metric": self.total_metric,
            "error_metric": self.error_metric,
            "description": self.description,
        }


class Alert:
    """One typed alert transition (``firing`` or ``resolved``)."""

    __slots__ = ("slo", "severity", "state", "ts", "burn_short", "burn_long", "window")

    def __init__(
        self,
        slo: str,
        severity: str,
        state: str,
        ts: float,
        burn_short: float,
        burn_long: float,
        window: Tuple[float, float],
    ) -> None:
        self.slo = slo
        self.severity = severity
        self.state = state
        self.ts = ts
        self.burn_short = burn_short
        self.burn_long = burn_long
        self.window = window

    def to_dict(self) -> Dict[str, Any]:
        return {
            "slo": self.slo,
            "severity": self.severity,
            "state": self.state,
            "ts": self.ts,
            "burn_short": round(self.burn_short, 4),
            "burn_long": round(self.burn_long, 4),
            "window_s": list(self.window),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Alert({self.slo}/{self.severity} {self.state} "
            f"burn={self.burn_short:.1f}/{self.burn_long:.1f})"
        )


class SLOEngine:
    """Evaluates SLO burn rates over the store; logs alert transitions."""

    def __init__(
        self,
        store: MetricStore,
        slos: Iterable[SLO] = (),
        windows: Tuple[BurnWindow, ...] = DEFAULT_WINDOWS,
        time_scale: float = 1.0,
        max_alerts: int = 1000,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.store = store
        self.slos: List[SLO] = list(slos)
        self.windows = tuple(windows)
        self.time_scale = float(time_scale)
        self.max_alerts = max_alerts
        self.clock = clock
        self.alerts: List[Alert] = []
        self.alerts_total: Dict[Tuple[str, str], int] = {}
        self._firing: Dict[Tuple[str, str], Alert] = {}
        self._lock = threading.Lock()

    def add(self, slo: SLO) -> None:
        with self._lock:
            self.slos.append(slo)

    # -- evaluation --------------------------------------------------------
    def burn_rates(self, now: Optional[float] = None) -> Dict[str, Dict[str, float]]:
        """Current burn rate per SLO per (scaled) window, for display."""
        now = self.clock() if now is None else now
        out: Dict[str, Dict[str, float]] = {}
        for slo in list(self.slos):
            rates: Dict[str, float] = {}
            for bw in self.windows:
                for label, seconds in (
                    (f"{bw.short_s:g}s", bw.short_s),
                    (f"{bw.long_s:g}s", bw.long_s),
                ):
                    burn = slo.burn_rate(
                        self.store, seconds * self.time_scale, now
                    )
                    if burn is not None:
                        rates[label] = round(burn, 4)
            out[slo.name] = rates
        return out

    def evaluate(self, now: Optional[float] = None) -> List[Alert]:
        """One evaluation pass; returns newly-logged transitions."""
        now = self.clock() if now is None else now
        transitions: List[Alert] = []
        for slo in list(self.slos):
            for bw in self.windows:
                short = slo.burn_rate(
                    self.store, bw.short_s * self.time_scale, now
                )
                long_ = slo.burn_rate(
                    self.store, bw.long_s * self.time_scale, now
                )
                hot = (
                    short is not None
                    and long_ is not None
                    and short >= bw.factor
                    and long_ >= bw.factor
                )
                key = (slo.name, bw.severity)
                with self._lock:
                    firing = key in self._firing
                    if hot and not firing:
                        alert = Alert(
                            slo.name,
                            bw.severity,
                            "firing",
                            now,
                            short,
                            long_,
                            (bw.short_s, bw.long_s),
                        )
                        self._firing[key] = alert
                        self.alerts_total[key] = self.alerts_total.get(key, 0) + 1
                        self._log_locked(alert)
                        transitions.append(alert)
                    elif not hot and firing:
                        del self._firing[key]
                        alert = Alert(
                            slo.name,
                            bw.severity,
                            "resolved",
                            now,
                            short or 0.0,
                            long_ or 0.0,
                            (bw.short_s, bw.long_s),
                        )
                        self._log_locked(alert)
                        transitions.append(alert)
        return transitions

    def _log_locked(self, alert: Alert) -> None:
        self.alerts.append(alert)
        if len(self.alerts) > self.max_alerts:
            del self.alerts[: len(self.alerts) - self.max_alerts]

    def firing(self) -> List[Alert]:
        with self._lock:
            return list(self._firing.values())

    # -- exposition --------------------------------------------------------
    def prometheus_into(self, expo) -> None:
        """Emit the ``repro_slo_*`` family into an exporter accumulator."""
        expo.family(
            "repro_slo_objective",
            "gauge",
            "Declared good-fraction objective per SLO.",
        )
        for slo in list(self.slos):
            expo.sample(
                "repro_slo_objective",
                {"slo": slo.name, "kind": slo.kind},
                slo.objective,
            )
        expo.family(
            "repro_slo_burn_rate",
            "gauge",
            "Error-budget burn rate per SLO and window.",
        )
        for name, rates in self.burn_rates().items():
            for window, burn in rates.items():
                expo.sample(
                    "repro_slo_burn_rate",
                    {"slo": name, "window": window},
                    burn,
                )
        expo.family(
            "repro_slo_alert_firing",
            "gauge",
            "1 when the SLO alert is currently firing.",
        )
        with self._lock:
            firing_keys = set(self._firing)
            totals = dict(self.alerts_total)
        for slo in list(self.slos):
            for bw in self.windows:
                key = (slo.name, bw.severity)
                expo.sample(
                    "repro_slo_alert_firing",
                    {"slo": slo.name, "severity": bw.severity},
                    1 if key in firing_keys else 0,
                )
        expo.family(
            "repro_slo_alerts_total",
            "counter",
            "Alert firings per SLO and severity since start.",
        )
        for (name, severity), count in sorted(totals.items()):
            expo.sample(
                "repro_slo_alerts_total",
                {"slo": name, "severity": severity},
                count,
            )


# ---------------------------------------------------------------------------
# The plane: collectors + scrape loop + wire-safe snapshot
# ---------------------------------------------------------------------------


class ObservabilityPlane:
    """Feeds a :class:`MetricStore` from registered collectors.

    Collectors are ``fn(store, now)`` callables that read cheap existing
    snapshot surfaces and call ``store.observe``; a raising collector is
    counted (``collector_errors``) and skipped, never fatal.  The plane
    owns an optional background thread (``start()``/``stop()``) and the
    :class:`SLOEngine`, which it evaluates after every scrape.
    """

    def __init__(
        self,
        store: Optional[MetricStore] = None,
        slos: Iterable[SLO] = (),
        interval: float = 0.5,
        windows: Tuple[BurnWindow, ...] = DEFAULT_WINDOWS,
        time_scale: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.store = store if store is not None else MetricStore(clock=clock)
        self.engine = SLOEngine(
            self.store,
            slos,
            windows=windows,
            time_scale=time_scale,
            clock=clock,
        )
        self.interval = float(interval)
        self.clock = clock
        self.scrapes = 0
        self.collector_errors: Dict[str, int] = {}
        self._collectors: List[Tuple[str, Callable[[MetricStore, float], Any]]] = []
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    def add_collector(
        self,
        fn: Callable[[MetricStore, float], Any],
        name: Optional[str] = None,
    ) -> None:
        with self._lock:
            self._collectors.append((name or getattr(fn, "__name__", "collector"), fn))

    def scrape_once(self, now: Optional[float] = None) -> List[Alert]:
        """Run every collector then evaluate SLOs; returns transitions."""
        now = self.clock() if now is None else now
        with self._lock:
            collectors = list(self._collectors)
        for name, fn in collectors:
            try:
                fn(self.store, now)
            except Exception:  # noqa: BLE001 - a bad collector must not kill the loop
                self.collector_errors[name] = (
                    self.collector_errors.get(name, 0) + 1
                )
        self.scrapes += 1
        return self.engine.evaluate(now)

    # -- background loop ---------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-plane", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.scrape_once()

    def stop(self) -> None:
        thread, self._thread = self._thread, None
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)

    # -- export ------------------------------------------------------------
    def snapshot(self, points: int = 120) -> Dict[str, Any]:
        """Wire-safe dump: series tails, firing alerts, burn rates, log."""
        series_out = []
        for meta in self.store.series():
            tail = self.store.range_query(meta["name"], meta["labels"])
            series_out.append(
                {
                    "name": meta["name"],
                    "labels": meta["labels"],
                    "latest": meta["latest"],
                    "points": [
                        [round(ts, 4), value] for ts, value in tail[-points:]
                    ],
                }
            )
        return {
            "now": self.clock(),
            "scrapes": self.scrapes,
            "collector_errors": dict(self.collector_errors),
            "series": series_out,
            "slos": [s.to_dict() for s in list(self.engine.slos)],
            "burn_rates": self.engine.burn_rates(),
            "alerts_firing": [a.to_dict() for a in self.engine.firing()],
            "alert_log": [a.to_dict() for a in list(self.engine.alerts)],
        }

    def snapshot_json(self, points: int = 120) -> str:
        return json.dumps(self.snapshot(points))

    def prometheus_text(self) -> str:
        """The ``repro_slo_*`` family as Prometheus exposition text."""
        from repro.obs.exporters import _Expo

        expo = _Expo()
        self.engine.prometheus_into(expo)
        return expo.text()


# ---------------------------------------------------------------------------
# Stock collectors
# ---------------------------------------------------------------------------


def server_metrics_collector(
    snapshot_fn: Callable[[], Dict[str, Any]],
    labels: Optional[Dict[str, Any]] = None,
) -> Callable[[MetricStore, float], None]:
    """Collector over a ``ServerMetrics.snapshot()``-shaped callable.

    Feeds request counters/errors per op, per-kind query latency
    percentiles and counts, active sessions, resilience counters, and a
    roll-up ``server.latency.p99_ms`` gauge (worst kind) the stock
    latency SLO watches.
    """
    base = dict(labels) if labels else {}

    def collect(store: MetricStore, now: float) -> None:
        snap = snapshot_fn()
        total = errors = 0
        for op, counts in (snap.get("requests") or {}).items():
            n = int(counts.get("count", 0))
            e = int(counts.get("errors", 0))
            total += n
            errors += e
            store.observe(
                "server.requests", {**base, "op": op}, n, ts=now
            )
            store.observe(
                "server.request_errors", {**base, "op": op}, e, ts=now
            )
        store.observe("server.requests_total", base, total, ts=now)
        store.observe("server.request_errors_total", base, errors, ts=now)
        worst_p99 = 0.0
        for kind, q in (snap.get("queries") or {}).items():
            lat = q.get("latency") or {}
            klabels = {**base, "kind": kind}
            store.observe(
                "server.query.count", klabels, lat.get("count", 0), ts=now
            )
            store.observe(
                "server.query.p50_ms", klabels, lat.get("p50_ms", 0.0), ts=now
            )
            store.observe(
                "server.query.p99_ms", klabels, lat.get("p99_ms", 0.0), ts=now
            )
            store.observe(
                "server.query.rows", klabels, q.get("rows", 0), ts=now
            )
            worst_p99 = max(worst_p99, float(lat.get("p99_ms", 0.0)))
        store.observe("server.latency.p99_ms", base, worst_p99, ts=now)
        sessions = snap.get("sessions") or {}
        store.observe(
            "server.sessions.active", base, sessions.get("active", 0), ts=now
        )
        for event, count in (snap.get("resilience") or {}).items():
            store.observe(
                "cluster.resilience", {**base, "event": event}, count, ts=now
            )

    collect.__name__ = "server_metrics"
    return collect


def storage_collector(
    stats_fn: Callable[[], Dict[str, Any]],
    labels: Optional[Dict[str, Any]] = None,
) -> Callable[[MetricStore, float], None]:
    """Collector over a ``storage_stats()``-shaped callable (flat gauges)."""
    base = dict(labels) if labels else {}

    def collect(store: MetricStore, now: float) -> None:
        stats = stats_fn() or {}
        for key, value in stats.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                store.observe(f"storage.{key}", base, value, ts=now)

    collect.__name__ = "storage"
    return collect


def kernel_collector(
    labels: Optional[Dict[str, Any]] = None,
) -> Callable[[MetricStore, float], None]:
    """Collector over the process-wide geometry-kernel counters."""
    base = dict(labels) if labels else {}

    def collect(store: MetricStore, now: float) -> None:
        from repro.geometry import kernels

        for name, counts in kernels.counters().items():
            klabels = {**base, "kernel": name}
            store.observe(
                "kernel.calls", klabels, counts.get("calls", 0), ts=now
            )
            store.observe(
                "kernel.items", klabels, counts.get("items", 0), ts=now
            )

    collect.__name__ = "kernels"
    return collect


def default_cluster_slos(
    availability: float = 0.999,
    p99_ms: float = 250.0,
    lag_seconds: float = 2.0,
) -> List[SLO]:
    """The stock objectives the cluster plane evaluates out of the box."""
    return [
        SLO(
            "availability",
            kind="availability",
            objective=availability,
            total_metric="server.requests_total",
            error_metric="server.request_errors_total",
            description="fraction of wire requests answered without error",
        ),
        SLO(
            "p99-latency",
            kind="latency",
            objective=0.99,
            metric="server.latency.p99_ms",
            threshold=p99_ms,
            description=f"worst per-kind p99 stays under {p99_ms:g}ms",
        ),
        SLO(
            "replication-lag",
            kind="gauge_ceiling",
            objective=0.99,
            metric="cluster.replication.lag_seconds",
            threshold=lag_seconds,
            description=f"follower stays within {lag_seconds:g}s of the leader",
        ),
    ]
