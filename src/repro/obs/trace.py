"""Hierarchical trace spans with ``WorkMeter`` attribution.

A :class:`Span` measures one operator-level unit of work: it records
wall-clock bounds (``time.perf_counter``) for Perfetto rendering and,
when handed a :class:`~repro.engine.cost.WorkerContext` (or a bare
``WorkMeter``), the *delta* of simulated-work charges accrued while the
span was open.  Tracing never charges the meter itself — it only reads
``meter.counts`` at entry and exit — so a traced run is charge-identical
to an untraced one.

Spans form trees: each carries ``trace_id`` / ``span_id`` /
``parent_id`` plus free-form tags.  Parentage defaults to the innermost
open span *on the current thread*; cross-thread children (executor
tasks) pass ``parent=`` explicitly, and child-*process* spans are
serialised over the existing meter pipes and re-attached with
:meth:`Tracer.adopt`.

Traces also cross *machine* boundaries: :func:`wire_ctx` renders an
open span as a wire-safe ``trace_ctx`` dict (``{"trace": "<pid>-<id>",
"span": parent_span_id, "pid": parent_pid, "sampled": bool}``) that a
client ships inside a ``start`` request.  The receiving server opens
spans with ``remote=trace_ctx``: they join a *local* trace mapped
one-to-one from the wire trace id and carry ``_wire_parent`` /
``_wire_parent_pid`` tags, so that when their serialised form is later
:meth:`Tracer.adopt`-ed back on the originating process they re-parent
under the exact span that issued the context — not just whatever span
happened to be open at stitch time.  Foreign span ids are remapped
*stably* (keyed by ``(origin pid, span id)``), so a parent drained in a
later batch still connects to children drained earlier.

The disabled path is zero-overhead by construction: instrumentation
sites call the module-level :func:`span` helper, which returns a shared
no-op singleton after a single module-attribute test.  Enablement is
gated by the ``REPRO_TRACE`` env var (with every-Nth-trace sampling via
``REPRO_TRACE_SAMPLE``) or programmatically via :func:`enable` /
:func:`tracing`.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

TRACE_ENV = "REPRO_TRACE"
SAMPLE_ENV = "REPRO_TRACE_SAMPLE"

_FALSEY = ("", "0", "false", "off", "no")


def _env_enabled() -> bool:
    return os.environ.get(TRACE_ENV, "").strip().lower() not in _FALSEY


def _env_sample() -> int:
    raw = os.environ.get(SAMPLE_ENV, "").strip()
    try:
        return max(1, int(raw)) if raw else 1
    except ValueError:
        return 1


class Span:
    """One timed, metered unit of work inside a trace tree."""

    __slots__ = (
        "tracer",
        "name",
        "cat",
        "trace_id",
        "span_id",
        "parent_id",
        "tags",
        "sampled",
        "meter",
        "start_wall",
        "end_wall",
        "meter_delta",
        "pid",
        "tid",
        "_start_counts",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        *,
        cat: str = "",
        trace_id: int = 0,
        span_id: int = 0,
        parent_id: Optional[int] = None,
        tags: Optional[Dict[str, Any]] = None,
        sampled: bool = True,
        meter: Any = None,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.tags: Dict[str, Any] = tags or {}
        self.sampled = sampled
        self.meter = meter
        self.start_wall = 0.0
        self.end_wall = 0.0
        self.meter_delta: Dict[str, float] = {}
        self.pid = os.getpid()
        self.tid = threading.get_ident()
        self._start_counts: Optional[Dict[str, float]] = None

    # -- context manager ---------------------------------------------------
    def __enter__(self) -> "Span":
        self.start_wall = time.perf_counter()
        if self.meter is not None:
            self._start_counts = dict(self.meter.counts)
        self.tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end_wall = time.perf_counter()
        if self.meter is not None and self._start_counts is not None:
            start = self._start_counts
            delta: Dict[str, float] = {}
            for kind, total in self.meter.counts.items():
                diff = total - start.get(kind, 0.0)
                if diff:
                    delta[kind] = diff
            self.meter_delta = delta
        if exc_type is not None:
            self.tags.setdefault("error", repr(exc))
        self.tracer._pop(self)
        return False

    # -- stack-free lifecycle ----------------------------------------------
    def open(self) -> "Span":
        """Start the span WITHOUT pushing it on the thread-local stack.

        For long-lived spans owned by an object rather than a lexical
        scope (e.g. a server session span opened on the asyncio thread
        and finished from a pool thread at close).  Children must name
        it via ``parent=`` explicitly; it never becomes the thread
        default.  Pair with :meth:`finish`.
        """
        self.start_wall = time.perf_counter()
        if self.meter is not None:
            self._start_counts = dict(self.meter.counts)
        return self

    def finish(self, error: Any = None) -> None:
        """End a span started with :meth:`open` and record it."""
        self.end_wall = time.perf_counter()
        if self.meter is not None and self._start_counts is not None:
            start = self._start_counts
            delta: Dict[str, float] = {}
            for kind, total in self.meter.counts.items():
                diff = total - start.get(kind, 0.0)
                if diff:
                    delta[kind] = diff
            self.meter_delta = delta
        if error is not None:
            self.tags.setdefault("error", repr(error))
        self.tracer._record(self)

    # -- accessors ---------------------------------------------------------
    def set_tag(self, key: str, value: Any) -> None:
        self.tags[key] = value

    @property
    def wall_seconds(self) -> float:
        return max(0.0, self.end_wall - self.start_wall)

    def simulated_seconds(self, model) -> float:
        """Simulated seconds charged inside this span (sorted-kind sum)."""
        total = 0.0
        for kind in sorted(self.meter_delta):
            total += model.cost_of(kind) * self.meter_delta[kind]
        return total

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "cat": self.cat,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "tags": dict(self.tags),
            "start_wall": self.start_wall,
            "end_wall": self.end_wall,
            "meter_delta": dict(self.meter_delta),
            "pid": self.pid,
            "tid": self.tid,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span({self.name!r}, trace={self.trace_id}, id={self.span_id}, "
            f"parent={self.parent_id}, tags={self.tags})"
        )


class _NoopSpan:
    """Shared do-nothing span returned when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def open(self) -> "_NoopSpan":
        return self

    def finish(self, error: Any = None) -> None:
        pass

    def set_tag(self, key: str, value: Any) -> None:
        pass

    @property
    def tags(self) -> Dict[str, Any]:
        return {}

    @property
    def meter_delta(self) -> Dict[str, float]:
        return {}


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects finished spans; thread-safe; every-Nth-trace sampling."""

    def __init__(self, sample_every: int = 1, max_events: int = 20000) -> None:
        self.sample_every = max(1, int(sample_every))
        self.max_events = max_events
        self.spans: List[Span] = []
        self.events: List[Dict[str, Any]] = []
        self.dropped_events = 0
        self.sampled_out_traces = 0
        self._lock = threading.Lock()
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        self._trace_seq = 0
        self._local = threading.local()
        # Wire-format trace ids: a local trace id maps to exactly one
        # globally-unique string id ("<pid:x>-<trace:x>") and back, so a
        # trace that fans out over the wire reassembles into ONE tree.
        self._trace_to_wire: Dict[int, str] = {}
        self._wire_to_trace: Dict[str, int] = {}
        # span_id -> trace_id for every span minted here, letting adopt()
        # attach a remote child under a parent that already closed.
        self._trace_of_span: Dict[int, int] = {}
        # (origin pid, origin span id) -> local span id: stable remapping
        # so parents and children drained in different batches reconnect.
        self._foreign_ids: Dict[Any, int] = {}

    # -- per-thread span stack ---------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_span(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        # Tolerate cross-thread __exit__ (the span simply isn't on this
        # thread's stack); normal exits pop the innermost entry.
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - misnested exit
            stack.remove(span)
        if span.sampled:
            with self._lock:
                self.spans.append(span)

    def _record(self, span: Span) -> None:
        """Append a stack-free span (see :meth:`Span.finish`)."""
        if span.sampled:
            with self._lock:
                self.spans.append(span)

    # -- wire trace ids ----------------------------------------------------
    def wire_id_of(self, trace_id: int) -> str:
        """Globally-unique string id for a local trace (minting one once)."""
        with self._lock:
            return self._wire_id_of_locked(trace_id)

    def _wire_id_of_locked(self, trace_id: int) -> str:
        wire = self._trace_to_wire.get(trace_id)
        if wire is None:
            wire = f"{os.getpid():x}-{trace_id:x}"
            self._trace_to_wire[trace_id] = wire
            self._wire_to_trace[wire] = trace_id
        return wire

    def trace_for_wire(self, wire_id: str) -> int:
        """Local trace id bound to a wire id (allocating on first sight)."""
        with self._lock:
            return self._trace_for_wire_locked(wire_id)

    def _trace_for_wire_locked(self, wire_id: str) -> int:
        trace_id = self._wire_to_trace.get(wire_id)
        if trace_id is None:
            trace_id = next(self._trace_ids)
            self._wire_to_trace[wire_id] = trace_id
            self._trace_to_wire[trace_id] = wire_id
        return trace_id

    # -- span construction -------------------------------------------------
    def span(
        self,
        name: str,
        ctx: Any = None,
        *,
        cat: str = "",
        parent: Optional[Span] = None,
        remote: Optional[Dict[str, Any]] = None,
        **tags: Any,
    ) -> Span:
        """Open (but do not enter) a span; use as a context manager.

        ``ctx`` may be a ``WorkerContext`` (``.meter`` attribute) or a
        bare ``WorkMeter``; its charge counts are snapshotted at entry
        and diffed at exit into ``meter_delta``.

        ``remote`` is a ``trace_ctx`` dict produced by :func:`wire_ctx`
        on another process: the span becomes a local root of the trace
        bound to that wire id, tagged with its remote parent so a later
        :meth:`adopt` on the originating process re-parents it exactly.
        """
        meter = getattr(ctx, "meter", ctx) if ctx is not None else None
        if parent is None and remote is None:
            parent = self.current_span()
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
            sampled = parent.sampled
        elif remote is not None:
            parent_id = None
            sampled = bool(remote.get("sampled", True))
            trace_id = self.trace_for_wire(str(remote.get("trace")))
            tags = dict(tags)
            tags["_wire_parent"] = remote.get("span")
            tags["_wire_parent_pid"] = remote.get("pid")
        else:
            parent_id = None
            with self._lock:
                self._trace_seq += 1
                sampled = (self._trace_seq - 1) % self.sample_every == 0
                if not sampled:
                    self.sampled_out_traces += 1
                trace_id = next(self._trace_ids)
        with self._lock:
            span_id = next(self._span_ids)
            self._trace_of_span[span_id] = trace_id
        return Span(
            self,
            name,
            cat=cat,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            tags=tags,
            sampled=sampled,
            meter=meter,
        )

    def instant(self, name: str, **tags: Any) -> None:
        """Record a point event (e.g. a buffer-pool miss) under the
        innermost open span, capped at ``max_events``."""
        current = self.current_span()
        if current is not None and not current.sampled:
            return
        with self._lock:
            if len(self.events) >= self.max_events:
                self.dropped_events += 1
                return
            self.events.append(
                {
                    "name": name,
                    "ts": time.perf_counter(),
                    "trace_id": current.trace_id if current else 0,
                    "parent_id": current.span_id if current else None,
                    "tags": tags,
                    "pid": os.getpid(),
                    "tid": threading.get_ident(),
                }
            )

    # -- cross-process stitching -------------------------------------------
    def drain_serialized(self) -> List[Dict[str, Any]]:
        """Detach and return finished spans as dicts (child-process side).

        Spans belonging to a wire-bound trace carry their ``wire_trace``
        id so the adopting tracer lands them in the right local trace
        even when their in-batch parent is still open remotely.
        """
        with self._lock:
            spans, self.spans = self.spans, []
            out = []
            for s in spans:
                d = s.to_dict()
                wire = self._trace_to_wire.get(s.trace_id)
                if wire is not None:
                    d["wire_trace"] = wire
                out.append(d)
        return out

    def adopt(
        self,
        span_dicts: List[Dict[str, Any]],
        parent: Optional[Span] = None,
        **extra_tags: Any,
    ) -> List[Span]:
        """Re-attach serialised child-process spans into this tracer.

        Span ids are remapped into this tracer's id space, stably per
        ``(origin pid, span id)`` so a parent and its children reconnect
        even when drained in different batches.  Parent resolution, per
        span:

        * ``_wire_parent`` tags naming a span THIS process minted (the
          pid matches) pin the span — and its trace id — directly under
          that originating span, open or closed.
        * a ``parent_id`` already known from this or an earlier batch
          keeps the (remapped) pointer.
        * spans of a wire-bound trace keep a *reserved* local id for a
          not-yet-seen parent, connecting when it arrives.
        * anything else (e.g. a stack frame inherited across ``fork``)
          re-roots at ``parent``.
        """
        if parent is None:
            parent = self.current_span()
        parent_span_id = parent.span_id if parent is not None else None
        default_trace = parent.trace_id if parent is not None else None
        sampled = parent.sampled if parent is not None else True
        own_pid = os.getpid()
        adopted: List[Span] = []
        with self._lock:
            batch_ids = {
                (d.get("pid", 0), d["span_id"]): True for d in span_dicts
            }

            def local_id(pid: int, span_id: int) -> int:
                key = (pid, span_id)
                mapped = self._foreign_ids.get(key)
                if mapped is None:
                    mapped = next(self._span_ids)
                    self._foreign_ids[key] = mapped
                return mapped

            fallback_trace = default_trace
            for d in span_dicts:
                pid = d.get("pid", 0)
                tags = {**d.get("tags", {}), **extra_tags}
                wire = d.get("wire_trace")
                wire_parent = tags.pop("_wire_parent", None)
                wire_pid = tags.pop("_wire_parent_pid", None)
                orig_parent = d.get("parent_id")
                span_id = local_id(pid, d["span_id"])
                trace_id: Optional[int] = None
                if wire_parent is not None and wire_pid == own_pid:
                    # Child of a span minted here: pin it exactly there.
                    parent_id: Optional[int] = wire_parent
                    trace_id = self._trace_of_span.get(wire_parent)
                elif orig_parent is not None and (
                    (pid, orig_parent) in batch_ids
                    or (pid, orig_parent) in self._foreign_ids
                    or wire is not None
                ):
                    parent_id = local_id(pid, orig_parent)
                else:
                    parent_id = parent_span_id
                if wire is not None and trace_id is None:
                    trace_id = self._trace_for_wire_locked(wire)
                if trace_id is None:
                    if fallback_trace is None:
                        fallback_trace = next(self._trace_ids)
                    trace_id = fallback_trace
                self._trace_of_span[span_id] = trace_id
                span = Span(
                    self,
                    d["name"],
                    cat=d.get("cat", ""),
                    trace_id=trace_id,
                    span_id=span_id,
                    parent_id=parent_id,
                    tags=tags,
                    sampled=sampled,
                )
                span.start_wall = d["start_wall"]
                span.end_wall = d["end_wall"]
                span.meter_delta = dict(d.get("meter_delta", {}))
                span.pid = d.get("pid", span.pid)
                span.tid = d.get("tid", span.tid)
                adopted.append(span)
            if sampled:
                self.spans.extend(adopted)
        return adopted

    def spans_for_trace(self, trace_id: int) -> List[Span]:
        """Finished spans belonging to one trace, in record order."""
        with self._lock:
            return [s for s in self.spans if s.trace_id == trace_id]

    def find(self, name: str) -> List[Span]:
        """Finished spans with the given name (test/report convenience)."""
        with self._lock:
            return [s for s in self.spans if s.name == name]


# -- module-level fast path -----------------------------------------------
#
# Instrumentation sites do ``from repro.obs import trace`` then test
# ``trace.ENABLED`` (or just call ``trace.span`` which tests it).  The
# flag is re-read through the module attribute on every call, so
# enable()/disable() take effect immediately in all threads.

ENABLED: bool = False
_tracer: Optional[Tracer] = None
_state_lock = threading.Lock()


def enabled() -> bool:
    return ENABLED


def get_tracer() -> Optional[Tracer]:
    return _tracer


def enable(sample_every: Optional[int] = None, max_events: int = 20000) -> Tracer:
    """Install a fresh tracer and turn tracing on; returns the tracer."""
    global ENABLED, _tracer
    with _state_lock:
        _tracer = Tracer(
            sample_every=sample_every if sample_every is not None else _env_sample(),
            max_events=max_events,
        )
        ENABLED = True
        return _tracer


def disable() -> Optional[Tracer]:
    """Turn tracing off; returns the tracer with its collected spans."""
    global ENABLED, _tracer
    with _state_lock:
        tracer, _tracer = _tracer, None
        ENABLED = False
        return tracer


@contextmanager
def tracing(
    sample_every: int = 1, max_events: int = 20000
) -> Iterator[Tracer]:
    """Temporarily trace with a fresh tracer, restoring prior state.

    Used by ``EXPLAIN ANALYZE`` so per-operator attribution works even
    when ``REPRO_TRACE`` is unset.
    """
    global ENABLED, _tracer
    with _state_lock:
        prev_enabled, prev_tracer = ENABLED, _tracer
        tracer = Tracer(sample_every=sample_every, max_events=max_events)
        _tracer = tracer
        ENABLED = True
    try:
        yield tracer
    finally:
        with _state_lock:
            ENABLED, _tracer = prev_enabled, prev_tracer


def span(
    name: str,
    ctx: Any = None,
    parent: Optional[Span] = None,
    remote: Optional[Dict[str, Any]] = None,
    **tags: Any,
):
    """Open a span on the active tracer, or a shared no-op when disabled.

    ``parent`` overrides the innermost-open-span default — executors use
    it to attach worker-thread task spans under the submitting span.
    ``remote`` attaches the span under a wire ``trace_ctx`` from another
    process (see :func:`wire_ctx`).
    """
    if not ENABLED:
        return NOOP_SPAN
    tracer = _tracer
    if tracer is None:  # pragma: no cover - enable/disable race
        return NOOP_SPAN
    return tracer.span(name, ctx, parent=parent, remote=remote, **tags)


def wire_ctx(sp: Optional[Span] = None) -> Optional[Dict[str, Any]]:
    """Render a span (default: the innermost open one) as a ``trace_ctx``.

    The returned dict is wire-safe JSON: ``trace`` (globally-unique
    string id), ``span`` (the parent span id on the issuing process),
    ``pid`` (the issuing pid, so the eventual adopter can tell its own
    spans from a stranger's), and ``sampled``.  Returns ``None`` when
    tracing is off or no span is open.
    """
    if not ENABLED:
        return None
    tracer = _tracer
    if tracer is None:  # pragma: no cover - enable/disable race
        return None
    if sp is None:
        sp = tracer.current_span()
    if not isinstance(sp, Span):
        return None
    return {
        "trace": tracer.wire_id_of(sp.trace_id),
        "span": sp.span_id,
        "pid": sp.pid,
        "sampled": sp.sampled,
    }


def build_tree(span_dicts: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Assemble serialised spans into ``{"span":..., "children":[...]}``.

    Operates on the wire form (``to_dict()`` output) so clients can
    shape a ``trace.get`` payload without a tracer.  Spans whose parent
    is absent from the batch become roots; roots and siblings sort by
    start time.
    """
    nodes = {
        d["span_id"]: {"span": d, "children": []} for d in span_dicts
    }
    roots: List[Dict[str, Any]] = []
    for d in span_dicts:
        node = nodes[d["span_id"]]
        parent = nodes.get(d.get("parent_id"))
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)

    def _sort(items: List[Dict[str, Any]]) -> None:
        items.sort(key=lambda n: n["span"].get("start_wall", 0.0))
        for item in items:
            _sort(item["children"])

    _sort(roots)
    return roots


def instant(name: str, **tags: Any) -> None:
    """Record a point event when tracing is on; no-op otherwise."""
    if not ENABLED:
        return
    tracer = _tracer
    if tracer is not None:
        tracer.instant(name, **tags)


def current_span() -> Optional[Span]:
    tracer = _tracer
    return tracer.current_span() if (ENABLED and tracer is not None) else None


if _env_enabled():  # pragma: no cover - exercised via subprocess tests
    enable()
