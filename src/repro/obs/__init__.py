"""repro.obs: tracing, metrics exposition, and the observability plane.

Three parts:

* :mod:`repro.obs.trace` — hierarchical spans with ``WorkMeter`` deltas,
  a zero-overhead disabled path, wire-propagated trace contexts, and
  ``REPRO_TRACE`` gating.
* :mod:`repro.obs.exporters` — Chrome trace-event JSON (Perfetto),
  JSON-lines, and Prometheus-style text exposition + lint.
* :mod:`repro.obs.plane` — the in-process ring-buffer TSDB
  (:class:`~repro.obs.plane.MetricStore`), scrape-loop
  :class:`~repro.obs.plane.ObservabilityPlane`, and the SLO burn-rate
  engine with typed alerts.

``trace`` is imported eagerly (it depends only on the stdlib, so any
layer — storage, geometry, engine — can import :mod:`repro.obs` without
cycles); the exporters and the plane, which pull in heavier deps, load
lazily on first attribute access.
"""

from repro.obs import trace
from repro.obs.trace import (
    Span,
    Tracer,
    build_tree,
    current_span,
    disable,
    enable,
    enabled,
    get_tracer,
    instant,
    span,
    tracing,
    wire_ctx,
)

_EXPORTER_NAMES = (
    "aggregate_spans",
    "chrome_trace",
    "lint_prometheus",
    "prometheus_text",
    "spans_to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
)

_PLANE_NAMES = (
    "Alert",
    "MetricStore",
    "ObservabilityPlane",
    "SLO",
    "SLOEngine",
)

__all__ = [
    "Span",
    "Tracer",
    "build_tree",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "get_tracer",
    "instant",
    "span",
    "trace",
    "tracing",
    "wire_ctx",
    *_EXPORTER_NAMES,
    *_PLANE_NAMES,
]


def __getattr__(name):
    if name in _EXPORTER_NAMES:
        from repro.obs import exporters

        return getattr(exporters, name)
    if name in _PLANE_NAMES:
        from repro.obs import plane

        return getattr(plane, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
