"""repro.obs: tracing and metrics exposition for the simulated engine.

Two halves:

* :mod:`repro.obs.trace` — hierarchical spans with ``WorkMeter`` deltas,
  a zero-overhead disabled path, and ``REPRO_TRACE`` gating.
* :mod:`repro.obs.exporters` — Chrome trace-event JSON (Perfetto),
  JSON-lines, and Prometheus-style text exposition + lint.

``trace`` is imported eagerly (it depends only on the stdlib, so any
layer — storage, geometry, engine — can import :mod:`repro.obs` without
cycles); the exporters, which need :mod:`repro.engine.cost` for
simulated-seconds conversion, load lazily on first attribute access.
"""

from repro.obs import trace
from repro.obs.trace import (
    Span,
    Tracer,
    current_span,
    disable,
    enable,
    enabled,
    get_tracer,
    instant,
    span,
    tracing,
)

_EXPORTER_NAMES = (
    "aggregate_spans",
    "chrome_trace",
    "lint_prometheus",
    "prometheus_text",
    "spans_to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
)

__all__ = [
    "Span",
    "Tracer",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "get_tracer",
    "instant",
    "span",
    "trace",
    "tracing",
    *_EXPORTER_NAMES,
]


def __getattr__(name):
    if name in _EXPORTER_NAMES:
        from repro.obs import exporters

        return getattr(exporters, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
