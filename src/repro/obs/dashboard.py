"""Live cluster dashboard: terminal ``top`` view and HTML export.

Pure rendering over the wire-safe :meth:`ObservabilityPlane.snapshot
<repro.obs.plane.ObservabilityPlane.snapshot>` dict (plus the router's
``topology``/``health`` responses when available), so the shell's ``top``
command, the HTML exporter and the tests all share one code path and none
of them need a live cluster to render.

* :func:`spark` — a unicode sparkline (``▁▂▃▄▅▆▇█``) of a value series.
* :func:`render_top` — the ``python -m repro.shell top`` screen: topology
  with per-shard health and breaker state, replication lag, QPS and
  latency sparklines, SLO burn rates and firing alerts.
* :func:`render_html` — a self-contained HTML page of the same view
  (inline SVG sparklines, no external assets), for CI artifacts.
"""

from __future__ import annotations

import html
import json
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["spark", "series_points", "qps_from_points", "render_top", "render_html"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def spark(values: Sequence[float], width: int = 40) -> str:
    """Render ``values`` as a fixed-width unicode sparkline.

    Longer series are tail-truncated (the most recent ``width`` samples
    matter on a live screen); an empty series renders as spaces so the
    layout never jumps.
    """
    values = [float(v) for v in values][-width:]
    if not values:
        return " " * width
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        # Flat line: sit at the bottom unless the level itself is high.
        level = 0 if hi <= 0 else 3
        return (_BLOCKS[level] * len(values)).rjust(width)
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_BLOCKS) - 1))
        out.append(_BLOCKS[idx])
    return "".join(out).rjust(width)


def series_points(
    plane: Dict[str, Any],
    name: str,
    labels: Optional[Dict[str, Any]] = None,
) -> List[Tuple[float, float]]:
    """The ``(ts, value)`` tail of one series in a plane snapshot.

    ``labels=None`` matches the first series of that name (any labels);
    a dict matches exactly (string-compared, like the store's keys).
    """
    want = (
        None
        if labels is None
        else {str(k): str(v) for k, v in labels.items()}
    )
    for series in plane.get("series", []):
        if series["name"] != name:
            continue
        if want is not None and series.get("labels", {}) != want:
            continue
        return [(p[0], p[1]) for p in series.get("points", [])]
    return []


def _latest(plane: Dict[str, Any], name: str, labels=None) -> Optional[float]:
    points = series_points(plane, name, labels)
    return points[-1][1] if points else None


def qps_from_points(points: Sequence[Tuple[float, float]]) -> List[float]:
    """Per-second rates between consecutive samples of a counter series.

    Resets (value drops across a restart) clip to 0 rather than going
    negative — same convention as ``MetricStore.rate``.
    """
    out: List[float] = []
    for (t0, v0), (t1, v1) in zip(points, points[1:]):
        dt = t1 - t0
        if dt <= 0:
            continue
        out.append(max(0.0, (v1 - v0)) / dt)
    return out


def _shard_rows(
    plane: Dict[str, Any],
    topology: Optional[Dict[str, Any]],
    health: Optional[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """One merged row per shard: address, health state, breaker, lag."""
    shards: Dict[str, Dict[str, Any]] = {}

    def row(shard: str) -> Dict[str, Any]:
        return shards.setdefault(str(shard), {"shard": str(shard)})

    # Router topology reports a shard *count* (addresses are the router's
    # private handles); seed one row per shard so they render even before
    # any per-shard series exists.
    count = (topology or {}).get("shards")
    if isinstance(count, int):
        for shard in range(count):
            row(shard)
    for shard, state in ((topology or {}).get("breakers") or {}).items():
        row(shard).setdefault("breaker", state)
    breakers = (health or {}).get("breakers", {})
    for shard, status in breakers.items():
        r = row(shard)
        r["breaker"] = status.get("state")
        r["opens"] = status.get("opens")
    for shard, status in ((health or {}).get("health") or {}).items():
        row(shard)["state"] = status.get("state")
    for series in plane.get("series", []):
        shard = series.get("labels", {}).get("shard")
        if shard is None:
            continue
        r = row(shard)
        if series["name"] == "cluster.health.up" and "state" not in r:
            r["state"] = "up" if (series.get("latest") or 0) >= 1 else "down"
        if series["name"] == "cluster.breaker.state" and "breaker" not in r:
            code = series.get("latest")
            r["breaker"] = {0: "closed", 1: "open", 2: "half_open"}.get(
                int(code) if code is not None else -1, "?"
            )
        if series["name"] == "cluster.deadline_misses":
            r["deadline_misses"] = series.get("latest")
    return [shards[k] for k in sorted(shards, key=str)]


def _panels(
    plane: Dict[str, Any],
    topology: Optional[Dict[str, Any]] = None,
    health: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The computed view-model both renderers draw from."""
    requests = series_points(plane, "server.requests_total")
    qps = qps_from_points(requests)
    p50 = [v for _, v in series_points(plane, "server.latency.p50_ms")]
    if not p50:
        p50 = [v for _, v in series_points(plane, "server.query.p50_ms")]
    p99 = [v for _, v in series_points(plane, "server.latency.p99_ms")]
    lag_lsn = _latest(plane, "cluster.replication.lag_lsn")
    lag_s = _latest(plane, "cluster.replication.lag_seconds")
    lag_series = [v for _, v in series_points(plane, "cluster.replication.lag_seconds")]
    fanout = _latest(plane, "cluster.scatter.fanout")
    return {
        "shards": _shard_rows(plane, topology, health),
        "qps": qps,
        "p50": p50,
        "p99": p99,
        "lag_lsn": lag_lsn,
        "lag_seconds": lag_s,
        "lag_series": lag_series,
        "fanout": fanout,
        "slos": plane.get("slos", []),
        "burn_rates": plane.get("burn_rates", {}),
        "alerts": plane.get("alerts_firing", []),
        "collector_errors": plane.get("collector_errors", {}),
        "scrapes": plane.get("scrapes", 0),
    }


def _num(value: Optional[float], fmt: str = "{:.1f}") -> str:
    return "-" if value is None else fmt.format(value)


def render_top(
    plane: Dict[str, Any],
    topology: Optional[Dict[str, Any]] = None,
    health: Optional[Dict[str, Any]] = None,
    width: int = 40,
) -> str:
    """The terminal ``top`` screen as one string (no cursor control)."""
    p = _panels(plane, topology, health)
    lines: List[str] = []
    lines.append(
        f"repro cluster top — scrapes={p['scrapes']} "
        f"collector_errors={sum(p['collector_errors'].values()) or 0}"
    )
    lines.append("")
    lines.append("SHARDS")
    if p["shards"]:
        for r in p["shards"]:
            lines.append(
                f"  shard {r['shard']:>2}  "
                f"state={r.get('state', '?'):<7} "
                f"breaker={r.get('breaker', '?'):<9} "
                f"opens={r.get('opens', 0) or 0:<3} "
                f"deadline_misses={int(r.get('deadline_misses') or 0)}"
            )
    else:
        lines.append("  (no per-shard series yet)")
    lines.append("")
    lines.append(
        "REPLICATION  "
        f"lag_lsn={_num(p['lag_lsn'], '{:.0f}')} "
        f"lag_seconds={_num(p['lag_seconds'], '{:.3f}')}  "
        + spark(p["lag_series"], width)
    )
    lines.append(
        f"FAN-OUT      last_scatter_width={_num(p['fanout'], '{:.0f}')}"
    )
    lines.append("")
    qps_now = p["qps"][-1] if p["qps"] else None
    lines.append(f"QPS   {_num(qps_now, '{:8.1f}')}  " + spark(p["qps"], width))
    p50_now = p["p50"][-1] if p["p50"] else None
    p99_now = p["p99"][-1] if p["p99"] else None
    lines.append(f"p50ms {_num(p50_now, '{:8.2f}')}  " + spark(p["p50"], width))
    lines.append(f"p99ms {_num(p99_now, '{:8.2f}')}  " + spark(p["p99"], width))
    lines.append("")
    lines.append("SLOs")
    for slo in p["slos"]:
        burns = p["burn_rates"].get(slo["name"], {})
        burn_txt = " ".join(
            f"{window}={_num(rate, '{:.2f}')}"
            for window, rate in sorted(burns.items())
        )
        lines.append(
            f"  {slo['name']:<18} objective={slo['objective']:<8} "
            f"burn[{burn_txt}]"
        )
    if p["alerts"]:
        lines.append("")
        lines.append("ALERTS FIRING")
        for alert in p["alerts"]:
            lines.append(
                f"  [{alert['severity']:>6}] {alert['slo']} "
                f"burn_short={alert['burn_short']:.1f} "
                f"burn_long={alert['burn_long']:.1f}"
            )
    else:
        lines.append("")
        lines.append("ALERTS FIRING: none")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# HTML export
# ---------------------------------------------------------------------------


def _svg_spark(values: Sequence[float], w: int = 240, h: int = 36) -> str:
    """A tiny inline SVG polyline of ``values`` (no external assets)."""
    values = [float(v) for v in values]
    if not values:
        return f'<svg width="{w}" height="{h}"></svg>'
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    n = len(values)
    step = w / max(1, n - 1)
    points = " ".join(
        f"{i * step:.1f},{h - 2 - (v - lo) / span * (h - 4):.1f}"
        for i, v in enumerate(values)
    )
    return (
        f'<svg width="{w}" height="{h}">'
        f'<polyline fill="none" stroke="#2a7" stroke-width="1.5" '
        f'points="{points}"/></svg>'
    )


def render_html(
    plane: Dict[str, Any],
    topology: Optional[Dict[str, Any]] = None,
    health: Optional[Dict[str, Any]] = None,
    title: str = "repro cluster dashboard",
) -> str:
    """A self-contained HTML dashboard page (CI uploads this artifact)."""
    p = _panels(plane, topology, health)
    esc = html.escape
    rows = "".join(
        "<tr>"
        f"<td>{esc(str(r['shard']))}</td>"
        f"<td class={esc(str(r.get('state', 'unknown')))!r}>"
        f"{esc(str(r.get('state', '?')))}</td>"
        f"<td>{esc(str(r.get('breaker', '?')))}</td>"
        f"<td>{esc(str(r.get('opens', 0) or 0))}</td>"
        f"<td>{esc(str(int(r.get('deadline_misses') or 0)))}</td>"
        "</tr>"
        for r in p["shards"]
    )
    slo_rows = "".join(
        "<tr>"
        f"<td>{esc(slo['name'])}</td>"
        f"<td>{esc(str(slo['objective']))}</td>"
        f"<td>{esc(json.dumps(p['burn_rates'].get(slo['name'], {})))}</td>"
        "</tr>"
        for slo in p["slos"]
    )
    alerts = (
        "".join(
            f"<li class=alert>[{esc(a['severity'])}] {esc(a['slo'])} "
            f"burn {a['burn_short']:.1f}/{a['burn_long']:.1f}</li>"
            for a in p["alerts"]
        )
        or "<li>none</li>"
    )
    return f"""<!doctype html>
<html><head><meta charset="utf-8"><title>{esc(title)}</title>
<style>
 body {{ font: 13px/1.4 monospace; margin: 1.5em; color: #222; }}
 h2 {{ border-bottom: 1px solid #ccc; }}
 table {{ border-collapse: collapse; }}
 td, th {{ border: 1px solid #ccc; padding: 2px 8px; }}
 td.up {{ color: #2a7; }} td.down {{ color: #c22; }}
 li.alert {{ color: #c22; font-weight: bold; }}
</style></head><body>
<h1>{esc(title)}</h1>
<p>generated {esc(time.strftime('%Y-%m-%d %H:%M:%S'))} —
scrapes={p['scrapes']}</p>
<h2>Shards</h2>
<table><tr><th>shard</th><th>state</th><th>breaker</th><th>opens</th>
<th>deadline misses</th></tr>{rows}</table>
<h2>Replication</h2>
<p>lag_lsn={_num(p['lag_lsn'], '{:.0f}')}
lag_seconds={_num(p['lag_seconds'], '{:.3f}')}
{_svg_spark(p['lag_series'])}</p>
<h2>Traffic</h2>
<p>QPS {_svg_spark(p['qps'])}</p>
<p>p50 ms {_svg_spark(p['p50'])}</p>
<p>p99 ms {_svg_spark(p['p99'])}</p>
<h2>SLOs</h2>
<table><tr><th>slo</th><th>objective</th><th>burn rates</th></tr>
{slo_rows}</table>
<h2>Alerts firing</h2>
<ul>{alerts}</ul>
</body></html>
"""
