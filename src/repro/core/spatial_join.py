"""The ``spatial_join`` pipelined table function (paper §4).

Usage shape mirrors the paper's SQL rewrite::

    select count(*) from city_table a, river_table b
     where (a.rowid, b.rowid) in
           (select rid1, rid2 from TABLE(spatial_join(
                'city_table', 'city_geom', 'river_table', 'river_geom',
                'intersect')));

Evaluation is the start/fetch/close protocol of §4.2:

* **start** — load both R-tree indexes' metadata and push the subtree-root
  pairs onto a stack (the whole-tree pair ``(R1, S1)`` for the serial
  join; a partition of the level-k cross product for the parallel join).
* **fetch** — resume the synchronized index traversal from the stack,
  filling a *bounded candidate array* (its size models available memory),
  sort the array by first rowid, run the secondary filter, and return as
  many result rowid pairs as the fetch asks for.
* **close** — release the traversal stack, candidate array and caches.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from repro.errors import JoinError
from repro.engine.cursor import Cursor
from repro.obs import trace
from repro.engine.parallel import WorkerContext
from repro.engine.table_function import TableFunction
from repro.engine.types import Row
from repro.index.rtree.join import JoinStrategy, RTreeJoinCursor
from repro.index.rtree.node import RTreeNode
from repro.index.rtree.rtree import RTree
from repro.core.secondary_filter import (
    FetchOrder,
    JoinPredicate,
    SecondaryFilter,
)
from repro.engine.table import Table

__all__ = ["SpatialJoinFunction", "DEFAULT_CANDIDATE_ARRAY_SIZE", "JoinStats"]

DEFAULT_CANDIDATE_ARRAY_SIZE = 4096


@dataclass
class JoinStats:
    """Observability for one spatial_join instance."""

    candidate_pairs: int = 0
    result_pairs: int = 0
    mbr_tests: int = 0
    fetch_calls: int = 0
    cache_hit_ratio: float = 0.0


class SpatialJoinFunction(TableFunction):
    """Pipelined spatial join of two R-tree-indexed geometry columns.

    ``subtree_pair_cursor`` — when given — supplies ``(node_a, node_b)``
    rows (the output of crossing two ``subtree_root`` calls, §4.1); when
    omitted the function joins the full trees, the single-input-stream
    form the paper starts from.
    """

    def __init__(
        self,
        table_a: Table,
        column_a: str,
        tree_a: RTree,
        table_b: Table,
        column_b: str,
        tree_b: RTree,
        predicate: JoinPredicate = JoinPredicate(),
        subtree_pair_cursor: Optional[Cursor] = None,
        candidate_array_size: int = DEFAULT_CANDIDATE_ARRAY_SIZE,
        fetch_order: FetchOrder = FetchOrder.SORTED,
        cache_capacity: int = 4096,
        use_interior: bool = False,
        strategy: JoinStrategy = JoinStrategy.SWEEP,
        use_flat_arrays: bool = True,
        rng_seed: int = 0,
        use_batch: bool = True,
    ):
        super().__init__()
        if candidate_array_size < 1:
            raise JoinError(
                f"candidate array size must be >= 1, got {candidate_array_size}"
            )
        self.predicate = predicate
        self.candidate_array_size = candidate_array_size
        self.strategy = strategy
        self.use_flat_arrays = use_flat_arrays
        self._tree_a = tree_a
        self._tree_b = tree_b
        self._pair_cursor = subtree_pair_cursor
        self._filter = SecondaryFilter(
            table_a,
            column_a,
            table_b,
            column_b,
            predicate,
            fetch_order=fetch_order,
            cache_capacity=cache_capacity,
            rng_seed=rng_seed,
            use_interior=use_interior,
            use_batch=use_batch,
        )
        self._join: Optional[RTreeJoinCursor] = None
        self._out_buffer: Deque[Tuple] = deque()
        self.stats = JoinStats()

    # ------------------------------------------------------------------
    def _start(self, ctx: WorkerContext) -> None:
        # "In the start method, the metadata of the two R-tree indexes ...
        # is loaded and the subtree roots ... are pushed onto a stack."
        ctx.charge("rtree_node_visit", 2)  # the two metadata/root reads
        with trace.span("join.start", ctx, worker=ctx.worker_id) as sp:
            if self._pair_cursor is not None:
                pairs: List[Tuple[RTreeNode, RTreeNode]] = []
                for row in self._pair_cursor:
                    node_a, node_b = row[0], row[1]
                    if not isinstance(node_a, RTreeNode) or not isinstance(node_b, RTreeNode):
                        raise JoinError(
                            "subtree pair cursor must yield (RTreeNode, RTreeNode) rows"
                        )
                    pairs.append((node_a, node_b))
            else:
                if len(self._tree_a) == 0 or len(self._tree_b) == 0:
                    pairs = []
                else:
                    pairs = [(self._tree_a.root, self._tree_b.root)]
            sp.set_tag("root_pairs", len(pairs))
            self._join = RTreeJoinCursor(
                pairs,
                distance=self.predicate.distance,
                strategy=self.strategy,
                use_flat_arrays=self.use_flat_arrays,
            )

    def _fetch(self, ctx: WorkerContext, max_rows: int) -> List[Row]:
        assert self._join is not None
        self.stats.fetch_calls += 1
        with trace.span(
            "join.fetch", ctx, fetch=self.stats.fetch_calls, worker=ctx.worker_id
        ) as fetch_span:
            out: List[Row] = []
            # Serve leftovers from the previous candidate array first (FIFO,
            # preserving the secondary filter's emission order across fetches).
            while self._out_buffer and len(out) < max_rows:
                out.append(self._out_buffer.popleft())
            while len(out) < max_rows:
                # Fill the bounded candidate array by resuming the index join.
                with trace.span("join.primary_filter", ctx) as sweep_span:
                    nodes_before = self._join.nodes_visited
                    tests_before = self._join.pairs_tested
                    candidates = self._join.next_candidates(
                        self.candidate_array_size, ctx
                    )
                    sweep_span.set_tag("candidates", len(candidates))
                    sweep_span.set_tag(
                        "nodes_visited", self._join.nodes_visited - nodes_before
                    )
                    sweep_span.set_tag(
                        "mbr_tests", self._join.pairs_tested - tests_before
                    )
                if not candidates:
                    break
                self.stats.candidate_pairs += len(candidates)
                results = self._filter.process(candidates, ctx)
                self.stats.result_pairs += len(results)
                for pair in results:
                    if len(out) < max_rows:
                        out.append(pair)
                    else:
                        self._out_buffer.append(pair)
            self.stats.mbr_tests = self._join.pairs_tested
            self.stats.cache_hit_ratio = self._filter.cache.hit_ratio
            fetch_span.set_tag("rows", len(out))
        return out

    def _close(self, ctx: WorkerContext) -> None:
        # "memory resources are cleaned up in the subsequent close call"
        with trace.span(
            "join.close",
            ctx,
            worker=ctx.worker_id,
            candidate_pairs=self.stats.candidate_pairs,
            result_pairs=self.stats.result_pairs,
        ):
            self._join = None
            self._out_buffer = deque()
            self._filter.clear_caches()
