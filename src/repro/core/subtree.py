"""The ``subtree_root(index, level)`` table function (paper §4.1, Figure 1).

Descending an R-tree ``level`` steps below its root yields the roots of
that many independent subtrees.  The parallel spatial join feeds the
*cross product* of the two indexes' subtree roots, as a cursor, to the
parallel spatial_join function; each slave instance then joins its share
of subtree pairs.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.engine.parallel import WorkerContext
from repro.engine.table_function import TableFunction
from repro.engine.types import Row
from repro.index.rtree.node import RTreeNode
from repro.index.rtree.rtree import RTree

__all__ = ["SubtreeRootFunction", "subtree_roots", "subtree_pairs", "pick_descent_level"]


class SubtreeRootFunction(TableFunction):
    """Pipelined table function emitting one row per subtree root.

    Output rows are ``(node,)`` where ``node`` is the subtree's root
    handle; in the real system this is the node's rowid in the spatial
    index table, and here it is the node object itself (same information,
    no round-trip through the index table).
    """

    def __init__(self, tree: RTree, level: int):
        super().__init__()
        if level < 0:
            raise ValueError(f"descent level must be >= 0, got {level}")
        self.tree = tree
        self.level = level
        self._pending: List[RTreeNode] = []

    def _start(self, ctx: WorkerContext) -> None:
        ctx.charge("rtree_node_visit")  # metadata/root access
        self._pending = list(self.tree.subtree_roots(self.level))

    def _fetch(self, ctx: WorkerContext, max_rows: int) -> List[Row]:
        batch = self._pending[:max_rows]
        self._pending = self._pending[max_rows:]
        return [(node,) for node in batch]


def subtree_roots(
    tree: RTree, level: int, ctx: Optional[WorkerContext] = None
) -> List[RTreeNode]:
    """Materialised convenience form of :class:`SubtreeRootFunction`."""
    from repro.engine.table_function import collect

    rows = collect(SubtreeRootFunction(tree, level), ctx)
    return [row[0] for row in rows]


def subtree_pairs(
    tree_a: RTree,
    tree_b: RTree,
    level_a: int,
    level_b: int,
    ctx: Optional[WorkerContext] = None,
) -> List[Tuple[RTreeNode, RTreeNode]]:
    """Cross product of the two indexes' subtree roots (Figure 1).

    Pairs whose subtree MBRs cannot interact are still included — pruning
    happens inside the join traversal — but the pair list is the unit of
    parallel distribution, so its size (not its content) controls balance.
    """
    roots_a = subtree_roots(tree_a, level_a, ctx)
    roots_b = subtree_roots(tree_b, level_b, ctx)
    return [(a, b) for a in roots_a for b in roots_b]


def pick_descent_level(
    tree_a: RTree, tree_b: RTree, degree: int, min_pairs_per_slave: int = 2
) -> Tuple[int, int]:
    """Choose how deep to descend each tree for a given parallel degree.

    The paper: "we descend both trees as far below as to get appropriate
    number of subtree-joins."  We descend level by level (alternating the
    larger tree first) until the pair count reaches
    ``degree * min_pairs_per_slave`` or the leaf level stops progress.
    """
    level_a = level_b = 0
    target = max(1, degree * min_pairs_per_slave)

    def pairs(la: int, lb: int) -> int:
        return len(tree_a.subtree_roots(la)) * len(tree_b.subtree_roots(lb))

    while pairs(level_a, level_b) < target:
        can_a = level_a < tree_a.root.level
        can_b = level_b < tree_b.root.level
        if not can_a and not can_b:
            break
        # Descend the side currently contributing fewer subtrees.
        n_a = len(tree_a.subtree_roots(level_a))
        n_b = len(tree_b.subtree_roots(level_b))
        if can_a and (n_a <= n_b or not can_b):
            level_a += 1
        elif can_b:
            level_b += 1
    return level_a, level_b
