"""The secondary (exact-geometry) filter of the spatial join.

The primary filter produces candidate rowid pairs whose MBRs interact;
each candidate is resolved by fetching both geometries from their base
tables and evaluating the exact predicate (paper §4.2).

Fetch order matters: Shekhar et al. showed the optimal order is
NP-complete, and the paper adopts "sort the candidate pairs by the first
rowid", expected within ~20% of the best approximations.  Sorted order
makes first-table fetches sweep the heap near-sequentially and maximises
geometry-cache hits — which the :class:`GeometryCache` here makes
measurable (the fetch-order ablation bench compares SORTED vs RANDOM
through exactly this code path).
"""

from __future__ import annotations

import enum
import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.engine.parallel import WorkerContext
from repro.engine.table import Table
from repro.obs import trace
from repro.geometry import kernels
from repro.geometry.distance import within_distance
from repro.geometry.geometry import Geometry
from repro.geometry.interior import interior_rectangle
from repro.geometry.predicates import relate
from repro.index.rtree.join import CandidatePair
from repro.storage.heap import RowId

__all__ = ["FetchOrder", "GeometryCache", "SecondaryFilter", "JoinPredicate"]


class FetchOrder(enum.Enum):
    """Candidate processing order for the secondary filter."""

    SORTED = "SORTED"  # sort by first rowid (the paper's choice)
    RANDOM = "RANDOM"  # arbitrary order (the strawman the paper rejects)
    AS_PRODUCED = "AS_PRODUCED"  # whatever order the index join emitted


class GeometryCache:
    """Bounded LRU cache of fetched geometries, keyed by (table, rowid).

    A cache miss charges full fetch cost (``geom_fetch_base`` + per-vertex);
    a hit charges only a buffer-get.  The hit ratio is the mechanism by
    which candidate fetch order shows up in simulated time.
    """

    def __init__(self, capacity: int = 2048):
        self.capacity = max(1, capacity)
        self._entries: "OrderedDict[Tuple[str, RowId], Geometry]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def fetch(
        self, table: Table, rowid: RowId, column_index: int, ctx: Optional[WorkerContext]
    ) -> Geometry:
        key = (table.name, rowid)
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            if ctx is not None:
                ctx.charge("buffer_get_hit")
            return cached
        self.misses += 1
        # Routed through the table so columnar-resident rows are served
        # (and charged) from their chunk; heap rows keep the historical
        # geom_fetch charges.
        geom = table.fetch_geometry(rowid, column_index, ctx)
        self._entries[key] = geom
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return geom

    def touch(self, table: Table, rowid: RowId) -> None:
        """Refresh LRU recency of an entry known to be resident.

        No counters or charges — callers that batch-account a run of
        guaranteed hits use this to keep the eviction order identical to
        per-candidate fetching.
        """
        self._entries.move_to_end((table.name, rowid))

    def clear(self) -> None:
        self._entries.clear()


@dataclass(frozen=True)
class JoinPredicate:
    """The exact predicate a spatial join evaluates per candidate pair.

    ``mask`` follows ``sdo_relate`` semantics; ``distance > 0`` switches to
    within-distance semantics (distance 0 + ANYINTERACT is Table 1's
    "intersect" row).
    """

    mask: str = "ANYINTERACT"
    distance: float = 0.0

    def evaluate(self, g1: Geometry, g2: Geometry) -> bool:
        if self.distance > 0.0:
            return within_distance(g1, g2, self.distance)
        return relate(g1, g2, self.mask)


class SecondaryFilter:
    """Resolves candidate pairs to exact join results."""

    def __init__(
        self,
        table_a: Table,
        column_a: str,
        table_b: Table,
        column_b: str,
        predicate: JoinPredicate,
        fetch_order: FetchOrder = FetchOrder.SORTED,
        cache_capacity: int = 4096,
        rng_seed: int = 0,
        use_interior: bool = False,
        interior_cache_capacity: Optional[int] = None,
        use_batch: bool = True,
    ):
        self.table_a = table_a
        self.table_b = table_b
        self._col_a = table_a.schema.index_of(column_a)
        self._col_b = table_b.schema.index_of(column_b)
        self.predicate = predicate
        self.fetch_order = fetch_order
        self.cache = GeometryCache(cache_capacity)
        # The shuffle RNG is built lazily and only for RANDOM order, from an
        # explicit seed, so the fetch-order ablation is reproducible and the
        # common SORTED path pays nothing for it.
        self.rng_seed = rng_seed
        self._rng = None
        # Batch mode drains each run of candidates sharing a first rowid
        # through the vectorized kernels (one probe geometry, many
        # candidates).  Charges, statistics, result order and results are
        # identical to per-candidate evaluation on both kernel backends.
        self.use_batch = use_batch
        self.batched_candidates = 0
        self.candidates_seen = 0
        self.results_produced = 0
        # Interior-approximation fast-accept (SSTD'01, the paper's ref [21]):
        # only sound for plain intersection semantics.
        self.use_interior = use_interior and self._is_intersect_predicate()
        self.fast_accepts = 0
        # Interior rectangles get the same LRU discipline and capacity knob
        # as the geometry cache (defaulting to the same capacity) so one
        # long join cannot grow the cache without bound.
        self._interior_capacity = max(
            1,
            cache_capacity
            if interior_cache_capacity is None
            else interior_cache_capacity,
        )
        self._interior: "OrderedDict[Tuple[str, RowId], object]" = OrderedDict()

    def _is_intersect_predicate(self) -> bool:
        return self.predicate.distance == 0.0 and self.predicate.mask.upper() in (
            "ANYINTERACT",
            "INTERSECT",
        )

    def _interior_of(self, table: Table, rowid: RowId, column_index: int, ctx):
        """Interior rectangle for a row (cached; the real system stores
        these in the spatial index at creation time)."""
        key = (table.name, rowid)
        rect = self._interior.get(key)
        if rect is None:
            geom = self.cache.fetch(table, rowid, column_index, ctx)
            rect = interior_rectangle(geom)
            self._interior[key] = rect
            while len(self._interior) > self._interior_capacity:
                self._interior.popitem(last=False)
        else:
            self._interior.move_to_end(key)
        return rect

    def clear_caches(self) -> None:
        """Release both the geometry and interior-rectangle caches."""
        self.cache.clear()
        self._interior.clear()

    def order_candidates(self, candidates: List[CandidatePair]) -> List[CandidatePair]:
        if self.fetch_order is FetchOrder.SORTED:
            # Flat int key: same (page, slot) lexicographic order as
            # comparing the RowIds, without per-comparison dataclass calls.
            return sorted(
                candidates,
                key=lambda c: (c[0].page, c[0].slot, c[1].page, c[1].slot),
            )
        if self.fetch_order is FetchOrder.RANDOM:
            if self._rng is None:
                import random

                self._rng = random.Random(self.rng_seed)
            shuffled = list(candidates)
            self._rng.shuffle(shuffled)
            return shuffled
        return list(candidates)

    def process(
        self,
        candidates: List[CandidatePair],
        ctx: Optional[WorkerContext] = None,
    ) -> List[Tuple[RowId, RowId]]:
        """Evaluate one candidate array, returning the qualifying pairs."""
        with trace.span(
            "join.secondary_filter", ctx, candidates=len(candidates)
        ) as sp:
            results: List[Tuple[RowId, RowId]] = []
            if ctx is not None:
                # Ordering the array is itself work (paper §4.2 sorts it).
                n = len(candidates)
                if n > 1 and self.fetch_order is FetchOrder.SORTED:
                    ctx.charge("sort_per_item", n * math.log2(n))
            ordered = self.order_candidates(candidates)
            if self.use_batch:
                # Drain runs of candidates sharing a first rowid: the probe
                # geometry is fetched once per candidate (identical cache
                # charges) but the exact predicate is resolved for the whole
                # run in one kernel call.
                i, n = 0, len(ordered)
                while i < n:
                    j = i + 1
                    while j < n and ordered[j][0] == ordered[i][0]:
                        j += 1
                    self._process_run(ordered[i:j], results, ctx)
                    i = j
            else:
                for cand in ordered:
                    self._process_one(cand, results, ctx)
            self.results_produced += len(results)
            sp.set_tag("results", len(results))
            sp.set_tag("cache_hit_ratio", self.cache.hit_ratio)
        return results

    def _process_one(
        self,
        cand: CandidatePair,
        results: List[Tuple[RowId, RowId]],
        ctx: Optional[WorkerContext],
    ) -> None:
        rid_a, rid_b, mbr_a, mbr_b = cand
        self.candidates_seen += 1
        if self.use_interior and self._fast_accept(rid_a, rid_b, mbr_a, mbr_b, ctx):
            self.fast_accepts += 1
            results.append((rid_a, rid_b))
            if ctx is not None:
                ctx.charge("result_row")
            return
        g1 = self.cache.fetch(self.table_a, rid_a, self._col_a, ctx)
        g2 = self.cache.fetch(self.table_b, rid_b, self._col_b, ctx)
        if ctx is not None:
            ctx.charge("exact_test_base")
            ctx.charge("exact_test_per_vertex", g1.num_vertices + g2.num_vertices)
        if self.predicate.evaluate(g1, g2):
            results.append((rid_a, rid_b))
            if ctx is not None:
                ctx.charge("result_row")

    def _process_run(
        self,
        run: List[CandidatePair],
        results: List[Tuple[RowId, RowId]],
        ctx: Optional[WorkerContext],
    ) -> None:
        """Evaluate one first-rowid run, batching the exact predicate.

        Result order (and every charge / statistic) matches per-candidate
        evaluation: fast-accepted and batch-resolved pairs are merged back
        into candidate order before being appended.
        """
        n_run = len(run)
        # The probe row is shared by the whole run.  When no interior
        # fast-accept can intervene and the cache is large enough that the
        # probe cannot be evicted mid-run, its n-1 re-fetches are known
        # cache hits: account for them (and the per-candidate test charges)
        # in one step each instead of n-1 lookups and 4n charge calls.
        # The single recency refresh lands just before the final
        # candidate's second fetch — exactly where the per-candidate path
        # leaves the probe in the LRU order — so cache state, counters and
        # meter counts stay identical to per-candidate evaluation.
        if (
            not self.use_interior
            and n_run > 1
            and n_run + 2 <= self.cache.capacity
        ):
            self._process_run_folded(run, results, ctx)
            return
        slots: List[Optional[Tuple[RowId, RowId]]] = [None] * len(run)
        pending_idx: List[int] = []
        pending_geoms: List[Geometry] = []
        g1: Optional[Geometry] = None
        for k, (rid_a, rid_b, mbr_a, mbr_b) in enumerate(run):
            self.candidates_seen += 1
            if self.use_interior and self._fast_accept(rid_a, rid_b, mbr_a, mbr_b, ctx):
                self.fast_accepts += 1
                slots[k] = (rid_a, rid_b)
                if ctx is not None:
                    ctx.charge("result_row")
                continue
            g1 = self.cache.fetch(self.table_a, rid_a, self._col_a, ctx)
            g2 = self.cache.fetch(self.table_b, rid_b, self._col_b, ctx)
            if ctx is not None:
                ctx.charge("exact_test_base")
                ctx.charge("exact_test_per_vertex", g1.num_vertices + g2.num_vertices)
            pending_idx.append(k)
            pending_geoms.append(g2)
        if pending_idx:
            assert g1 is not None
            verdicts = None
            if len(pending_geoms) > 1:
                verdicts = kernels.evaluate_predicate_batch(
                    g1, pending_geoms, self.predicate.mask, self.predicate.distance
                )
                if verdicts is not None:
                    self.batched_candidates += len(pending_geoms)
            if verdicts is None:  # unsupported mask: scalar per candidate
                verdicts = [self.predicate.evaluate(g1, g) for g in pending_geoms]
            for k, ok in zip(pending_idx, verdicts):
                if ok:
                    slots[k] = (run[k][0], run[k][1])
                    if ctx is not None:
                        ctx.charge("result_row")
        for slot in slots:
            if slot is not None:
                results.append(slot)

    def _process_run_folded(
        self,
        run: List[CandidatePair],
        results: List[Tuple[RowId, RowId]],
        ctx: Optional[WorkerContext],
    ) -> None:
        """`_process_run` with the shared probe fetch folded out of the loop.

        Only entered when every candidate reaches the exact test (no
        interior fast-accepts) and the probe provably survives the run in
        the LRU cache, so each of its re-fetches is a certain hit.
        """
        n_run = len(run)
        self.candidates_seen += n_run
        cache = self.cache
        rid_a = run[0][0]
        g1 = cache.fetch(self.table_a, rid_a, self._col_a, ctx)
        cache.hits += n_run - 1
        fetch, table_b, col_b = cache.fetch, self.table_b, self._col_b
        g1_nv = g1.num_vertices
        geoms: List[Geometry] = []
        append = geoms.append
        nv = n_run * g1_nv
        last = n_run - 1
        for k, cand in enumerate(run):
            if k == last:
                cache.touch(self.table_a, rid_a)
            g2 = fetch(table_b, cand[1], col_b, ctx)
            append(g2)
            nv += g2.num_vertices
        if ctx is not None:
            ctx.charge("buffer_get_hit", n_run - 1)
            ctx.charge("exact_test_base", n_run)
            ctx.charge("exact_test_per_vertex", nv)
        verdicts = kernels.evaluate_predicate_batch(
            g1, geoms, self.predicate.mask, self.predicate.distance
        )
        if verdicts is not None:
            self.batched_candidates += n_run
        else:  # unsupported mask: scalar per candidate
            verdicts = [self.predicate.evaluate(g1, g) for g in geoms]
        n_hits = 0
        for k, ok in enumerate(verdicts):
            if ok:
                results.append((run[k][0], run[k][1]))
                n_hits += 1
        if n_hits and ctx is not None:
            ctx.charge("result_row", n_hits)

    def _fast_accept(self, rid_a, rid_b, mbr_a, mbr_b, ctx) -> bool:
        """Sound intersection certificates from interior approximations.

        * interior(a) intersects interior(b)  => geometries intersect;
        * interior(a) contains MBR(b)         => b lies inside a;
        * interior(b) contains MBR(a)         => a lies inside b.
        """
        int_a = self._interior_of(self.table_a, rid_a, self._col_a, ctx)
        int_b = self._interior_of(self.table_b, rid_b, self._col_b, ctx)
        if ctx is not None:
            ctx.charge("mbr_test", 3)
        if int_a.intersects(int_b):
            return True
        if int_a.contains(mbr_b):
            return True
        return int_b.contains(mbr_a)
