"""The secondary (exact-geometry) filter of the spatial join.

The primary filter produces candidate rowid pairs whose MBRs interact;
each candidate is resolved by fetching both geometries from their base
tables and evaluating the exact predicate (paper §4.2).

Fetch order matters: Shekhar et al. showed the optimal order is
NP-complete, and the paper adopts "sort the candidate pairs by the first
rowid", expected within ~20% of the best approximations.  Sorted order
makes first-table fetches sweep the heap near-sequentially and maximises
geometry-cache hits — which the :class:`GeometryCache` here makes
measurable (the fetch-order ablation bench compares SORTED vs RANDOM
through exactly this code path).
"""

from __future__ import annotations

import enum
import math
import random
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.engine.parallel import WorkerContext
from repro.engine.table import Table
from repro.geometry.distance import within_distance
from repro.geometry.geometry import Geometry
from repro.geometry.interior import interior_rectangle
from repro.geometry.predicates import relate
from repro.index.rtree.join import CandidatePair
from repro.storage.heap import RowId

__all__ = ["FetchOrder", "GeometryCache", "SecondaryFilter", "JoinPredicate"]


class FetchOrder(enum.Enum):
    """Candidate processing order for the secondary filter."""

    SORTED = "SORTED"  # sort by first rowid (the paper's choice)
    RANDOM = "RANDOM"  # arbitrary order (the strawman the paper rejects)
    AS_PRODUCED = "AS_PRODUCED"  # whatever order the index join emitted


class GeometryCache:
    """Bounded LRU cache of fetched geometries, keyed by (table, rowid).

    A cache miss charges full fetch cost (``geom_fetch_base`` + per-vertex);
    a hit charges only a buffer-get.  The hit ratio is the mechanism by
    which candidate fetch order shows up in simulated time.
    """

    def __init__(self, capacity: int = 2048):
        self.capacity = max(1, capacity)
        self._entries: "OrderedDict[Tuple[str, RowId], Geometry]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def fetch(
        self, table: Table, rowid: RowId, column_index: int, ctx: Optional[WorkerContext]
    ) -> Geometry:
        key = (table.name, rowid)
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            if ctx is not None:
                ctx.charge("buffer_get_hit")
            return cached
        self.misses += 1
        row = table.fetch(rowid)
        geom = row[column_index]
        if ctx is not None:
            ctx.charge("geom_fetch_base")
            ctx.charge("geom_fetch_per_vertex", geom.num_vertices)
        self._entries[key] = geom
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return geom

    def clear(self) -> None:
        self._entries.clear()


@dataclass(frozen=True)
class JoinPredicate:
    """The exact predicate a spatial join evaluates per candidate pair.

    ``mask`` follows ``sdo_relate`` semantics; ``distance > 0`` switches to
    within-distance semantics (distance 0 + ANYINTERACT is Table 1's
    "intersect" row).
    """

    mask: str = "ANYINTERACT"
    distance: float = 0.0

    def evaluate(self, g1: Geometry, g2: Geometry) -> bool:
        if self.distance > 0.0:
            return within_distance(g1, g2, self.distance)
        return relate(g1, g2, self.mask)


class SecondaryFilter:
    """Resolves candidate pairs to exact join results."""

    def __init__(
        self,
        table_a: Table,
        column_a: str,
        table_b: Table,
        column_b: str,
        predicate: JoinPredicate,
        fetch_order: FetchOrder = FetchOrder.SORTED,
        cache_capacity: int = 4096,
        rng_seed: int = 0,
        use_interior: bool = False,
        interior_cache_capacity: Optional[int] = None,
    ):
        self.table_a = table_a
        self.table_b = table_b
        self._col_a = table_a.schema.index_of(column_a)
        self._col_b = table_b.schema.index_of(column_b)
        self.predicate = predicate
        self.fetch_order = fetch_order
        self.cache = GeometryCache(cache_capacity)
        self._rng = random.Random(rng_seed)
        self.candidates_seen = 0
        self.results_produced = 0
        # Interior-approximation fast-accept (SSTD'01, the paper's ref [21]):
        # only sound for plain intersection semantics.
        self.use_interior = use_interior and self._is_intersect_predicate()
        self.fast_accepts = 0
        # Interior rectangles get the same LRU discipline and capacity knob
        # as the geometry cache (defaulting to the same capacity) so one
        # long join cannot grow the cache without bound.
        self._interior_capacity = max(
            1,
            cache_capacity
            if interior_cache_capacity is None
            else interior_cache_capacity,
        )
        self._interior: "OrderedDict[Tuple[str, RowId], object]" = OrderedDict()

    def _is_intersect_predicate(self) -> bool:
        return self.predicate.distance == 0.0 and self.predicate.mask.upper() in (
            "ANYINTERACT",
            "INTERSECT",
        )

    def _interior_of(self, table: Table, rowid: RowId, column_index: int, ctx):
        """Interior rectangle for a row (cached; the real system stores
        these in the spatial index at creation time)."""
        key = (table.name, rowid)
        rect = self._interior.get(key)
        if rect is None:
            geom = self.cache.fetch(table, rowid, column_index, ctx)
            rect = interior_rectangle(geom)
            self._interior[key] = rect
            while len(self._interior) > self._interior_capacity:
                self._interior.popitem(last=False)
        else:
            self._interior.move_to_end(key)
        return rect

    def clear_caches(self) -> None:
        """Release both the geometry and interior-rectangle caches."""
        self.cache.clear()
        self._interior.clear()

    def order_candidates(self, candidates: List[CandidatePair]) -> List[CandidatePair]:
        if self.fetch_order is FetchOrder.SORTED:
            return sorted(candidates, key=lambda c: (c[0], c[1]))
        if self.fetch_order is FetchOrder.RANDOM:
            shuffled = list(candidates)
            self._rng.shuffle(shuffled)
            return shuffled
        return list(candidates)

    def process(
        self,
        candidates: List[CandidatePair],
        ctx: Optional[WorkerContext] = None,
    ) -> List[Tuple[RowId, RowId]]:
        """Evaluate one candidate array, returning the qualifying pairs."""
        results: List[Tuple[RowId, RowId]] = []
        if ctx is not None:
            # Ordering the array is itself work (paper §4.2 sorts it).
            n = len(candidates)
            if n > 1 and self.fetch_order is FetchOrder.SORTED:
                ctx.charge("sort_per_item", n * math.log2(n))
        for rid_a, rid_b, mbr_a, mbr_b in self.order_candidates(candidates):
            self.candidates_seen += 1
            if self.use_interior and self._fast_accept(
                rid_a, rid_b, mbr_a, mbr_b, ctx
            ):
                self.fast_accepts += 1
                results.append((rid_a, rid_b))
                if ctx is not None:
                    ctx.charge("result_row")
                continue
            g1 = self.cache.fetch(self.table_a, rid_a, self._col_a, ctx)
            g2 = self.cache.fetch(self.table_b, rid_b, self._col_b, ctx)
            if ctx is not None:
                ctx.charge("exact_test_base")
                ctx.charge("exact_test_per_vertex", g1.num_vertices + g2.num_vertices)
            if self.predicate.evaluate(g1, g2):
                results.append((rid_a, rid_b))
                if ctx is not None:
                    ctx.charge("result_row")
        self.results_produced += len(results)
        return results

    def _fast_accept(self, rid_a, rid_b, mbr_a, mbr_b, ctx) -> bool:
        """Sound intersection certificates from interior approximations.

        * interior(a) intersects interior(b)  => geometries intersect;
        * interior(a) contains MBR(b)         => b lies inside a;
        * interior(b) contains MBR(a)         => a lies inside b.
        """
        int_a = self._interior_of(self.table_a, rid_a, self._col_a, ctx)
        int_b = self._interior_of(self.table_b, rid_b, self._col_b, ctx)
        if ctx is not None:
            ctx.charge("mbr_test", 3)
        if int_a.intersects(int_b):
            return True
        if int_a.contains(mbr_b):
            return True
        return int_b.contains(mbr_a)
