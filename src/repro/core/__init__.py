"""The paper's contribution: spatial_join table function, parallel index
creation, plus the nested-loop baseline it is compared against."""

from repro.core.index_build import (
    BuildReport,
    MbrLoadFunction,
    TessellateFunction,
    create_quadtree_parallel,
    create_rtree_parallel,
)
from repro.core.nested_loop import nested_loop_join
from repro.core.parallel_join import JoinResult, parallel_spatial_join, spatial_join
from repro.core.secondary_filter import (
    FetchOrder,
    GeometryCache,
    JoinPredicate,
    SecondaryFilter,
)
from repro.core.spatial_join import (
    DEFAULT_CANDIDATE_ARRAY_SIZE,
    JoinStats,
    SpatialJoinFunction,
)
from repro.core.subtree import (
    SubtreeRootFunction,
    pick_descent_level,
    subtree_pairs,
    subtree_roots,
)

__all__ = [
    "SpatialJoinFunction",
    "JoinStats",
    "DEFAULT_CANDIDATE_ARRAY_SIZE",
    "JoinPredicate",
    "FetchOrder",
    "GeometryCache",
    "SecondaryFilter",
    "spatial_join",
    "parallel_spatial_join",
    "JoinResult",
    "nested_loop_join",
    "SubtreeRootFunction",
    "subtree_roots",
    "subtree_pairs",
    "pick_descent_level",
    "BuildReport",
    "TessellateFunction",
    "MbrLoadFunction",
    "create_quadtree_parallel",
    "create_rtree_parallel",
]
