"""Grid-partitioned spatial join: space-oriented parallel decomposition.

The paper parallelises its join by crossing subtree roots of the two
R-trees (Figure 1, ``repro.core.subtree``).  That decomposition inherits
the *trees'* shapes: when the two indexes partition space differently, a
few subtree pairs carry most of the overlap work and the slaves serialise
behind them.  This module provides the alternative that "Parallel
In-Memory Evaluation of Spatial Joins" (Tsitsigkos et al.) shows winning
at high core counts — partition *space*, not the indexes:

1. **Tile** the joint MBR of both inputs into a uniform ``nx x ny`` grid
   (:class:`GridSpec`; shape chosen by
   :func:`repro.engine.cost.pick_grid_shape`).
2. **Assign** every geometry (its leaf-entry MBR, expanded by the join
   distance on one side) to each tile its MBR overlaps — the
   :func:`repro.geometry.kernels.tile_ranges_batch` kernel bins whole
   coordinate arrays at once.
3. **Sweep** each tile independently (:func:`tile_sweep`, the same
   min-x plane sweep the SWEEP strategy runs inside node pairs), so
   tiles become the demand-driven unit of parallel distribution
   (:class:`GridTileTask`).

Two-layer duplicate avoidance
-----------------------------
A geometry overlapping several tiles is *replicated* into each, so a
result pair whose MBRs overlap k tiles would be found k times.  Instead
of deduplicating after the fact, each replica carries a two-layer class
label ("Two-layer Space-oriented Partitioning for Non-point Data",
Tsitsigkos et al.): per axis, whether this tile is the **first** tile the
MBR overlaps (``xfirst`` / ``yfirst``).  In the classic A/B/C/D naming,

* **A** = xfirst and yfirst (the tile holds the MBR's low corner),
* **B** = xfirst only (the MBR enters this tile column from below),
* **C** = yfirst only (enters this tile row from the left),
* **D** = neither (passes through).

A pair found in a tile is emitted only when::

    (a.xfirst or b.xfirst) and (a.yfirst or b.yfirst)

i.e. for the class combinations A×{A,B,C,D}, {B,C,D}×A, B×C and C×B.
This holds in exactly one tile — the one containing the low corner of the
two MBRs' overlap region — so every result pair is produced exactly once
with **no dedup set**.  The proof is integer-exact: replica ranges are
the inclusive tile-index intervals ``[ix0..ix1] x [iy0..iy1]`` from
:func:`~repro.geometry.kernels.tile_ranges_batch`, the canonical tile is
``(max(a.ix0, b.ix0), max(a.iy0, b.iy0))`` (floor is monotone, so the
max of the two binned low corners *is* the bin of the max), and
``xfirst`` in tile ``ix`` is just ``ix == ix0`` — no floating-point
boundary case can split a pair across tiles.

Distance joins expand only the **b**-side MBRs by the join distance
during assignment (step 2): a pair within rectangle-distance ``d`` then
shares every tile that the a-MBR/expanded-b-MBR overlap covers, and the
canonical-tile argument applies to the expanded ranges.  The sweep still
tests the *original* coordinates, so the emitted candidate set is exactly
the SWEEP strategy's.
"""

from __future__ import annotations

import math
from array import array
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.engine.parallel import WorkerContext
from repro.errors import JoinError
from repro.geometry import kernels
from repro.geometry.mbr import MBR
from repro.obs import trace
from repro.storage.heap import RowId

__all__ = [
    "GridSpec",
    "TileEntries",
    "GridSweepStats",
    "GridStats",
    "build_grid_spec",
    "build_tiles",
    "tile_sweep",
    "GridJoinContext",
    "GridTileTask",
    "make_tile_tasks",
    "tile_range_of",
]

# (rowid_a, rowid_b, mbr_a, mbr_b) — same tuple the R-tree join emits.
CandidatePair = Tuple[RowId, RowId, MBR, MBR]


@dataclass(frozen=True)
class GridSpec:
    """A uniform ``nx x ny`` tiling of a bounding rectangle."""

    min_x: float
    min_y: float
    tile_w: float
    tile_h: float
    nx: int
    ny: int

    @property
    def tiles(self) -> int:
        return self.nx * self.ny

    def tile_id(self, ix: int, iy: int) -> int:
        return iy * self.nx + ix


def build_grid_spec(box: MBR, nx: int, ny: int) -> GridSpec:
    """Tile ``box`` (the joint MBR of both join inputs) ``nx x ny`` ways.

    Degenerate extents (a point dataset, a vertical line) get unit-size
    tiles on the flat axis so every coordinate still bins to tile 0.
    """
    if nx < 1 or ny < 1:
        raise JoinError(f"grid shape must be >= 1x1, got {nx}x{ny}")
    if box.is_empty:
        return GridSpec(0.0, 0.0, 1.0, 1.0, 1, 1)
    width = box.max_x - box.min_x
    height = box.max_y - box.min_y
    tile_w = width / nx if width > 0.0 else 1.0
    tile_h = height / ny if height > 0.0 else 1.0
    return GridSpec(box.min_x, box.min_y, tile_w, tile_h, nx, ny)


def tile_range_of(
    spec: GridSpec, mbr: MBR, expand: float = 0.0
) -> Tuple[int, int, int, int]:
    """The inclusive tile-index range ``(ix0, ix1, iy0, iy1)`` of one MBR.

    Runs the same :func:`~repro.geometry.kernels.tile_ranges_batch` kernel
    as :func:`build_tiles` on a one-element batch, so single-MBR routing
    decisions (which shard owns a row, which shards a window touches) bin
    **bit-identically** to the join's own replica assignment — the cluster
    layer's correctness leans on this equality.
    """
    ix0, ix1, iy0, iy1 = kernels.tile_ranges_batch(
        (
            array("d", [mbr.min_x]),
            array("d", [mbr.min_y]),
            array("d", [mbr.max_x]),
            array("d", [mbr.max_y]),
        ),
        (spec.min_x, spec.min_y),
        (spec.tile_w, spec.tile_h),
        (spec.nx, spec.ny),
        expand,
    )
    return int(ix0[0]), int(ix1[0]), int(iy0[0]), int(iy1[0])


class TileEntries:
    """The replicas of one join input assigned to one tile (struct of
    arrays, mirroring the R-tree node layout the sweep already reads)."""

    __slots__ = ("rowids", "mbrs", "x0", "y0", "x1", "y1", "xfirst", "yfirst")

    def __init__(self) -> None:
        self.rowids: List[RowId] = []
        self.mbrs: List[MBR] = []
        self.x0 = array("d")
        self.y0 = array("d")
        self.x1 = array("d")
        self.y1 = array("d")
        self.xfirst: List[bool] = []
        self.yfirst: List[bool] = []

    def add(self, rowid: RowId, mbr: MBR, xfirst: bool, yfirst: bool) -> None:
        self.rowids.append(rowid)
        self.mbrs.append(mbr)
        self.x0.append(mbr.min_x)
        self.y0.append(mbr.min_y)
        self.x1.append(mbr.max_x)
        self.y1.append(mbr.max_y)
        self.xfirst.append(xfirst)
        self.yfirst.append(yfirst)

    def __len__(self) -> int:
        return len(self.rowids)


def build_tiles(
    entries: Sequence[Tuple[MBR, RowId]],
    spec: GridSpec,
    expand: float = 0.0,
    ctx: Optional[WorkerContext] = None,
) -> Dict[int, TileEntries]:
    """Assign ``(mbr, rowid)`` entries to every tile their MBR overlaps.

    ``expand`` widens each MBR on all sides during *assignment only* (the
    within-distance slack applied to the b side of a distance join); the
    stored coordinates stay exact.  Returns only non-empty tiles.
    """
    n = len(entries)
    if ctx is not None:
        ctx.charge("grid_assign_per_entry", n)
    if n == 0:
        return {}
    x0s = array("d")
    y0s = array("d")
    x1s = array("d")
    y1s = array("d")
    for mbr, _rowid in entries:
        x0s.append(mbr.min_x)
        y0s.append(mbr.min_y)
        x1s.append(mbr.max_x)
        y1s.append(mbr.max_y)
    ix0, ix1, iy0, iy1 = kernels.tile_ranges_batch(
        (x0s, y0s, x1s, y1s),
        (spec.min_x, spec.min_y),
        (spec.tile_w, spec.tile_h),
        (spec.nx, spec.ny),
        expand,
    )
    tiles: Dict[int, TileEntries] = {}
    replicas = 0
    for i, (mbr, rowid) in enumerate(entries):
        a, b, c, d = ix0[i], ix1[i], iy0[i], iy1[i]
        for iy in range(c, d + 1):
            base = iy * spec.nx
            yf = iy == c
            for ix in range(a, b + 1):
                tile = tiles.get(base + ix)
                if tile is None:
                    tile = tiles[base + ix] = TileEntries()
                tile.add(rowid, mbr, ix == a, yf)
                replicas += 1
    if ctx is not None and replicas > n:
        # Routing each extra replica into its tile is partitioning work.
        ctx.charge("partition_per_row", replicas - n)
    return tiles


@dataclass
class GridSweepStats:
    """Counters one tile sweep (or a whole grid join) accumulates."""

    pairs_tested: int = 0
    pairs_emitted: int = 0
    duplicates_avoided: int = 0  # interacting pairs skipped as non-canonical

    def merge(self, other: "GridSweepStats") -> None:
        self.pairs_tested += other.pairs_tested
        self.pairs_emitted += other.pairs_emitted
        self.duplicates_avoided += other.duplicates_avoided


def tile_sweep(
    ta: TileEntries,
    tb: TileEntries,
    distance: float = 0.0,
    ctx: Optional[WorkerContext] = None,
    stats: Optional[GridSweepStats] = None,
) -> Iterator[CandidatePair]:
    """Plane-sweep one tile's replicas, emitting only canonical pairs.

    Identical mechanics to the SWEEP strategy's in-node sweep (min-x sort,
    x-window scan, y-gap test, exact squared corner-distance refinement
    when ``distance > 0``) plus the two-layer class gate before emission.
    Non-canonical interacting pairs charge ``grid_pair_skip`` — the
    integer comparison that replaces a dedup-set lookup.
    """
    na, nb = len(ta), len(tb)
    if na == 0 or nb == 0:
        return
    ax0, ay0, ax1, ay1 = ta.x0, ta.y0, ta.x1, ta.y1
    bx0, by0, bx1, by1 = tb.x0, tb.y0, tb.x1, tb.y1
    a_xf, a_yf = ta.xfirst, ta.yfirst
    b_xf, b_yf = tb.xfirst, tb.yfirst
    d = distance
    d2 = d * d

    ia = sorted(range(na), key=ax0.__getitem__)
    ib = sorted(range(nb), key=bx0.__getitem__)
    if ctx is not None:
        ctx.charge(
            "sweep_sort_per_item",
            na * math.log2(max(na, 2)) + nb * math.log2(max(nb, 2)),
        )

    i = j = 0
    while i < na and j < nb:
        if ax0[ia[i]] <= bx0[ib[j]]:
            idx = ia[i]
            x_hi, y_lo, y_hi = ax1[idx], ay0[idx], ay1[idx]
            k = j
            while k < nb:
                jdx = ib[k]
                if bx0[jdx] - x_hi > d:
                    break
                k += 1
                if stats is not None:
                    stats.pairs_tested += 1
                if ctx is not None:
                    ctx.charge("mbr_test")
                if by0[jdx] - y_hi > d or y_lo - by1[jdx] > d:
                    continue
                if d > 0.0:
                    dx = max(bx0[jdx] - x_hi, ax0[idx] - bx1[jdx], 0.0)
                    dy = max(by0[jdx] - y_hi, y_lo - by1[jdx], 0.0)
                    if dx * dx + dy * dy > d2:
                        continue
                if not (
                    (a_xf[idx] or b_xf[jdx]) and (a_yf[idx] or b_yf[jdx])
                ):
                    if stats is not None:
                        stats.duplicates_avoided += 1
                    if ctx is not None:
                        ctx.charge("grid_pair_skip")
                    continue
                if stats is not None:
                    stats.pairs_emitted += 1
                if ctx is not None:
                    ctx.charge("sweep_pair_emit")
                yield (ta.rowids[idx], tb.rowids[jdx], ta.mbrs[idx], tb.mbrs[jdx])
            i += 1
        else:
            jdx = ib[j]
            x_hi, y_lo, y_hi = bx1[jdx], by0[jdx], by1[jdx]
            k = i
            while k < na:
                idx = ia[k]
                if ax0[idx] - x_hi > d:
                    break
                k += 1
                if stats is not None:
                    stats.pairs_tested += 1
                if ctx is not None:
                    ctx.charge("mbr_test")
                if ay0[idx] - y_hi > d or y_lo - ay1[idx] > d:
                    continue
                if d > 0.0:
                    dx = max(ax0[idx] - x_hi, bx0[jdx] - ax1[idx], 0.0)
                    dy = max(ay0[idx] - y_hi, y_lo - ay1[idx], 0.0)
                    if dx * dx + dy * dy > d2:
                        continue
                if not (
                    (a_xf[idx] or b_xf[jdx]) and (a_yf[idx] or b_yf[jdx])
                ):
                    if stats is not None:
                        stats.duplicates_avoided += 1
                    if ctx is not None:
                        ctx.charge("grid_pair_skip")
                    continue
                if stats is not None:
                    stats.pairs_emitted += 1
                if ctx is not None:
                    ctx.charge("sweep_pair_emit")
                yield (ta.rowids[idx], tb.rowids[jdx], ta.mbrs[idx], tb.mbrs[jdx])
            j += 1


@dataclass
class GridStats:
    """Partitioning-time shape of one grid join (parent-side; per-tile
    sweep detail flows back through worker meters and trace spans)."""

    shape: Tuple[int, int] = (1, 1)
    tiles_nonempty: int = 0  # tiles holding replicas of *both* inputs
    tasks: int = 0
    entries_a: int = 0
    entries_b: int = 0
    replicas_a: int = 0
    replicas_b: int = 0
    max_tile_entries: int = 0
    mean_tile_entries: float = 0.0

    @property
    def tile_imbalance(self) -> float:
        """max/mean replica count over joinable tiles (a-priori skew)."""
        if self.mean_tile_entries <= 0.0:
            return 1.0
        return self.max_tile_entries / self.mean_tile_entries

    def as_dict(self) -> Dict[str, object]:
        return {
            "shape": list(self.shape),
            "tiles_nonempty": self.tiles_nonempty,
            "tasks": self.tasks,
            "entries_a": self.entries_a,
            "entries_b": self.entries_b,
            "replicas_a": self.replicas_a,
            "replicas_b": self.replicas_b,
            "max_tile_entries": self.max_tile_entries,
            "mean_tile_entries": round(self.mean_tile_entries, 2),
            "tile_imbalance": round(self.tile_imbalance, 3),
        }


class GridJoinContext:
    """Shared, picklable state for every tile task of one grid join.

    Holds the partitioned tiles plus everything a slave needs to run the
    secondary filter.  Filters are created lazily **per worker** (keyed by
    ``worker_id``) so a worker keeps its geometry cache warm across the
    many tiles it steals, exactly as a subtree-pair slave keeps one filter
    for its whole partition; the registry itself is dropped on pickle so
    spawn-style workers start clean.
    """

    __slots__ = (
        "table_a",
        "column_a",
        "table_b",
        "column_b",
        "predicate",
        "tiles_a",
        "tiles_b",
        "candidate_array_size",
        "fetch_order",
        "use_interior",
        "rng_seed",
        "use_batch",
        "_filters",
    )

    def __init__(
        self,
        table_a,
        column_a: str,
        table_b,
        column_b: str,
        predicate,
        tiles_a: Dict[int, TileEntries],
        tiles_b: Dict[int, TileEntries],
        candidate_array_size: int,
        fetch_order,
        use_interior: bool,
        rng_seed: int,
        use_batch: bool,
    ):
        self.table_a = table_a
        self.column_a = column_a
        self.table_b = table_b
        self.column_b = column_b
        self.predicate = predicate
        self.tiles_a = tiles_a
        self.tiles_b = tiles_b
        self.candidate_array_size = candidate_array_size
        self.fetch_order = fetch_order
        self.use_interior = use_interior
        self.rng_seed = rng_seed
        self.use_batch = use_batch
        self._filters: Dict[int, object] = {}

    def __getstate__(self):
        return {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot != "_filters"
        }

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)
        self._filters = {}

    def filter_for(self, worker_id: int):
        """This worker's secondary filter (created on first use)."""
        filt = self._filters.get(worker_id)
        if filt is None:
            from repro.core.secondary_filter import SecondaryFilter

            filt = SecondaryFilter(
                self.table_a,
                self.column_a,
                self.table_b,
                self.column_b,
                self.predicate,
                fetch_order=self.fetch_order,
                rng_seed=self.rng_seed,
                use_interior=self.use_interior,
                use_batch=self.use_batch,
            )
            self._filters[worker_id] = filt
        return filt


class GridTileTask:
    """One slave work unit: sweep + refine a run of tiles.

    A module-level class over picklable state (not a closure), like
    :class:`~repro.engine.table_function.PartitionTask`, so spawn-style
    process pools can ship tile work as well as fork-based ones.  Tasks
    are deliberately fine-grained — usually a single tile — so the
    executors' demand-driven queues steal around skewed tiles instead of
    serialising behind a static partition.
    """

    __slots__ = ("shared", "tile_ids")

    def __init__(self, shared: GridJoinContext, tile_ids: Sequence[int]):
        self.shared = shared
        self.tile_ids = list(tile_ids)

    def __call__(self, ctx: WorkerContext) -> List[Tuple[RowId, RowId]]:
        shared = self.shared
        filt = shared.filter_for(ctx.worker_id)
        distance = shared.predicate.distance
        cap = shared.candidate_array_size
        results: List[Tuple[RowId, RowId]] = []
        for tile_id in self.tile_ids:
            ta = shared.tiles_a.get(tile_id)
            tb = shared.tiles_b.get(tile_id)
            if ta is None or tb is None:
                continue
            stats = GridSweepStats()
            with trace.span(
                "grid.tile_sweep",
                ctx,
                tile=tile_id,
                entries_a=len(ta),
                entries_b=len(tb),
                worker=ctx.worker_id,
            ) as sp:
                candidates = list(tile_sweep(ta, tb, distance, ctx, stats))
                sp.set_tag("candidates", len(candidates))
                sp.set_tag("duplicates_avoided", stats.duplicates_avoided)
            # Respect the bounded candidate array (§4.2's memory model):
            # refine in slices, like the table function's fetch loop.
            for lo in range(0, len(candidates), cap):
                results.extend(filt.process(candidates[lo : lo + cap], ctx))
        return results


def make_tile_tasks(
    shared: GridJoinContext,
    stats: Optional[GridStats] = None,
    owned=None,
) -> List[GridTileTask]:
    """One task per joinable tile (present on both sides), in tile order.

    Task-list order is the result order — deterministic for any executor,
    since every executor returns results in submission order.  ``owned``
    (a set of tile ids) restricts the join to those tiles: a cluster
    shard sweeps only the tiles it owns, and because the canonical-tile
    rule makes each result pair's emitting tile unique, a partition of
    the tile space across shards partitions the result set exactly.
    """
    joinable = sorted(shared.tiles_a.keys() & shared.tiles_b.keys())
    if owned is not None:
        joinable = [t for t in joinable if t in owned]
    tasks = [GridTileTask(shared, [tile_id]) for tile_id in joinable]
    if stats is not None:
        stats.tasks = len(tasks)
        stats.tiles_nonempty = len(joinable)
        sizes = [
            len(shared.tiles_a[t]) + len(shared.tiles_b[t]) for t in joinable
        ]
        if sizes:
            stats.max_tile_entries = max(sizes)
            stats.mean_tile_entries = sum(sizes) / len(sizes)
    return tasks
