"""Parallel spatial join (paper §4.1).

The serial rewrite has a single input stream, so it cannot use
table-function parallelism.  The parallel form descends both R-trees to a
level that yields enough subtree-root pairs, feeds the cross product of
those roots through a cursor, and lets the engine partition that cursor
across N instances of the spatial_join function::

    select ... from TABLE(spatial_join(
        CURSOR(select * from table(subtree_root('city_idx', k)),
                        table(subtree_root('river_idx', k))),
        'city_table', 'city_geom', 'river_table', 'river_geom',
        'intersect'));

``parallel_spatial_join`` is the library-level driver for that plan; the
SQL front-end lowers the statement above onto it.

With ``strategy=JoinStrategy.GRID`` the driver partitions *space* instead
of the trees (:mod:`repro.core.grid_partition`): both inputs' leaf entries
are binned into a uniform grid over their joint MBR and each tile becomes
one demand-driven task, so skewed tiles are stolen around rather than
serialising a slave — the scale-out alternative to Figure 1's subtree
pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.engine.cost import WorkMeter, pick_grid_shape
from repro.engine.cursor import Cursor, ListCursor, PartitionMethod
from repro.engine.parallel import (
    ParallelExecutor,
    ParallelRun,
    SerialExecutor,
    WorkerContext,
)
from repro.engine.table import Table
from repro.engine.table_function import flatten_run, run_parallel
from repro.index.rtree.join import JoinStrategy
from repro.index.rtree.rtree import RTree
from repro.core.grid_partition import (
    GridJoinContext,
    GridStats,
    build_grid_spec,
    build_tiles,
    make_tile_tasks,
)
from repro.core.secondary_filter import FetchOrder, JoinPredicate
from repro.core.spatial_join import (
    DEFAULT_CANDIDATE_ARRAY_SIZE,
    SpatialJoinFunction,
)
from repro.core.subtree import pick_descent_level, subtree_pairs
from repro.obs import trace
from repro.storage.heap import RowId

__all__ = [
    "JoinResult",
    "SpatialJoinFactory",
    "spatial_join",
    "parallel_spatial_join",
    "grid_parallel_join",
]


@dataclass
class SpatialJoinFactory:
    """Picklable factory for :class:`SpatialJoinFunction` instances.

    ``run_parallel`` wraps each cursor partition in a
    :class:`~repro.engine.table_function.PartitionTask` holding this
    factory; keeping it a module-level class (instead of a closure) keeps
    those tasks pickling-safe for process-pool execution.  With
    ``use_pair_cursor=True`` each instance consumes its partition of the
    subtree-pair cursor (§4.1); otherwise instances join the full trees.
    """

    table_a: Table
    column_a: str
    tree_a: RTree
    table_b: Table
    column_b: str
    tree_b: RTree
    predicate: JoinPredicate
    candidate_array_size: int = DEFAULT_CANDIDATE_ARRAY_SIZE
    fetch_order: FetchOrder = FetchOrder.SORTED
    use_interior: bool = False
    strategy: JoinStrategy = JoinStrategy.SWEEP
    use_flat_arrays: bool = True
    use_pair_cursor: bool = False
    rng_seed: int = 0
    use_batch: bool = True

    def __call__(self, cursor: Cursor) -> SpatialJoinFunction:
        return SpatialJoinFunction(
            self.table_a,
            self.column_a,
            self.tree_a,
            self.table_b,
            self.column_b,
            self.tree_b,
            predicate=self.predicate,
            subtree_pair_cursor=cursor if self.use_pair_cursor else None,
            candidate_array_size=self.candidate_array_size,
            fetch_order=self.fetch_order,
            use_interior=self.use_interior,
            strategy=self.strategy,
            use_flat_arrays=self.use_flat_arrays,
            rng_seed=self.rng_seed,
            use_batch=self.use_batch,
        )


@dataclass
class JoinResult:
    """Rowid pairs plus the execution record of the join that produced them."""

    pairs: List[Tuple[RowId, RowId]]
    run: ParallelRun
    descent_levels: Tuple[int, int] = (0, 0)
    subtree_pair_count: int = 1
    #: fixed per-statement cost (parse/plan/execute), paid once regardless
    #: of strategy or degree
    statement_overhead_seconds: float = 0.0
    #: serial partitioning work done before the slaves start (the grid
    #: driver's assignment pass; zero for the subtree decomposition, whose
    #: descent cost the slaves themselves charge)
    partition_seconds: float = 0.0
    #: grid-partitioning shape/replication/skew record (GRID runs only)
    grid: Optional[GridStats] = None

    @property
    def makespan_seconds(self) -> float:
        return (
            self.run.makespan_seconds
            + self.statement_overhead_seconds
            + self.partition_seconds
        )

    @property
    def total_work_seconds(self) -> float:
        return (
            self.run.total_work_seconds
            + self.statement_overhead_seconds
            + self.partition_seconds
        )


def spatial_join(
    table_a: Table,
    column_a: str,
    tree_a: RTree,
    table_b: Table,
    column_b: str,
    tree_b: RTree,
    predicate: JoinPredicate = JoinPredicate(),
    candidate_array_size: int = DEFAULT_CANDIDATE_ARRAY_SIZE,
    fetch_order: FetchOrder = FetchOrder.SORTED,
    executor: Optional[ParallelExecutor] = None,
    use_interior: bool = False,
    strategy: JoinStrategy = JoinStrategy.SWEEP,
    use_flat_arrays: bool = True,
    rng_seed: int = 0,
    use_batch: bool = True,
) -> JoinResult:
    """Serial (single input stream) index-based spatial join.

    ``strategy`` selects the primary-filter pairing policy (plane sweep by
    default; ``JoinStrategy.NESTED`` restores the naive double loop).
    ``rng_seed`` seeds the RANDOM fetch-order shuffle; ``use_batch``
    toggles the kernels-backed batch secondary filter.
    """
    executor = executor or SerialExecutor()

    factory = SpatialJoinFactory(
        table_a,
        column_a,
        tree_a,
        table_b,
        column_b,
        tree_b,
        predicate=predicate,
        candidate_array_size=candidate_array_size,
        fetch_order=fetch_order,
        use_interior=use_interior,
        strategy=strategy,
        use_flat_arrays=use_flat_arrays,
        use_pair_cursor=False,
        rng_seed=rng_seed,
        use_batch=use_batch,
    )

    run = run_parallel(factory, ListCursor([()]), SerialExecutor(executor.cost_model))
    return JoinResult(
        pairs=flatten_run(run),
        run=run,
        statement_overhead_seconds=executor.cost_model.statement_overhead,
    )


def grid_parallel_join(
    table_a: Table,
    column_a: str,
    tree_a: RTree,
    table_b: Table,
    column_b: str,
    tree_b: RTree,
    executor: ParallelExecutor,
    predicate: JoinPredicate = JoinPredicate(),
    candidate_array_size: int = DEFAULT_CANDIDATE_ARRAY_SIZE,
    fetch_order: FetchOrder = FetchOrder.SORTED,
    use_interior: bool = False,
    rng_seed: int = 0,
    use_batch: bool = True,
    grid_shape: Optional[Tuple[int, int]] = None,
    spec=None,
    owned=None,
) -> JoinResult:
    """Space-oriented parallel join: grid partition + per-tile sweeps.

    The master bins both inputs' leaf entries into a uniform grid over
    their joint MBR (``grid_shape`` overrides the
    :func:`~repro.engine.cost.pick_grid_shape` heuristic), then hands one
    :class:`~repro.core.grid_partition.GridTileTask` per joinable tile to
    the executor's demand-driven queue.  Two-layer duplicate avoidance
    makes the union of tile outputs exactly the SWEEP/NESTED result set
    with no dedup pass.  The serial assignment cost is reported as
    ``partition_seconds`` (it precedes the slaves, so it adds to makespan).

    ``spec`` (a :class:`~repro.core.grid_partition.GridSpec`) overrides
    the locally derived grid entirely, and ``owned`` (a set of tile ids)
    restricts the join to those tiles — together they let a cluster shard
    run its slice of a *global* grid join: every shard bins against the
    same spec, sweeps only its owned tiles, and the canonical-tile rule
    guarantees the shards' outputs partition the full result set.
    """
    stats = GridStats()
    pmeter = WorkMeter()
    pctx = WorkerContext(0, pmeter)
    with trace.span("grid.partition", pctx, degree=executor.degree) as sp:
        # Workers resolve their tiles' candidates through the tables'
        # geometry caches, so compacted inputs are served from column
        # chunks (zero per-row decode) transparently; tag the span so a
        # trace shows which storage format fed the join.
        sp.set_tag(
            "columnar_a", table_a.columnar is not None
        )
        sp.set_tag(
            "columnar_b", table_b.columnar is not None
        )
        entries_a = list(tree_a.leaf_entries())
        entries_b = (
            entries_a if tree_b is tree_a else list(tree_b.leaf_entries())
        )
        if not entries_a or not entries_b:
            return JoinResult(
                pairs=[],
                run=executor.run([]),
                subtree_pair_count=0,
                statement_overhead_seconds=(
                    executor.cost_model.statement_overhead
                ),
                grid=stats,
            )
        if spec is None:
            box = tree_a.root.mbr.union(tree_b.root.mbr)
            nx, ny = grid_shape or pick_grid_shape(
                len(entries_a), len(entries_b), executor.degree
            )
            spec = build_grid_spec(box, nx, ny)
        tiles_a = build_tiles(entries_a, spec, 0.0, pctx)
        if entries_b is entries_a and predicate.distance == 0.0:
            tiles_b = tiles_a  # self-join: one assignment pass suffices
        else:
            tiles_b = build_tiles(entries_b, spec, predicate.distance, pctx)
        shared = GridJoinContext(
            table_a,
            column_a,
            table_b,
            column_b,
            predicate,
            tiles_a,
            tiles_b,
            candidate_array_size,
            fetch_order,
            use_interior,
            rng_seed,
            use_batch,
        )
        tasks = make_tile_tasks(shared, stats, owned=owned)
        stats.shape = (spec.nx, spec.ny)
        stats.entries_a = len(entries_a)
        stats.entries_b = len(entries_b)
        stats.replicas_a = sum(len(t) for t in tiles_a.values())
        stats.replicas_b = sum(len(t) for t in tiles_b.values())
        sp.set_tag("shape", f"{spec.nx}x{spec.ny}")
        sp.set_tag("tasks", stats.tasks)
        sp.set_tag("replicas", stats.replicas_a + stats.replicas_b)
        sp.set_tag("tile_imbalance", round(stats.tile_imbalance, 3))

    run = executor.run(tasks)
    return JoinResult(
        pairs=[pair for chunk in run.results if chunk for pair in chunk],
        run=run,
        subtree_pair_count=stats.tasks,
        statement_overhead_seconds=executor.cost_model.statement_overhead,
        partition_seconds=pmeter.seconds(executor.cost_model),
        grid=stats,
    )


def parallel_spatial_join(
    table_a: Table,
    column_a: str,
    tree_a: RTree,
    table_b: Table,
    column_b: str,
    tree_b: RTree,
    executor: ParallelExecutor,
    predicate: JoinPredicate = JoinPredicate(),
    candidate_array_size: int = DEFAULT_CANDIDATE_ARRAY_SIZE,
    fetch_order: FetchOrder = FetchOrder.SORTED,
    descent_levels: Optional[Tuple[int, int]] = None,
    min_pairs_per_slave: int = 2,
    use_interior: bool = False,
    strategy: JoinStrategy = JoinStrategy.SWEEP,
    use_flat_arrays: bool = True,
    rng_seed: int = 0,
    use_batch: bool = True,
) -> JoinResult:
    """Parallel spatial join over subtree-pair decomposition.

    ``descent_levels`` forces how deep each tree is descended; by default
    :func:`~repro.core.subtree.pick_descent_level` chooses levels that give
    at least ``min_pairs_per_slave`` subtree pairs per parallel slave.
    ``strategy=JoinStrategy.GRID`` replaces the subtree decomposition
    entirely with space-oriented grid partitioning
    (:func:`grid_parallel_join`); ``descent_levels`` does not apply there.
    """
    if strategy is JoinStrategy.GRID:
        return grid_parallel_join(
            table_a,
            column_a,
            tree_a,
            table_b,
            column_b,
            tree_b,
            executor,
            predicate=predicate,
            candidate_array_size=candidate_array_size,
            fetch_order=fetch_order,
            use_interior=use_interior,
            rng_seed=rng_seed,
            use_batch=use_batch,
        )
    if len(tree_a) == 0 or len(tree_b) == 0:
        return JoinResult(
            pairs=[],
            run=executor.run([]),
            subtree_pair_count=0,
            statement_overhead_seconds=executor.cost_model.statement_overhead,
        )

    if descent_levels is None:
        descent_levels = pick_descent_level(
            tree_a, tree_b, executor.degree, min_pairs_per_slave
        )
    level_a, level_b = descent_levels
    pairs = subtree_pairs(tree_a, tree_b, level_a, level_b)
    pair_rows = [(a, b) for a, b in pairs]

    factory = SpatialJoinFactory(
        table_a,
        column_a,
        tree_a,
        table_b,
        column_b,
        tree_b,
        predicate=predicate,
        candidate_array_size=candidate_array_size,
        fetch_order=fetch_order,
        use_interior=use_interior,
        strategy=strategy,
        use_flat_arrays=use_flat_arrays,
        use_pair_cursor=True,
        rng_seed=rng_seed,
        use_batch=use_batch,
    )

    run = run_parallel(
        factory, ListCursor(pair_rows), executor, method=PartitionMethod.ANY
    )
    return JoinResult(
        pairs=flatten_run(run),
        run=run,
        descent_levels=descent_levels,
        subtree_pair_count=len(pair_rows),
        statement_overhead_seconds=executor.cost_model.statement_overhead,
    )
