"""Parallel spatial join (paper §4.1).

The serial rewrite has a single input stream, so it cannot use
table-function parallelism.  The parallel form descends both R-trees to a
level that yields enough subtree-root pairs, feeds the cross product of
those roots through a cursor, and lets the engine partition that cursor
across N instances of the spatial_join function::

    select ... from TABLE(spatial_join(
        CURSOR(select * from table(subtree_root('city_idx', k)),
                        table(subtree_root('river_idx', k))),
        'city_table', 'city_geom', 'river_table', 'river_geom',
        'intersect'));

``parallel_spatial_join`` is the library-level driver for that plan; the
SQL front-end lowers the statement above onto it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.engine.cursor import Cursor, ListCursor, PartitionMethod
from repro.engine.parallel import ParallelExecutor, ParallelRun, SerialExecutor
from repro.engine.table import Table
from repro.engine.table_function import flatten_run, run_parallel
from repro.index.rtree.join import JoinStrategy
from repro.index.rtree.rtree import RTree
from repro.core.secondary_filter import FetchOrder, JoinPredicate
from repro.core.spatial_join import (
    DEFAULT_CANDIDATE_ARRAY_SIZE,
    SpatialJoinFunction,
)
from repro.core.subtree import pick_descent_level, subtree_pairs
from repro.storage.heap import RowId

__all__ = [
    "JoinResult",
    "SpatialJoinFactory",
    "spatial_join",
    "parallel_spatial_join",
]


@dataclass
class SpatialJoinFactory:
    """Picklable factory for :class:`SpatialJoinFunction` instances.

    ``run_parallel`` wraps each cursor partition in a
    :class:`~repro.engine.table_function.PartitionTask` holding this
    factory; keeping it a module-level class (instead of a closure) keeps
    those tasks pickling-safe for process-pool execution.  With
    ``use_pair_cursor=True`` each instance consumes its partition of the
    subtree-pair cursor (§4.1); otherwise instances join the full trees.
    """

    table_a: Table
    column_a: str
    tree_a: RTree
    table_b: Table
    column_b: str
    tree_b: RTree
    predicate: JoinPredicate
    candidate_array_size: int = DEFAULT_CANDIDATE_ARRAY_SIZE
    fetch_order: FetchOrder = FetchOrder.SORTED
    use_interior: bool = False
    strategy: JoinStrategy = JoinStrategy.SWEEP
    use_flat_arrays: bool = True
    use_pair_cursor: bool = False
    rng_seed: int = 0
    use_batch: bool = True

    def __call__(self, cursor: Cursor) -> SpatialJoinFunction:
        return SpatialJoinFunction(
            self.table_a,
            self.column_a,
            self.tree_a,
            self.table_b,
            self.column_b,
            self.tree_b,
            predicate=self.predicate,
            subtree_pair_cursor=cursor if self.use_pair_cursor else None,
            candidate_array_size=self.candidate_array_size,
            fetch_order=self.fetch_order,
            use_interior=self.use_interior,
            strategy=self.strategy,
            use_flat_arrays=self.use_flat_arrays,
            rng_seed=self.rng_seed,
            use_batch=self.use_batch,
        )


@dataclass
class JoinResult:
    """Rowid pairs plus the execution record of the join that produced them."""

    pairs: List[Tuple[RowId, RowId]]
    run: ParallelRun
    descent_levels: Tuple[int, int] = (0, 0)
    subtree_pair_count: int = 1
    #: fixed per-statement cost (parse/plan/execute), paid once regardless
    #: of strategy or degree
    statement_overhead_seconds: float = 0.0

    @property
    def makespan_seconds(self) -> float:
        return self.run.makespan_seconds + self.statement_overhead_seconds

    @property
    def total_work_seconds(self) -> float:
        return self.run.total_work_seconds + self.statement_overhead_seconds


def spatial_join(
    table_a: Table,
    column_a: str,
    tree_a: RTree,
    table_b: Table,
    column_b: str,
    tree_b: RTree,
    predicate: JoinPredicate = JoinPredicate(),
    candidate_array_size: int = DEFAULT_CANDIDATE_ARRAY_SIZE,
    fetch_order: FetchOrder = FetchOrder.SORTED,
    executor: Optional[ParallelExecutor] = None,
    use_interior: bool = False,
    strategy: JoinStrategy = JoinStrategy.SWEEP,
    use_flat_arrays: bool = True,
    rng_seed: int = 0,
    use_batch: bool = True,
) -> JoinResult:
    """Serial (single input stream) index-based spatial join.

    ``strategy`` selects the primary-filter pairing policy (plane sweep by
    default; ``JoinStrategy.NESTED`` restores the naive double loop).
    ``rng_seed`` seeds the RANDOM fetch-order shuffle; ``use_batch``
    toggles the kernels-backed batch secondary filter.
    """
    executor = executor or SerialExecutor()

    factory = SpatialJoinFactory(
        table_a,
        column_a,
        tree_a,
        table_b,
        column_b,
        tree_b,
        predicate=predicate,
        candidate_array_size=candidate_array_size,
        fetch_order=fetch_order,
        use_interior=use_interior,
        strategy=strategy,
        use_flat_arrays=use_flat_arrays,
        use_pair_cursor=False,
        rng_seed=rng_seed,
        use_batch=use_batch,
    )

    run = run_parallel(factory, ListCursor([()]), SerialExecutor(executor.cost_model))
    return JoinResult(
        pairs=flatten_run(run),
        run=run,
        statement_overhead_seconds=executor.cost_model.statement_overhead,
    )


def parallel_spatial_join(
    table_a: Table,
    column_a: str,
    tree_a: RTree,
    table_b: Table,
    column_b: str,
    tree_b: RTree,
    executor: ParallelExecutor,
    predicate: JoinPredicate = JoinPredicate(),
    candidate_array_size: int = DEFAULT_CANDIDATE_ARRAY_SIZE,
    fetch_order: FetchOrder = FetchOrder.SORTED,
    descent_levels: Optional[Tuple[int, int]] = None,
    min_pairs_per_slave: int = 2,
    use_interior: bool = False,
    strategy: JoinStrategy = JoinStrategy.SWEEP,
    use_flat_arrays: bool = True,
    rng_seed: int = 0,
    use_batch: bool = True,
) -> JoinResult:
    """Parallel spatial join over subtree-pair decomposition.

    ``descent_levels`` forces how deep each tree is descended; by default
    :func:`~repro.core.subtree.pick_descent_level` chooses levels that give
    at least ``min_pairs_per_slave`` subtree pairs per parallel slave.
    """
    if len(tree_a) == 0 or len(tree_b) == 0:
        return JoinResult(
            pairs=[],
            run=executor.run([]),
            subtree_pair_count=0,
            statement_overhead_seconds=executor.cost_model.statement_overhead,
        )

    if descent_levels is None:
        descent_levels = pick_descent_level(
            tree_a, tree_b, executor.degree, min_pairs_per_slave
        )
    level_a, level_b = descent_levels
    pairs = subtree_pairs(tree_a, tree_b, level_a, level_b)
    pair_rows = [(a, b) for a, b in pairs]

    factory = SpatialJoinFactory(
        table_a,
        column_a,
        tree_a,
        table_b,
        column_b,
        tree_b,
        predicate=predicate,
        candidate_array_size=candidate_array_size,
        fetch_order=fetch_order,
        use_interior=use_interior,
        strategy=strategy,
        use_flat_arrays=use_flat_arrays,
        use_pair_cursor=True,
        rng_seed=rng_seed,
        use_batch=use_batch,
    )

    run = run_parallel(
        factory, ListCursor(pair_rows), executor, method=PartitionMethod.ANY
    )
    return JoinResult(
        pairs=flatten_run(run),
        run=run,
        descent_levels=descent_levels,
        subtree_pair_count=len(pair_rows),
        statement_overhead_seconds=executor.cost_model.statement_overhead,
    )
