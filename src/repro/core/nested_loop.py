"""The nested-loop spatial join baseline (paper §4, "first approach").

Before table functions, Oracle could only evaluate a spatial join by
iterating the first table and issuing one extensible-indexing probe of the
second table's index per row — because the framework returns rowids of a
single table at a time.  This module is that baseline, implemented
*through* the framework's :meth:`DomainIndex.fetch` so it pays exactly the
costs the paper attributes to it: a root-to-leaf descent per outer row and
no sharing of secondary-filter work across probes.

Each probe's window search runs over the R-tree's flat-array node layout
(:meth:`RTreeNode.coords`), so the baseline benefits from the cheaper
per-comparison MBR tests too — the charged work units (one ``mbr_test``
per entry per visited node, plus the fixed ``index_probe`` cost) are
unchanged, keeping the nested-loop's simulated numbers comparable across
releases.  What it can never share is work *between* probes, which is the
paper's point.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.engine.indextype import DomainIndex
from repro.engine.parallel import ParallelRun, SerialExecutor, WorkerContext
from repro.engine.table import Table
from repro.core.parallel_join import JoinResult
from repro.core.secondary_filter import JoinPredicate
from repro.storage.heap import RowId

__all__ = ["nested_loop_join"]


def nested_loop_join(
    outer_table: Table,
    outer_column: str,
    inner_index: DomainIndex,
    predicate: JoinPredicate = JoinPredicate(),
    executor: Optional[SerialExecutor] = None,
) -> JoinResult:
    """Join by probing ``inner_index`` once per row of ``outer_table``.

    Result pairs are (outer_rowid, inner_rowid).  The executor is serial —
    the nested loop is the pre-table-function plan, which had no access to
    operation-level parallelism.
    """
    executor = executor or SerialExecutor()

    def task(ctx: WorkerContext) -> List[Tuple[RowId, RowId]]:
        pairs: List[Tuple[RowId, RowId]] = []
        col_idx = outer_table.schema.index_of(outer_column)
        for outer_rowid, row in outer_table.scan():
            geom = row[col_idx]
            if geom is None:
                continue
            # Fetching the outer geometry is part of the per-row cost.
            ctx.charge("geom_fetch_base")
            ctx.charge("geom_fetch_per_vertex", geom.num_vertices)
            if predicate.distance > 0.0:
                probe = inner_index.fetch(
                    "SDO_WITHIN_DISTANCE", (geom, predicate.distance), ctx
                )
            else:
                probe = inner_index.fetch("SDO_RELATE", (geom, predicate.mask), ctx)
            for inner_rowid in probe:
                ctx.charge("result_row")
                pairs.append((outer_rowid, inner_rowid))
        return pairs

    run = executor.run([task])
    return JoinResult(
        pairs=run.results[0],
        run=run,
        subtree_pair_count=0,
        statement_overhead_seconds=executor.cost_model.statement_overhead,
    )
