"""Parallel spatial index creation via table functions (paper §5).

**Quadtree** (Figure 2): index creation is (1) tessellate every geometry
into tiles, inserting the tiles into the index table, then (2) build a
B-tree on the tile codes.  Tessellation dominates for complex polygons, so
:class:`TessellateFunction` is a *parallel* table function whose input
cursor (the geometry table) is partitioned across slaves; the B-tree is
then built with the parallel B-tree path (sorted runs merged).

**R-tree**: parallel table functions (1) load geometries and compute MBRs
and (2) cluster subtrees on each partition; a serial merge stitches the
subtrees (implemented in :mod:`repro.index.rtree.bulkload`).

Both drivers return a :class:`BuildReport` carrying the simulated makespan
(what Table 3 reports per processor count).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.engine.cursor import Cursor, PartitionMethod, partition_cursor
from repro.engine.parallel import (
    ParallelExecutor,
    ParallelRun,
    SerialExecutor,
    WorkerContext,
)
from repro.engine.table import Table
from repro.engine.table_function import TableFunction, pipeline
from repro.engine.types import Row
from repro.geometry.geometry import Geometry
from repro.index.quadtree.quadtree import QuadtreeIndex
from repro.index.quadtree.tessellate import tessellate
from repro.index.rtree.bulkload import merge_subtrees, str_pack
from repro.index.rtree.rtree import RTree
from repro.index.rtree.spatial_index import RTreeIndex
from repro.storage.btree import BPlusTree
from repro.storage.heap import RowId

__all__ = [
    "BuildReport",
    "TessellateFunction",
    "MbrLoadFunction",
    "create_quadtree_parallel",
    "create_rtree_parallel",
]


@dataclass
class BuildReport:
    """Execution record of one index creation."""

    kind: str
    degree: int
    run: ParallelRun
    rows_indexed: int = 0
    tiles_created: int = 0
    serial_tail_seconds: float = 0.0  # merge/B-tree stitch after the barrier

    @property
    def makespan_seconds(self) -> float:
        return self.run.makespan_seconds + self.serial_tail_seconds

    @property
    def total_work_seconds(self) -> float:
        return self.run.total_work_seconds + self.serial_tail_seconds


class TessellateFunction(TableFunction):
    """Parallel table function: tessellate geometries from an input cursor.

    Input rows: ``(rowid, geometry)``.  Output rows: ``(tile_code, rowid,
    interior)`` — the rows inserted into the quadtree's index table
    (Figure 2's "Tesselate" boxes).
    """

    def __init__(self, input_cursor: Cursor, index: QuadtreeIndex, batch: int = 64):
        super().__init__()
        self._cursor = input_cursor
        self._index = index
        self._batch = batch
        self._pending: List[Row] = []

    def _fetch(self, ctx: WorkerContext, max_rows: int) -> List[Row]:
        out: List[Row] = []
        while len(out) < max_rows:
            if self._pending:
                take = min(max_rows - len(out), len(self._pending))
                out.extend(self._pending[:take])
                self._pending = self._pending[take:]
                continue
            rows = self._cursor.fetch(self._batch)
            if not rows:
                break
            for rowid, geom in rows:
                if geom is None:
                    continue
                ctx.charge("geom_fetch_base")
                ctx.charge("geom_fetch_per_vertex", geom.num_vertices)
                for tile in tessellate(geom, self._index.grid, ctx):
                    ctx.charge("tile_insert")
                    self._pending.append((tile.code, rowid, tile.interior))
        return out


class MbrLoadFunction(TableFunction):
    """Parallel table function: load geometries and compute their MBRs.

    Input rows: ``(rowid, geometry)``.  Output rows: ``(mbr, rowid)`` —
    step (1) of the paper's parallel R-tree creation.
    """

    def __init__(self, input_cursor: Cursor, batch: int = 256):
        super().__init__()
        self._cursor = input_cursor
        self._batch = batch

    def _fetch(self, ctx: WorkerContext, max_rows: int) -> List[Row]:
        out: List[Row] = []
        while len(out) < max_rows:
            rows = self._cursor.fetch(min(self._batch, max_rows - len(out)))
            if not rows:
                break
            for rowid, geom in rows:
                if geom is None:
                    continue
                # Loading = fetching and decoding the geometry, then the
                # MBR computation itself.
                ctx.charge("geom_fetch_base")
                ctx.charge("geom_fetch_per_vertex", geom.num_vertices)
                ctx.charge("mbr_load_per_vertex", geom.num_vertices)
                out.append((geom.mbr, rowid))
        return out


def create_quadtree_parallel(
    index: QuadtreeIndex,
    executor: ParallelExecutor,
) -> BuildReport:
    """Create a quadtree index with degree-N tessellation (Figure 2).

    The geometry cursor is partitioned ANY across ``executor.degree``
    TessellateFunction instances; each slave produces a sorted run of
    ``((code, rowid), interior)`` items; the runs are merged and the
    B-tree bulk-built (the parallel B-tree build's serial stitch).
    """
    source = index.table.scan_cursor(with_rowid=True)
    rows = [(r[0], r[index.table.schema.index_of(index.column) + 1]) for r in source]
    partitions = partition_cursor(
        _ListCursorOf(rows), executor.degree, PartitionMethod.ANY
    )

    def make_task(part: Cursor):
        def task(ctx: WorkerContext) -> List[Tuple[Tuple[int, RowId], bool]]:
            fn = TessellateFunction(part, index)
            items = [
                ((code, rowid), interior)
                for code, rowid, interior in pipeline(fn, ctx)
            ]
            # Each slave sorts its own run (parallelisable work).
            import math

            n = len(items)
            if n > 1:
                ctx.charge("sort_per_item", n * math.log2(n))
            items.sort(key=lambda kv: kv[0])
            return items

        return task

    run = executor.run([make_task(p) for p in partitions if len(p) > 0])

    # Serial tail: the coordinator's scan+partition of the base table
    # (Figure 2's single partitioning stage) plus merging the sorted runs
    # and bulk-building the B-tree.
    tail = WorkerContext(0)
    _charge_scan_partition(tail, index.table, len(rows))
    runs = [r for r in run.results if r]
    total_tiles = sum(len(r) for r in runs)
    if total_tiles:
        import math

        tail.charge("sort_per_item", total_tiles * max(1.0, math.log2(len(runs) + 1)))
        tail.charge("btree_node_visit", total_tiles / max(1, index.btree_order // 2))
    index.btree = BPlusTree.bulk_load_runs(runs, order=index.btree_order)

    return BuildReport(
        kind="QUADTREE",
        degree=executor.degree,
        run=run,
        rows_indexed=len(rows),
        tiles_created=total_tiles,
        serial_tail_seconds=tail.meter.seconds(executor.cost_model),
    )


def create_rtree_parallel(
    index: RTreeIndex,
    executor: ParallelExecutor,
) -> BuildReport:
    """Create an R-tree index with degree-N MBR load + subtree clustering."""
    source = index.table.scan_cursor(with_rowid=True)
    col = index.table.schema.index_of(index.column)
    rows = [(r[0], r[col + 1]) for r in source]
    partitions = partition_cursor(
        _ListCursorOf(rows), executor.degree, PartitionMethod.RANGE,
        key=_rowid_mbr_x_key,
    )

    def make_task(part: Cursor):
        def task(ctx: WorkerContext) -> RTree:
            loader = MbrLoadFunction(part)
            entries = [(mbr, rowid) for mbr, rowid in pipeline(loader, ctx)]
            return str_pack(entries, fanout=index.fanout, fill=index.fill, ctx=ctx)

        return task

    run = executor.run([make_task(p) for p in partitions if len(p) > 0])

    tail = WorkerContext(0)
    _charge_scan_partition(tail, index.table, len(rows))
    subtrees = [t for t in run.results if t is not None and len(t) > 0]
    tail.charge("cluster_per_entry", len(subtrees) * 2)
    index.tree = merge_subtrees(
        subtrees, fanout=index.fanout, fill=index.fill, ctx=tail
    )

    return BuildReport(
        kind="RTREE",
        degree=executor.degree,
        run=run,
        rows_indexed=len(rows),
        serial_tail_seconds=tail.meter.seconds(executor.cost_model),
    )


def _charge_scan_partition(ctx: WorkerContext, table: Table, nrows: int) -> None:
    """Coordinator-side cost of scanning the base table and routing rows.

    This stage is inherently serial (one scan feeds all slaves), which is
    the Amdahl tail that caps the paper's index-creation speedups (R-tree:
    1.76x on 4 processors despite fully parallel clustering).
    """
    ctx.charge("physical_read", table.heap.page_count)
    ctx.charge("partition_per_row", nrows)


def _rowid_mbr_x_key(row: Row) -> float:
    """RANGE-partition key: x-centre of the geometry (spatial locality)."""
    geom: Geometry = row[1]
    if geom is None:
        return 0.0
    return geom.mbr.center[0] if not geom.mbr.is_empty else 0.0


def _ListCursorOf(rows) -> Cursor:
    from repro.engine.cursor import ListCursor

    return ListCursor(rows)
