"""Crash-safe paging: write-ahead log, checksummed pages, recovery.

The paper streams index tiles and R-tree nodes into ordinary tables and
leans on Oracle's storage engine to survive a crashed slave or a killed
server mid-build.  This module supplies that substrate for the
reproduction: :class:`WalPager` wraps any :class:`~repro.storage.pager.Pager`
with

* a **physical write-ahead log** — every page write (and allocation) is
  appended to a side log as a checksummed page-image record before the
  main file is ever touched; a **commit record** followed by an fsync is
  the durability point (fsync-on-commit);
* **no-steal buffering** — the main file is only written at a
  **checkpoint**, *after* the log is durable, so the main file can never
  mix committed and uncommitted state;
* **per-page checksums** — a sidecar table of CRC32C checksums (rewritten
  atomically at each checkpoint) makes a torn main-file page *detectable*
  on read and *repairable* from the log on open;
* **recovery** — opening a ``WalPager`` replays every record up to the
  last durable commit, discards the torn/uncommitted tail, repairs any
  main-file page whose checksum fails, and truncates the log.  The store
  therefore always reopens to exactly the last committed state.

Log format (all integers little-endian)::

    header:  b"REPROWAL2\\n" | page_size u32 | reserved u32
    record:  type u8 | page_id u32 | payload_len u32 | lsn u64 | crc u32
             | payload

``crc`` is the masked CRC32C of the record header (minus the crc field)
plus payload, so a half-written record at the tail is recognised and the
replay stops there.  Records after the last COMMIT are ignored: a crash
mid-batch rolls back to the previous commit, never to a torn page.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ChecksumError, RecoveryError, WalError
from repro.obs import trace
from repro.storage.checksum import crc32c, mask_crc
from repro.storage.pager import Pager, fsync_file

__all__ = ["REC_PAGE", "REC_ALLOC", "REC_COMMIT", "RecoveryInfo", "WriteAheadLog", "WalPager"]

_WAL_MAGIC = b"REPROWAL2\n"
_WAL_HDR = struct.Struct("<II")  # page_size, reserved
_REC = struct.Struct("<BIIQI")  # type, page_id, payload_len, lsn, crc

REC_PAGE = 1
REC_ALLOC = 2
REC_COMMIT = 3
_REC_TYPES = (REC_PAGE, REC_ALLOC, REC_COMMIT)

_CHK_MAGIC = b"REPROCHK1\n"
_CHK_HDR = struct.Struct("<II")  # page_size, num_pages
_U32 = struct.Struct("<I")


def _record_crc(rtype: int, page_id: int, length: int, lsn: int, payload: bytes) -> int:
    head = struct.pack("<BIIQ", rtype, page_id, length, lsn)
    return mask_crc(crc32c(payload, crc32c(head)))


@dataclass
class RecoveryInfo:
    """What recovery found and fixed when the store was opened."""

    replayed_pages: int = 0  #: distinct pages restored from the log
    replayed_records: int = 0  #: committed records applied
    commits: int = 0  #: commit records honoured
    wal_bytes_replayed: int = 0  #: log bytes up to the last durable commit
    discarded_bytes: int = 0  #: torn/uncommitted tail bytes thrown away
    torn_pages_detected: int = 0  #: main-file pages failing their checksum
    torn_pages_repaired: int = 0  #: of those, rewritten from the log

    def as_dict(self) -> Dict[str, int]:
        return {
            "replayed_pages": self.replayed_pages,
            "replayed_records": self.replayed_records,
            "commits": self.commits,
            "wal_bytes_replayed": self.wal_bytes_replayed,
            "discarded_bytes": self.discarded_bytes,
            "torn_pages_detected": self.torn_pages_detected,
            "torn_pages_repaired": self.torn_pages_repaired,
        }


class WriteAheadLog:
    """Append-only page-image log with checksummed records.

    The log knows nothing about pagers; it appends records, fsyncs on
    commit, replays itself up to the last durable commit, and truncates.
    ``opener`` lets the fault harness substitute a faulty file.
    """

    def __init__(
        self,
        path: str,
        page_size: int,
        opener: Optional[Callable[[str, str], object]] = None,
    ):
        self.path = path
        self.page_size = page_size
        open_file = opener if opener is not None else open
        exists = os.path.exists(path) and os.path.getsize(path) > 0
        self._file = open_file(path, "r+b" if exists else "w+b")
        self.next_lsn = 1
        self.last_commit_lsn = 0
        self.bytes_appended = 0  # cumulative across truncations
        if exists:
            self._read_header()
        else:
            self._write_header()

    # ------------------------------------------------------------------
    def _write_header(self) -> None:
        self._file.seek(0)
        self._file.truncate(0)
        self._file.write(_WAL_MAGIC + _WAL_HDR.pack(self.page_size, 0))
        fsync_file(self._file)

    def _read_header(self) -> None:
        self._file.seek(0)
        head = self._file.read(len(_WAL_MAGIC) + _WAL_HDR.size)
        if len(head) < len(_WAL_MAGIC) + _WAL_HDR.size or not head.startswith(_WAL_MAGIC):
            # A torn write during log *creation*: the header is written and
            # fsynced before the first record can ever be appended, so a
            # malformed header proves no commit survived — safe to restart.
            self._write_header()
            return
        page_size, _reserved = _WAL_HDR.unpack_from(head, len(_WAL_MAGIC))
        if page_size != self.page_size:
            raise WalError(
                f"log {self.path} was written with page size {page_size}, "
                f"store uses {self.page_size}"
            )

    @property
    def header_size(self) -> int:
        return len(_WAL_MAGIC) + _WAL_HDR.size

    def size(self) -> int:
        self._file.seek(0, os.SEEK_END)
        return self._file.tell()

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def _append(self, rtype: int, page_id: int, payload: bytes) -> int:
        lsn = self.next_lsn
        self.next_lsn += 1
        crc = _record_crc(rtype, page_id, len(payload), lsn, payload)
        record = _REC.pack(rtype, page_id, len(payload), lsn, crc) + payload
        self._file.seek(0, os.SEEK_END)
        self._file.write(record)
        self.bytes_appended += len(record)
        return lsn

    def append_page(self, page_id: int, data: bytes) -> int:
        if len(data) != self.page_size:
            raise WalError(
                f"page record must be {self.page_size} bytes, got {len(data)}"
            )
        return self._append(REC_PAGE, page_id, data)

    def append_alloc(self, page_id: int) -> int:
        return self._append(REC_ALLOC, page_id, b"")

    def commit(self) -> int:
        """Append a commit record and force the log to stable storage."""
        lsn = self._append(REC_COMMIT, 0, b"")
        fsync_file(self._file)
        self.last_commit_lsn = lsn
        return lsn

    # ------------------------------------------------------------------
    # Replay / truncation
    # ------------------------------------------------------------------
    def replay(self) -> Tuple[Dict[int, Optional[bytes]], RecoveryInfo]:
        """Scan the log, returning the committed page table.

        The returned dict maps page id to its last committed image
        (``None`` for pages that were allocated but never written).  Any
        malformed, truncated or checksum-failing record ends the scan;
        records after the last commit are discarded.
        """
        info = RecoveryInfo()
        pages: Dict[int, Optional[bytes]] = {}
        pending: List[Tuple[int, int, bytes]] = []
        self._file.seek(0, os.SEEK_END)
        total = self._file.tell()
        offset = self.header_size
        committed_offset = offset
        max_lsn = 0
        self._file.seek(offset)
        while offset + _REC.size <= total:
            head = self._file.read(_REC.size)
            if len(head) != _REC.size:
                break
            rtype, page_id, length, lsn, crc = _REC.unpack(head)
            if rtype not in _REC_TYPES or offset + _REC.size + length > total:
                break
            payload = self._file.read(length) if length else b""
            if len(payload) != length:
                break
            if _record_crc(rtype, page_id, length, lsn, payload) != crc:
                break
            offset += _REC.size + length
            max_lsn = max(max_lsn, lsn)
            if rtype == REC_COMMIT:
                for ptype, pid, pdata in pending:
                    if ptype == REC_PAGE:
                        pages[pid] = pdata
                    else:  # allocation: zero page unless later written
                        pages.setdefault(pid, None)
                    info.replayed_records += 1
                pending.clear()
                info.commits += 1
                committed_offset = offset
                self.last_commit_lsn = lsn
            else:
                pending.append((rtype, page_id, payload))
        info.wal_bytes_replayed = committed_offset - self.header_size
        info.discarded_bytes = total - committed_offset
        info.replayed_pages = len(pages)
        self.next_lsn = max_lsn + 1
        return pages, info

    def records_since(
        self, after_lsn: int, max_records: int = 128
    ) -> Tuple[List[Tuple[int, int, int, bytes]], bool]:
        """Committed records with ``lsn > after_lsn``, for follower shipping.

        Returns ``(records, reset)`` where each record is
        ``(lsn, rtype, page_id, payload)`` and only records covered by a
        durable COMMIT are included (a follower must never apply a batch
        the leader could roll back).  Scanning stops at the first torn or
        checksum-failing record, exactly like :meth:`replay`.

        LSNs are strictly sequential within one log generation, so a
        subscriber that has applied ``after_lsn`` expects ``after_lsn + 1``
        next.  If the log's first record is *newer* than that, a
        checkpoint truncated history the subscriber still needs:
        ``reset=True`` tells it to re-bootstrap from a full snapshot
        instead of applying a gapped stream.
        """
        records: List[Tuple[int, int, int, bytes]] = []
        pending: List[Tuple[int, int, int, bytes]] = []
        self._file.seek(0, os.SEEK_END)
        total = self._file.tell()
        offset = self.header_size
        first_lsn: Optional[int] = None
        self._file.seek(offset)
        while offset + _REC.size <= total and len(records) < max_records:
            head = self._file.read(_REC.size)
            if len(head) != _REC.size:
                break
            rtype, page_id, length, lsn, crc = _REC.unpack(head)
            if rtype not in _REC_TYPES or offset + _REC.size + length > total:
                break
            payload = self._file.read(length) if length else b""
            if len(payload) != length:
                break
            if _record_crc(rtype, page_id, length, lsn, payload) != crc:
                break
            offset += _REC.size + length
            if first_lsn is None:
                first_lsn = lsn
            if rtype == REC_COMMIT:
                pending.append((lsn, rtype, page_id, payload))
                records.extend(r for r in pending if r[0] > after_lsn)
                pending.clear()
            else:
                pending.append((lsn, rtype, page_id, payload))
        if first_lsn is not None:
            reset = first_lsn > after_lsn + 1
        else:
            # Empty log: everything lives in the checkpointed main file; a
            # subscriber behind that state cannot catch up from records.
            reset = self.next_lsn - 1 > after_lsn
        return records, reset

    def last_lsn(self) -> int:
        """The highest *committed* LSN (0 when nothing was ever committed).

        Shipped in every ``wal.tail`` response so a follower can compute
        its replication lag in LSNs without a second round trip.  The
        committed watermark — not ``next_lsn - 1`` — is the comparison
        point on purpose: tail shipping stops at commit boundaries, so a
        leader whose log ends in uncommitted records would otherwise show
        every caught-up follower as permanently lagging.
        """
        return self.last_commit_lsn

    def base_lsn(self) -> int:
        """The LSN a snapshot of the *checkpointed* state corresponds to.

        Everything up to (first record's lsn - 1) has been migrated out of
        the log by the last checkpoint; an empty log means the checkpoint
        covers every LSN ever issued (``next_lsn - 1``).
        """
        self._file.seek(0, os.SEEK_END)
        total = self._file.tell()
        if total < self.header_size + _REC.size:
            return self.next_lsn - 1
        self._file.seek(self.header_size)
        head = self._file.read(_REC.size)
        if len(head) != _REC.size:
            return self.next_lsn - 1
        rtype, _page_id, _length, lsn, _crc = _REC.unpack(head)
        if rtype not in _REC_TYPES:
            return self.next_lsn - 1
        return lsn - 1

    def reset(self) -> None:
        """Truncate the log back to an empty header (checkpoint complete)."""
        self._file.seek(0)
        self._file.truncate(0)
        self._file.write(_WAL_MAGIC + _WAL_HDR.pack(self.page_size, 0))
        fsync_file(self._file)

    def close(self) -> None:
        self._file.close()


class WalPager(Pager):
    """Crash-safe pager: WAL + page checksums over an inner pager.

    Writes and allocations are logged and buffered in an in-memory page
    table; the inner pager (the main file) is only touched at
    :meth:`checkpoint`.  The contract:

    * :meth:`commit` makes everything written so far durable (one fsync);
    * :meth:`checkpoint` migrates committed pages into the main file,
      rewrites the checksum sidecar atomically, and truncates the log;
    * opening a ``WalPager`` runs recovery: replay to the last commit,
      verify every main-file page against its checksum, repair torn pages
      from the log, then checkpoint.  A torn page with no log image to
      repair it raises :class:`~repro.errors.RecoveryError`.

    ``fault_plan`` (tests only) receives ``reached(site)`` callbacks at
    the named crash sites so the fault harness can kill the "process" at
    every interesting instant.
    """

    def __init__(
        self,
        inner: Pager,
        wal_path: str,
        checksum_path: Optional[str] = None,
        opener: Optional[Callable[[str, str], object]] = None,
        fault_plan=None,
    ):
        super().__init__(inner.page_size)
        self._inner = inner
        self._opener = opener if opener is not None else open
        self._fault = fault_plan
        self._chk_path = checksum_path or wal_path + ".chk"
        self.wal = WriteAheadLog(wal_path, inner.page_size, opener=opener)
        self._checksums: List[int] = self._load_checksums()
        self._table: Dict[int, Optional[bytes]] = {}
        self._num_pages = inner.num_pages
        self.commits = 0
        self.checkpoints = 0
        self.recovery = self._recover()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self) -> RecoveryInfo:
        pages, info = self.wal.replay()
        if pages:
            self._num_pages = max(self._num_pages, max(pages) + 1)
        self._table = pages
        # Verify every main-file page we have a checksum for; a mismatch is
        # a torn checkpoint write and must be repairable from the log.
        unrepairable: List[int] = []
        for page_id in range(self._inner.num_pages):
            if page_id >= len(self._checksums):
                continue  # page beyond the last checkpointed sidecar
            data = self._inner.read(page_id)
            if mask_crc(crc32c(data)) != self._checksums[page_id]:
                info.torn_pages_detected += 1
                if page_id in pages:
                    info.torn_pages_repaired += 1
                else:
                    unrepairable.append(page_id)
        if unrepairable:
            raise RecoveryError(
                f"page(s) {unrepairable} fail their checksum and have no "
                f"log image to repair from; the store is corrupt"
            )
        if pages or info.discarded_bytes:
            # Migrate the committed state into the main file immediately so
            # the log can be truncated and a second crash re-recovers from
            # a clean base.
            self.checkpoint()
        return info

    # ------------------------------------------------------------------
    # Pager interface
    # ------------------------------------------------------------------
    def allocate(self) -> int:
        page_id = self._num_pages
        self._num_pages += 1
        self.stats.allocations += 1
        self.wal.append_alloc(page_id)
        self._table[page_id] = None
        return page_id

    def read(self, page_id: int) -> bytes:
        self._check_id(page_id)
        self.stats.reads += 1
        if page_id in self._table:
            data = self._table[page_id]
            return data if data is not None else bytes(self.page_size)
        data = self._inner.read(page_id)
        if page_id < len(self._checksums) and mask_crc(crc32c(data)) != self._checksums[page_id]:
            raise ChecksumError(
                f"page {page_id} failed its checksum on read (torn page); "
                f"reopen the store to run recovery"
            )
        return data

    def write(self, page_id: int, data: bytes) -> None:
        self._check_id(page_id)
        self._check_data(data)
        self.stats.writes += 1
        image = bytes(data)
        self.wal.append_page(page_id, image)
        self._table[page_id] = image

    @property
    def num_pages(self) -> int:
        return self._num_pages

    @property
    def inner(self) -> Pager:
        return self._inner

    def _check_id(self, page_id: int) -> None:
        if not 0 <= page_id < self._num_pages:
            raise WalError(
                f"page id {page_id} out of range (0..{self._num_pages - 1})"
            )

    # ------------------------------------------------------------------
    # Durability points
    # ------------------------------------------------------------------
    def commit(self) -> int:
        """Fsync the log: everything written so far is now durable."""
        with trace.span(
            "wal.commit", dirty_pages=len(self._table), commit=self.commits
        ) as sp:
            self._site("wal.commit.before_fsync")
            lsn = self.wal.commit()
            self._site("wal.commit.after_fsync")
            self.commits += 1
            sp.set_tag("lsn", lsn)
        return lsn

    def checkpoint(self) -> None:
        """Migrate the page table into the main file and truncate the log.

        Must only be called at a commit boundary (everything in the page
        table durable in the log); the write order — main pages, fsync,
        checksum sidecar (atomic rename), *then* log truncation — means a
        crash anywhere in between recovers from the still-intact log.
        """
        with trace.span(
            "wal.checkpoint",
            dirty_pages=len(self._table),
            checkpoint=self.checkpoints,
        ):
            self._checkpoint_inner()

    def _checkpoint_inner(self) -> None:
        self._site("checkpoint.begin")
        while self._inner.num_pages < self._num_pages:
            self._inner.allocate()
        grown = max(len(self._checksums), self._num_pages)
        checksums = self._checksums + [0] * (grown - len(self._checksums))
        # Pages beyond the old sidecar that this checkpoint does not rewrite
        # (the sidecar was absent/unreadable, or the file predates
        # durability="wal") must be sealed with the checksum of their
        # *current* content — a placeholder would make every later read of
        # a perfectly healthy page fail, with no log image to repair from.
        for page_id in range(len(self._checksums), grown):
            if page_id not in self._table:
                checksums[page_id] = mask_crc(crc32c(self._inner.read(page_id)))
        for page_id in sorted(self._table):
            data = self._table[page_id]
            image = data if data is not None else bytes(self.page_size)
            self._inner.write(page_id, image)
            checksums[page_id] = mask_crc(crc32c(image))
            self._site("checkpoint.page_written")
        flush = getattr(self._inner, "flush", None)
        if flush is not None:
            flush()
        self._site("checkpoint.after_writeback")
        self._write_checksums(checksums)
        self._checksums = checksums
        self._site("checkpoint.before_truncate")
        self.wal.reset()
        self._table.clear()
        self.checkpoints += 1
        self._site("checkpoint.end")

    def flush(self) -> None:
        """Alias for durability through the log (pager-compatible)."""
        self.commit()

    def close(self) -> None:
        self.wal.close()
        self._inner.close()

    # ------------------------------------------------------------------
    # Checksum sidecar
    # ------------------------------------------------------------------
    def _load_checksums(self) -> List[int]:
        if not os.path.exists(self._chk_path):
            return []
        try:
            with open(self._chk_path, "rb") as fh:
                blob = fh.read()
        except OSError:
            return []
        head_len = len(_CHK_MAGIC) + _CHK_HDR.size
        if len(blob) < head_len + _U32.size or not blob.startswith(_CHK_MAGIC):
            return []  # unreadable sidecar: treat every page as unverified
        page_size, count = _CHK_HDR.unpack_from(blob, len(_CHK_MAGIC))
        if len(blob) < head_len + count * _U32.size + _U32.size:
            return []  # truncated/bit-flipped count: sidecar is unusable
        body = blob[head_len : head_len + count * _U32.size]
        (stored_crc,) = _U32.unpack_from(blob, head_len + count * _U32.size)
        if (
            page_size != self.page_size
            or len(body) != count * _U32.size
            or mask_crc(crc32c(body)) != stored_crc
        ):
            return []
        return [
            _U32.unpack_from(body, i * _U32.size)[0] for i in range(count)
        ]

    def _write_checksums(self, checksums: List[int]) -> None:
        body = b"".join(_U32.pack(c) for c in checksums)
        blob = (
            _CHK_MAGIC
            + _CHK_HDR.pack(self.page_size, len(checksums))
            + body
            + _U32.pack(mask_crc(crc32c(body)))
        )
        tmp_path = self._chk_path + ".tmp"
        tmp = self._opener(tmp_path, "w+b")
        try:
            tmp.write(blob)
            fsync_file(tmp)
        finally:
            tmp.close()
        os.replace(tmp_path, self._chk_path)

    # ------------------------------------------------------------------
    def _site(self, name: str) -> None:
        if self._fault is not None:
            self._fault.reached(name)

    def storage_stats(self) -> Dict[str, object]:
        """Counters for the service's stats endpoint."""
        return {
            "wal_bytes": self.wal.bytes_appended,
            "wal_size": self.wal.size(),
            "commits": self.commits,
            "checkpoints": self.checkpoints,
            "dirty_pages": len(self._table),
            "recovered_pages": self.recovery.replayed_pages,
            "repaired_pages": self.recovery.torn_pages_repaired,
            "recovery": self.recovery.as_dict(),
        }
