"""Fault-injection harness for the durability layer.

Crash recovery is only as good as the crashes it has been tested against,
so this module simulates the failure modes a real disk and kernel expose:

* **torn writes** — a ``write()`` persists only a prefix of its bytes and
  the "process" dies (:class:`CrashPoint`);
* **lost fsyncs** — writes sit in a simulated OS cache and an fsync that
  was dropped means a later crash discards them, exactly the
  write-back-cache lie real hardware tells;
* **read errors** — ``EIO`` surfacing as :class:`InjectedIOError`;
* **crash points** — named sites inside :class:`~repro.storage.wal.WalPager`
  (commit, checkpoint phases) where the plan can kill the process.

Everything is driven by a :class:`FaultPlan`: a seeded, deterministic
script of faults shared by every file the plan opens, so a failing chaos
run is reproducible from its seed alone.  Once a plan *trips* (its crash
fires), every file it governs goes dead — subsequent I/O raises
:class:`CrashPoint`, modelling a killed process whose file descriptors
are gone.  The test then "reboots" by reopening the store with no plan.

The *network* counterpart lives in :mod:`repro.cluster.chaos`: its
:class:`~repro.cluster.chaos.NetFaultPlan` speaks the same dialect —
named sites with per-site countdowns, a recorded seed, an event log —
but scripts TCP-level failures (resets, latency, partitions, slow
drips) against a live proxy instead of file I/O.  Together the two
plans cover the full failure surface the self-healing cluster tests
exercise: disks that lie below a shard, networks that lie between them.
"""

from __future__ import annotations

import os
import random
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import FaultError
from repro.storage.pager import Pager

__all__ = [
    "CrashPoint",
    "InjectedIOError",
    "FaultPlan",
    "FaultyFile",
    "FaultyPager",
    "classify_path",
]


class CrashPoint(FaultError):
    """The simulated process was killed at this point."""


class InjectedIOError(FaultError):
    """A simulated device-level I/O error (EIO)."""


def classify_path(path: str) -> str:
    """Map a file path to a fault tag: 'wal', 'chk' or 'data'."""
    name = os.path.basename(path)
    if name.endswith(".wal"):
        return "wal"
    if name.endswith(".chk") or name.endswith(".chk.tmp"):
        return "chk"
    return "data"


class FaultPlan:
    """A deterministic script of faults, shared across a store's files.

    Parameters
    ----------
    seed:
        Only recorded for reproduction messages; randomised plans are
        built via :meth:`random`.
    torn_write:
        ``(tag, call_index, keep_bytes)`` — the ``call_index``-th write to
        a file with that tag persists only ``keep_bytes`` bytes, then the
        plan trips.  Write calls are counted per tag from 0.
    crash_after_writes:
        ``(tag, n)`` — trip *before* the n-th write to that tag (a clean
        kill between writes, no torn bytes).
    drop_fsync:
        Tags whose files run in write-back-cache mode with ``sync()`` as a
        silent no-op: nothing written since the last real sync survives a
        later crash.
    cache_tags:
        Tags whose files run in write-back-cache mode but whose syncs
        *work* (used to prove the cache model itself is sound).
    eio_reads:
        ``(tag, call_index)`` pairs: that read call raises
        :class:`InjectedIOError` (the plan does not trip — EIO is
        survivable).
    crash_sites:
        Named :class:`~repro.storage.wal.WalPager` sites that trip the
        plan, with an optional per-site countdown: ``{"checkpoint.begin": 0}``
        trips on the first visit, ``1`` on the second, and so on.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        torn_write: Optional[Tuple[str, int, int]] = None,
        crash_after_writes: Optional[Tuple[str, int]] = None,
        drop_fsync: Tuple[str, ...] = (),
        cache_tags: Tuple[str, ...] = (),
        eio_reads: Tuple[Tuple[str, int], ...] = (),
        crash_sites: Optional[Dict[str, int]] = None,
    ):
        self.seed = seed
        self.torn_write = torn_write
        self.crash_after_writes = crash_after_writes
        self.drop_fsync = frozenset(drop_fsync)
        self.cache_tags = frozenset(cache_tags) | self.drop_fsync
        self.eio_reads = set(eio_reads)
        self.crash_sites = dict(crash_sites or {})
        self.tripped = False
        self.write_calls: Dict[str, int] = {}
        self.read_calls: Dict[str, int] = {}
        self.site_visits: Dict[str, int] = {}
        self.events: List[str] = []

    @classmethod
    def counting(cls) -> "FaultPlan":
        """A plan that injects nothing but counts calls (probe runs)."""
        return cls()

    @classmethod
    def random(cls, seed: int) -> "FaultPlan":
        """A seeded random plan: one crash, somewhere plausible."""
        rng = random.Random(seed)
        choice = rng.randrange(4)
        tag = rng.choice(["wal", "wal", "wal", "data", "chk"])
        if choice == 0:
            return cls(seed, torn_write=(tag, rng.randrange(64), rng.randrange(0, 256)))
        if choice == 1:
            return cls(seed, crash_after_writes=(tag, rng.randrange(64)))
        if choice == 2:
            sites = [
                "wal.commit.before_fsync",
                "wal.commit.after_fsync",
                "checkpoint.begin",
                "checkpoint.page_written",
                "checkpoint.after_writeback",
                "checkpoint.before_truncate",
                "checkpoint.end",
            ]
            return cls(seed, crash_sites={rng.choice(sites): rng.randrange(3)})
        return cls(
            seed,
            drop_fsync=("wal",),
            crash_sites={"checkpoint.begin": rng.randrange(2)},
        )

    # ------------------------------------------------------------------
    def opener(self):
        """An ``open(path, mode)`` substitute wiring files into the plan."""

        def open_faulty(path: str, mode: str):
            tag = classify_path(path)
            return FaultyFile(path, mode, self, tag)

        return open_faulty

    def trip(self, why: str) -> None:
        self.tripped = True
        self.events.append(why)

    def check_alive(self) -> None:
        if self.tripped:
            raise CrashPoint(
                f"process is dead (plan seed={self.seed}: {self.events[-1] if self.events else '?'})"
            )

    def reached(self, site: str) -> None:
        """Called by WalPager at named crash sites."""
        self.check_alive()
        visit = self.site_visits.get(site, 0)
        self.site_visits[site] = visit + 1
        if site in self.crash_sites and visit == self.crash_sites[site]:
            self.trip(f"crash at site {site!r} visit {visit}")
            raise CrashPoint(f"killed at site {site!r} (seed={self.seed})")

    # -- file-level hooks ----------------------------------------------
    def on_write(self, tag: str, nbytes: int) -> Tuple[int, bool]:
        """Returns ``(bytes_to_keep, crash_now)`` for one write call."""
        self.check_alive()
        call = self.write_calls.get(tag, 0)
        self.write_calls[tag] = call + 1
        if self.crash_after_writes is not None:
            ctag, cn = self.crash_after_writes
            if tag == ctag and call == cn:
                self.trip(f"crash before write {call} to {tag}")
                return 0, True
        if self.torn_write is not None:
            ttag, tcall, keep = self.torn_write
            if tag == ttag and call == tcall:
                self.trip(f"torn write {call} to {tag}: kept {keep}/{nbytes}")
                return min(keep, nbytes), True
        return nbytes, False

    def on_read(self, tag: str) -> None:
        self.check_alive()
        call = self.read_calls.get(tag, 0)
        self.read_calls[tag] = call + 1
        if (tag, call) in self.eio_reads:
            raise InjectedIOError(f"injected EIO on read {call} of {tag}")

    def on_sync(self, tag: str) -> bool:
        """True if the fsync should actually run."""
        self.check_alive()
        return tag not in self.drop_fsync


class FaultyFile:
    """A file whose writes can tear, whose fsyncs can lie.

    Two modes, chosen by the plan:

    * **direct** — unbuffered write-through; a crash keeps everything
      already written (torn writes keep the prefix of the final write);
    * **cache** (tags in ``plan.cache_tags``) — writes land in an
      in-memory shadow of the file, ``sync()`` flushes the shadow to the
      real file; a crash discards the shadow, so anything "written" after
      a dropped fsync is lost, as with a real write-back cache.
    """

    def __init__(self, path: str, mode: str, plan: FaultPlan, tag: str):
        self.path = path
        self.tag = tag
        self._plan = plan
        self._inner = open(path, mode, buffering=0)
        self._cached = tag in plan.cache_tags
        self._shadow: Optional[bytearray] = None
        if self._cached:
            self._inner.seek(0, os.SEEK_END)
            size = self._inner.tell()
            self._inner.seek(0)
            self._shadow = bytearray(self._inner.read(size))
        self._pos = 0

    # ------------------------------------------------------------------
    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:
        self._plan.check_alive()
        if self._cached:
            if whence == os.SEEK_SET:
                self._pos = offset
            elif whence == os.SEEK_CUR:
                self._pos += offset
            else:
                self._pos = len(self._shadow) + offset
            return self._pos
        return self._inner.seek(offset, whence)

    def tell(self) -> int:
        if self._cached:
            return self._pos
        return self._inner.tell()

    def read(self, n: int = -1) -> bytes:
        self._plan.on_read(self.tag)
        if self._cached:
            end = len(self._shadow) if n < 0 else min(self._pos + n, len(self._shadow))
            data = bytes(self._shadow[self._pos : end])
            self._pos = end
            return data
        return self._inner.read(n)

    def write(self, data: bytes) -> int:
        keep, crash = self._plan.on_write(self.tag, len(data))
        kept = bytes(data[:keep])
        if self._cached:
            pos = self._pos
            if pos > len(self._shadow):
                self._shadow.extend(bytes(pos - len(self._shadow)))
            self._shadow[pos : pos + len(kept)] = kept
            self._pos = pos + len(kept)
        elif kept:
            self._inner.write(kept)
        if crash:
            raise CrashPoint(
                f"killed mid-write to {self.tag} (seed={self._plan.seed})"
            )
        return len(data)

    def truncate(self, size: int) -> int:
        self._plan.check_alive()
        if self._cached:
            del self._shadow[size:]
            return size
        return self._inner.truncate(size)

    def flush(self) -> None:
        self._plan.check_alive()

    def sync(self) -> None:
        """fsync: in cache mode, flush the shadow to the real file."""
        if not self._plan.on_sync(self.tag):
            return  # the lying write-back cache: claims durable, is not
        if self._cached:
            self._inner.seek(0)
            self._inner.write(bytes(self._shadow))
            self._inner.truncate(len(self._shadow))
        self._inner.flush()
        os.fsync(self._inner.fileno())

    def close(self) -> None:
        # A clean close (no crash) eventually hits the platter even
        # without fsync — model that by flushing the shadow on close of an
        # untripped cache-mode file.
        if self._cached and not self._plan.tripped:
            self._inner.seek(0)
            self._inner.write(bytes(self._shadow))
            self._inner.truncate(len(self._shadow))
        self._inner.close()

    def fileno(self) -> int:
        return self._inner.fileno()


class FaultyPager(Pager):
    """Page-level fault wrapper: EIO on chosen pages, crash after N writes.

    Used where the file-level harness is too low-level — e.g. asserting
    :class:`~repro.storage.buffer.BufferPool` flushes deterministically,
    or that heap code surfaces an injected read error instead of
    swallowing it.
    """

    def __init__(
        self,
        inner: Pager,
        *,
        eio_pages: Set[int] = frozenset(),
        crash_after_writes: Optional[int] = None,
    ):
        super().__init__(inner.page_size)
        self._inner = inner
        self.eio_pages = set(eio_pages)
        self.crash_after_writes = crash_after_writes
        self.write_log: List[int] = []
        self.dead = False

    def _alive(self) -> None:
        if self.dead:
            raise CrashPoint("pager is dead (previous crash)")

    def allocate(self) -> int:
        self._alive()
        self.stats.allocations += 1
        return self._inner.allocate()

    def read(self, page_id: int) -> bytes:
        self._alive()
        if page_id in self.eio_pages:
            raise InjectedIOError(f"injected EIO reading page {page_id}")
        self.stats.reads += 1
        return self._inner.read(page_id)

    def write(self, page_id: int, data: bytes) -> None:
        self._alive()
        if (
            self.crash_after_writes is not None
            and len(self.write_log) >= self.crash_after_writes
        ):
            self.dead = True
            raise CrashPoint(
                f"killed before write {len(self.write_log)} (page {page_id})"
            )
        self.write_log.append(page_id)
        self.stats.writes += 1
        self._inner.write(page_id, data)

    @property
    def num_pages(self) -> int:
        return self._inner.num_pages

    def close(self) -> None:
        self._inner.close()
