"""Page-oriented storage backends.

Everything persistent in this library (heap tables, index tables) sits on
fixed-size pages addressed by integer page ids.  Two backends are provided:

* :class:`MemoryPager` — pages live in a Python list; the default for tests
  and benchmarks (the benchmarks charge *simulated* I/O cost per logical
  page access, so a RAM backend does not distort the reported shapes).
* :class:`FilePager` — pages live in a single file; used by the examples to
  demonstrate durable databases.

Both backends count physical reads/writes so the buffer cache's hit ratio
can be asserted in tests.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import PageError

__all__ = ["PAGE_SIZE", "PagerStats", "Pager", "MemoryPager", "FilePager"]

PAGE_SIZE = 4096


@dataclass
class PagerStats:
    """Physical I/O counters for one pager."""

    reads: int = 0
    writes: int = 0
    allocations: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.allocations = 0


class Pager:
    """Abstract page store: allocate / read / write fixed-size pages."""

    page_size: int

    def __init__(self, page_size: int = PAGE_SIZE):
        if page_size < 64:
            raise PageError(f"page size {page_size} too small")
        self.page_size = page_size
        self.stats = PagerStats()

    # -- interface -----------------------------------------------------
    def allocate(self) -> int:
        """Allocate a zeroed page, returning its page id."""
        raise NotImplementedError

    def read(self, page_id: int) -> bytes:
        raise NotImplementedError

    def write(self, page_id: int, data: bytes) -> None:
        raise NotImplementedError

    @property
    def num_pages(self) -> int:
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (no-op by default)."""

    # -- shared validation ----------------------------------------------
    def _check_data(self, data: bytes) -> None:
        if len(data) != self.page_size:
            raise PageError(
                f"page payload must be exactly {self.page_size} bytes, "
                f"got {len(data)}"
            )


class MemoryPager(Pager):
    """In-memory page store."""

    def __init__(self, page_size: int = PAGE_SIZE):
        super().__init__(page_size)
        self._pages: List[bytes] = []

    def allocate(self) -> int:
        self._pages.append(bytes(self.page_size))
        self.stats.allocations += 1
        return len(self._pages) - 1

    def read(self, page_id: int) -> bytes:
        self._check_id(page_id)
        self.stats.reads += 1
        return self._pages[page_id]

    def write(self, page_id: int, data: bytes) -> None:
        self._check_id(page_id)
        self._check_data(data)
        self.stats.writes += 1
        self._pages[page_id] = bytes(data)

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    def _check_id(self, page_id: int) -> None:
        if not 0 <= page_id < len(self._pages):
            raise PageError(f"page id {page_id} out of range (0..{len(self._pages) - 1})")


class FilePager(Pager):
    """Single-file page store.

    The file is a dense array of pages; page id N starts at byte
    ``N * page_size``.  Durability is best-effort (`flush` calls
    ``os.fsync``); there is no write-ahead log — crash recovery is out of
    scope for the reproduction, which matches the paper's focus (it relies
    on Oracle's recovery, which we do not re-implement).
    """

    def __init__(self, path: str, page_size: int = PAGE_SIZE):
        super().__init__(page_size)
        self._path = path
        exists = os.path.exists(path)
        self._file = open(path, "r+b" if exists else "w+b")
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size % page_size != 0:
            raise PageError(
                f"file {path} size {size} is not a multiple of page size {page_size}"
            )
        self._num_pages = size // page_size

    def allocate(self) -> int:
        page_id = self._num_pages
        self._file.seek(page_id * self.page_size)
        self._file.write(bytes(self.page_size))
        self._num_pages += 1
        self.stats.allocations += 1
        return page_id

    def read(self, page_id: int) -> bytes:
        self._check_id(page_id)
        self.stats.reads += 1
        self._file.seek(page_id * self.page_size)
        data = self._file.read(self.page_size)
        if len(data) != self.page_size:
            raise PageError(f"short read on page {page_id}")
        return data

    def write(self, page_id: int, data: bytes) -> None:
        self._check_id(page_id)
        self._check_data(data)
        self.stats.writes += 1
        self._file.seek(page_id * self.page_size)
        self._file.write(data)

    @property
    def num_pages(self) -> int:
        return self._num_pages

    def flush(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        self._file.close()

    def _check_id(self, page_id: int) -> None:
        if not 0 <= page_id < self._num_pages:
            raise PageError(f"page id {page_id} out of range (0..{self._num_pages - 1})")
