"""Page-oriented storage backends.

Everything persistent in this library (heap tables, index tables) sits on
fixed-size pages addressed by integer page ids.  Two backends are provided:

* :class:`MemoryPager` — pages live in a Python list; the default for tests
  and benchmarks (the benchmarks charge *simulated* I/O cost per logical
  page access, so a RAM backend does not distort the reported shapes).
* :class:`FilePager` — pages live in a single file; used by the examples to
  demonstrate durable databases.

Both backends count physical reads/writes so the buffer cache's hit ratio
can be asserted in tests.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import PageError

__all__ = [
    "PAGE_SIZE",
    "PagerStats",
    "Pager",
    "MemoryPager",
    "FilePager",
    "fsync_file",
]

PAGE_SIZE = 4096


def fsync_file(fh) -> None:
    """Flush Python buffers and force ``fh`` to stable storage.

    File-like wrappers (e.g. the fault-injection harness's
    :class:`~repro.storage.fault.FaultyFile`) expose a ``sync()`` method so
    they can observe/drop the fsync; plain files fall back to ``os.fsync``.
    """
    sync = getattr(fh, "sync", None)
    if sync is not None:
        sync()
        return
    fh.flush()
    os.fsync(fh.fileno())


@dataclass
class PagerStats:
    """Physical I/O counters for one pager."""

    reads: int = 0
    writes: int = 0
    allocations: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.allocations = 0


class Pager:
    """Abstract page store: allocate / read / write fixed-size pages."""

    page_size: int

    def __init__(self, page_size: int = PAGE_SIZE):
        if page_size < 64:
            raise PageError(f"page size {page_size} too small")
        self.page_size = page_size
        self.stats = PagerStats()

    # -- interface -----------------------------------------------------
    def allocate(self) -> int:
        """Allocate a zeroed page, returning its page id."""
        raise NotImplementedError

    def read(self, page_id: int) -> bytes:
        raise NotImplementedError

    def write(self, page_id: int, data: bytes) -> None:
        raise NotImplementedError

    @property
    def num_pages(self) -> int:
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (no-op by default)."""

    # -- shared validation ----------------------------------------------
    def _check_data(self, data: bytes) -> None:
        if len(data) != self.page_size:
            raise PageError(
                f"page payload must be exactly {self.page_size} bytes, "
                f"got {len(data)}"
            )


class MemoryPager(Pager):
    """In-memory page store."""

    def __init__(self, page_size: int = PAGE_SIZE):
        super().__init__(page_size)
        self._pages: List[bytes] = []

    def allocate(self) -> int:
        self._pages.append(bytes(self.page_size))
        self.stats.allocations += 1
        return len(self._pages) - 1

    def read(self, page_id: int) -> bytes:
        self._check_id(page_id)
        self.stats.reads += 1
        return self._pages[page_id]

    def write(self, page_id: int, data: bytes) -> None:
        self._check_id(page_id)
        self._check_data(data)
        self.stats.writes += 1
        self._pages[page_id] = bytes(data)

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    def _check_id(self, page_id: int) -> None:
        if not 0 <= page_id < len(self._pages):
            raise PageError(f"page id {page_id} out of range (0..{len(self._pages) - 1})")


class FilePager(Pager):
    """Single-file page store.

    The file is a dense array of pages; page id N starts at byte
    ``N * page_size``.  On its own the backend offers only best-effort
    durability (``flush`` forces an fsync, and ``close`` flushes first so a
    clean shutdown never leaves dirty OS buffers behind); crash safety —
    write-ahead logging, page checksums, recovery — is layered on top by
    :class:`~repro.storage.wal.WalPager`, which supplies what the paper's
    system got for free from Oracle's recovery subsystem.

    ``opener`` lets the fault-injection harness substitute a faulty file
    (torn writes, dropped fsyncs, injected EIO) for the real one.
    ``strict=False`` tolerates a file whose size is not a page multiple —
    the signature of a torn append — by padding the partial tail page with
    zeros on read; recovery opens files this way so a torn page is
    *detected* by its checksum instead of refusing to open at all.
    """

    def __init__(
        self,
        path: str,
        page_size: int = PAGE_SIZE,
        strict: bool = True,
        opener: Optional[Callable[[str, str], object]] = None,
    ):
        super().__init__(page_size)
        self._path = path
        open_file = opener if opener is not None else open
        exists = os.path.exists(path)
        self._file = open_file(path, "r+b" if exists else "w+b")
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size % page_size != 0:
            if strict:
                raise PageError(
                    f"file {path} size {size} is not a multiple of page size {page_size}"
                )
            self._num_pages = size // page_size + 1
        else:
            self._num_pages = size // page_size

    @property
    def path(self) -> str:
        return self._path

    def allocate(self) -> int:
        page_id = self._num_pages
        self._file.seek(page_id * self.page_size)
        self._file.write(bytes(self.page_size))
        self._num_pages += 1
        self.stats.allocations += 1
        return page_id

    def read(self, page_id: int) -> bytes:
        self._check_id(page_id)
        self.stats.reads += 1
        self._file.seek(page_id * self.page_size)
        data = self._file.read(self.page_size)
        if len(data) != self.page_size:
            # Only possible for a torn tail page under strict=False.
            data = data + bytes(self.page_size - len(data))
        return data

    def write(self, page_id: int, data: bytes) -> None:
        self._check_id(page_id)
        self._check_data(data)
        self.stats.writes += 1
        self._file.seek(page_id * self.page_size)
        self._file.write(data)

    @property
    def num_pages(self) -> int:
        return self._num_pages

    def flush(self) -> None:
        fsync_file(self._file)

    def close(self) -> None:
        try:
            self.flush()
        finally:
            self._file.close()

    def _check_id(self, page_id: int) -> None:
        if not 0 <= page_id < self._num_pages:
            raise PageError(f"page id {page_id} out of range (0..{self._num_pages - 1})")
