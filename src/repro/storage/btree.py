"""A from-scratch B+-tree.

This is the substrate under the linear quadtree (tile codes are B-tree
keys, exactly as the paper describes) and is also used by the catalog.  It
supports point lookups, ordered range scans over a linked leaf level,
deletes with rebalancing, and two bulk-load paths:

* :meth:`BPlusTree.bulk_load` — classic bottom-up build from sorted input.
* :meth:`BPlusTree.bulk_load_runs` — merge pre-built sorted runs, the step
  that lets index creation build leaf runs in parallel and stitch them
  together (the "parallel clause of a B-tree index statement" in §5 of the
  paper).

Keys are arbitrary comparable Python values and must be unique; composite
keys like ``(tile_code, rowid)`` give de-facto duplicate-key behaviour.

Every node traversal reports to ``visit_hook`` so the simulated cost model
can charge index I/O.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import BTreeError

__all__ = ["BPlusTree"]

DEFAULT_ORDER = 64


class _Node:
    __slots__ = ("keys",)

    def __init__(self) -> None:
        self.keys: List[Any] = []

    @property
    def is_leaf(self) -> bool:
        raise NotImplementedError


class _Leaf(_Node):
    __slots__ = ("values", "next")

    def __init__(self) -> None:
        super().__init__()
        self.values: List[Any] = []
        self.next: Optional["_Leaf"] = None

    @property
    def is_leaf(self) -> bool:
        return True


class _Internal(_Node):
    __slots__ = ("children",)

    def __init__(self) -> None:
        super().__init__()
        self.children: List[_Node] = []

    @property
    def is_leaf(self) -> bool:
        return False


class BPlusTree:
    """Order-configurable B+-tree mapping unique comparable keys to values."""

    def __init__(
        self,
        order: int = DEFAULT_ORDER,
        visit_hook: Optional[Callable[[bool], None]] = None,
    ):
        if order < 3:
            raise BTreeError(f"order must be >= 3, got {order}")
        self.order = order  # max keys per node
        self._min_keys = order // 2
        self._root: _Node = _Leaf()
        self._size = 0
        self._height = 1
        self.visit_hook = visit_hook

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return self._height

    def node_count(self) -> int:
        def count(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return 1 + sum(count(c) for c in node.children)  # type: ignore[attr-defined]

        return count(self._root)

    # ------------------------------------------------------------------
    # Point operations
    # ------------------------------------------------------------------
    def get(self, key: Any, default: Any = None) -> Any:
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx]
        return default

    def __contains__(self, key: Any) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def insert(self, key: Any, value: Any) -> None:
        """Insert a new key (raises :class:`BTreeError` on duplicates)."""
        split = self._insert_into(self._root, key, value)
        if split is not None:
            sep, right = split
            new_root = _Internal()
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1
        self._size += 1

    def upsert(self, key: Any, value: Any) -> bool:
        """Insert or overwrite; returns True when a new key was added."""
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            leaf.values[idx] = value
            return False
        self.insert(key, value)
        return True

    def delete(self, key: Any) -> Any:
        """Remove a key, returning its value (raises if absent)."""
        value = self._delete_from(self._root, key)
        if not self._root.is_leaf and len(self._root.keys) == 0:
            self._root = self._root.children[0]  # type: ignore[attr-defined]
            self._height -= 1
        self._size -= 1
        return value

    # ------------------------------------------------------------------
    # Range operations
    # ------------------------------------------------------------------
    def scan(
        self,
        lo: Any = None,
        hi: Any = None,
        include_lo: bool = True,
        include_hi: bool = True,
    ) -> Iterator[Tuple[Any, Any]]:
        """Yield (key, value) in key order within [lo, hi] (None = open end)."""
        if lo is None:
            leaf: Optional[_Leaf] = self._leftmost_leaf()
            idx = 0
        else:
            leaf = self._find_leaf(lo)
            idx = (
                bisect.bisect_left(leaf.keys, lo)
                if include_lo
                else bisect.bisect_right(leaf.keys, lo)
            )
        while leaf is not None:
            self._visit(True)
            while idx < len(leaf.keys):
                key = leaf.keys[idx]
                if hi is not None:
                    if include_hi:
                        if key > hi:
                            return
                    elif key >= hi:
                        return
                yield key, leaf.values[idx]
                idx += 1
            leaf = leaf.next
            idx = 0

    def items(self) -> Iterator[Tuple[Any, Any]]:
        return self.scan()

    def keys(self) -> Iterator[Any]:
        for key, _value in self.scan():
            yield key

    def min_key(self) -> Any:
        if self._size == 0:
            raise BTreeError("min_key on empty tree")
        leaf = self._leftmost_leaf()
        return leaf.keys[0]

    def max_key(self) -> Any:
        if self._size == 0:
            raise BTreeError("max_key on empty tree")
        node = self._root
        while not node.is_leaf:
            self._visit(False)
            node = node.children[-1]  # type: ignore[attr-defined]
        return node.keys[-1]

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls,
        items: Sequence[Tuple[Any, Any]],
        order: int = DEFAULT_ORDER,
        visit_hook: Optional[Callable[[bool], None]] = None,
    ) -> "BPlusTree":
        """Build a tree bottom-up from items sorted by key (keys unique)."""
        tree = cls(order=order, visit_hook=visit_hook)
        for i in range(1, len(items)):
            if items[i - 1][0] >= items[i][0]:
                raise BTreeError("bulk_load input must be strictly sorted by key")
        tree._build_from_sorted(items)
        return tree

    @classmethod
    def bulk_load_runs(
        cls,
        runs: Sequence[Sequence[Tuple[Any, Any]]],
        order: int = DEFAULT_ORDER,
        visit_hook: Optional[Callable[[bool], None]] = None,
    ) -> "BPlusTree":
        """Build a tree from independently sorted runs (k-way merge).

        This is the serial tail of the parallel index build: workers each
        produce a sorted run of (key, value) pairs; the merge and the
        bottom-up build are cheap compared to producing the runs.
        """
        import heapq

        merged = list(heapq.merge(*runs, key=lambda kv: kv[0]))
        for i in range(1, len(merged)):
            if merged[i - 1][0] == merged[i][0]:
                raise BTreeError(f"duplicate key across runs: {merged[i][0]!r}")
        return cls.bulk_load(merged, order=order, visit_hook=visit_hook)

    def _build_from_sorted(self, items: Sequence[Tuple[Any, Any]]) -> None:
        if not items:
            return
        per_leaf = max(self._min_keys, (self.order * 2) // 3)
        leaves: List[_Leaf] = []
        for start in range(0, len(items), per_leaf):
            chunk = items[start : start + per_leaf]
            leaf = _Leaf()
            leaf.keys = [k for k, _v in chunk]
            leaf.values = [v for _k, v in chunk]
            if leaves:
                leaves[-1].next = leaf
            leaves.append(leaf)
        # Avoid an underfull final leaf by rebalancing with its predecessor
        # (or absorbing it entirely when the pair fits in one leaf).
        if len(leaves) >= 2 and len(leaves[-1].keys) < self._min_keys:
            prev, last = leaves[-2], leaves[-1]
            all_keys = prev.keys + last.keys
            all_vals = prev.values + last.values
            if len(all_keys) <= self.order:
                prev.keys, prev.values = all_keys, all_vals
                prev.next = last.next
                leaves.pop()
            else:
                split = max(self._min_keys, len(all_keys) // 2)
                prev.keys, last.keys = all_keys[:split], all_keys[split:]
                prev.values, last.values = all_vals[:split], all_vals[split:]

        level: List[_Node] = list(leaves)
        height = 1
        min_children = self._min_keys + 1
        while len(level) > 1:
            fanout = max(min_children, (self.order * 2) // 3 + 1)
            groups: List[List[_Node]] = [
                level[start : start + fanout] for start in range(0, len(level), fanout)
            ]
            # A trailing underfull parent would violate the occupancy
            # invariant: rebalance it with its predecessor.
            if len(groups) >= 2 and len(groups[-1]) < min_children:
                combined = groups[-2] + groups[-1]
                if len(combined) <= self.order + 1:
                    groups[-2:] = [combined]
                else:
                    split = max(min_children, len(combined) // 2)
                    groups[-2], groups[-1] = combined[:split], combined[split:]
            parents: List[_Node] = []
            for group in groups:
                node = _Internal()
                node.children = list(group)
                node.keys = [self._subtree_min(c) for c in group[1:]]
                parents.append(node)
            level = parents
            height += 1
        self._root = level[0]
        self._height = height
        self._size = len(items)

    @staticmethod
    def _subtree_min(node: _Node) -> Any:
        while not node.is_leaf:
            node = node.children[0]  # type: ignore[attr-defined]
        return node.keys[0]

    # ------------------------------------------------------------------
    # Invariant checking (used heavily by property tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise :class:`BTreeError` if any structural invariant is violated."""
        leaf_depths: List[int] = []
        count = self._check_node(self._root, None, None, 1, leaf_depths, is_root=True)
        if count != self._size:
            raise BTreeError(f"size mismatch: counted {count}, recorded {self._size}")
        if leaf_depths and len(set(leaf_depths)) != 1:
            raise BTreeError(f"leaves at differing depths: {sorted(set(leaf_depths))}")
        if leaf_depths and leaf_depths[0] != self._height:
            raise BTreeError(
                f"height mismatch: leaves at {leaf_depths[0]}, recorded {self._height}"
            )
        # Leaf chain must reproduce an in-order traversal.
        chained = [k for k, _v in self.scan()]
        if chained != sorted(chained):
            raise BTreeError("leaf chain is not sorted")
        if len(chained) != self._size:
            raise BTreeError("leaf chain misses entries")

    def _check_node(
        self,
        node: _Node,
        lo: Any,
        hi: Any,
        depth: int,
        leaf_depths: List[int],
        is_root: bool = False,
    ) -> int:
        keys = node.keys
        if keys != sorted(keys):
            raise BTreeError(f"unsorted keys in node: {keys}")
        for key in keys:
            if lo is not None and key < lo:
                raise BTreeError(f"key {key!r} below subtree bound {lo!r}")
            if hi is not None and key >= hi:
                raise BTreeError(f"key {key!r} above subtree bound {hi!r}")
        if node.is_leaf:
            leaf = node  # type: ignore[assignment]
            if not is_root and len(keys) < self._min_keys:
                raise BTreeError(f"underfull leaf: {len(keys)} < {self._min_keys}")
            if len(keys) > self.order:
                raise BTreeError(f"overfull leaf: {len(keys)} > {self.order}")
            if len(leaf.keys) != len(leaf.values):  # type: ignore[attr-defined]
                raise BTreeError("leaf keys/values length mismatch")
            leaf_depths.append(depth)
            return len(keys)
        internal = node  # type: ignore[assignment]
        children = internal.children  # type: ignore[attr-defined]
        if len(children) != len(keys) + 1:
            raise BTreeError(
                f"internal child count {len(children)} != keys+1 ({len(keys) + 1})"
            )
        min_children = 2 if is_root else self._min_keys + 1
        if len(children) < min_children:
            raise BTreeError(f"underfull internal: {len(children)} < {min_children}")
        if len(keys) > self.order:
            raise BTreeError(f"overfull internal: {len(keys)} > {self.order}")
        total = 0
        bounds = [lo] + list(keys) + [hi]
        for i, child in enumerate(children):
            total += self._check_node(child, bounds[i], bounds[i + 1], depth + 1, leaf_depths)
        return total

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _visit(self, is_leaf: bool) -> None:
        if self.visit_hook is not None:
            self.visit_hook(is_leaf)

    def _find_leaf(self, key: Any) -> _Leaf:
        node = self._root
        while not node.is_leaf:
            self._visit(False)
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]  # type: ignore[attr-defined]
        self._visit(True)
        return node  # type: ignore[return-value]

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while not node.is_leaf:
            self._visit(False)
            node = node.children[0]  # type: ignore[attr-defined]
        return node  # type: ignore[return-value]

    def _insert_into(
        self, node: _Node, key: Any, value: Any
    ) -> Optional[Tuple[Any, _Node]]:
        if node.is_leaf:
            leaf: _Leaf = node  # type: ignore[assignment]
            idx = bisect.bisect_left(leaf.keys, key)
            if idx < len(leaf.keys) and leaf.keys[idx] == key:
                raise BTreeError(f"duplicate key {key!r}")
            leaf.keys.insert(idx, key)
            leaf.values.insert(idx, value)
            if len(leaf.keys) <= self.order:
                return None
            return self._split_leaf(leaf)
        internal: _Internal = node  # type: ignore[assignment]
        idx = bisect.bisect_right(internal.keys, key)
        split = self._insert_into(internal.children[idx], key, value)
        if split is None:
            return None
        sep, right = split
        internal.keys.insert(idx, sep)
        internal.children.insert(idx + 1, right)
        if len(internal.keys) <= self.order:
            return None
        return self._split_internal(internal)

    def _split_leaf(self, leaf: _Leaf) -> Tuple[Any, _Node]:
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next = leaf.next
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal) -> Tuple[Any, _Node]:
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Internal()
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep, right

    def _delete_from(self, node: _Node, key: Any) -> Any:
        if node.is_leaf:
            leaf: _Leaf = node  # type: ignore[assignment]
            idx = bisect.bisect_left(leaf.keys, key)
            if idx >= len(leaf.keys) or leaf.keys[idx] != key:
                raise BTreeError(f"key not found: {key!r}")
            leaf.keys.pop(idx)
            return leaf.values.pop(idx)
        internal: _Internal = node  # type: ignore[assignment]
        idx = bisect.bisect_right(internal.keys, key)
        value = self._delete_from(internal.children[idx], key)
        self._fix_underflow(internal, idx)
        return value

    def _fix_underflow(self, parent: _Internal, idx: int) -> None:
        child = parent.children[idx]
        min_needed = self._min_keys if child.is_leaf else self._min_keys
        if len(child.keys) >= min_needed:
            return
        # Try borrowing from the left sibling, then the right, else merge.
        if idx > 0 and len(parent.children[idx - 1].keys) > min_needed:
            self._borrow_left(parent, idx)
        elif idx < len(parent.children) - 1 and len(parent.children[idx + 1].keys) > min_needed:
            self._borrow_right(parent, idx)
        elif idx > 0:
            self._merge(parent, idx - 1)
        else:
            self._merge(parent, idx)

    def _borrow_left(self, parent: _Internal, idx: int) -> None:
        left, child = parent.children[idx - 1], parent.children[idx]
        if child.is_leaf:
            lleaf, cleaf = left, child  # type: ignore[assignment]
            cleaf.keys.insert(0, lleaf.keys.pop())
            cleaf.values.insert(0, lleaf.values.pop())  # type: ignore[attr-defined]
            parent.keys[idx - 1] = cleaf.keys[0]
        else:
            lint, cint = left, child  # type: ignore[assignment]
            cint.keys.insert(0, parent.keys[idx - 1])
            parent.keys[idx - 1] = lint.keys.pop()
            cint.children.insert(0, lint.children.pop())  # type: ignore[attr-defined]

    def _borrow_right(self, parent: _Internal, idx: int) -> None:
        child, right = parent.children[idx], parent.children[idx + 1]
        if child.is_leaf:
            cleaf, rleaf = child, right  # type: ignore[assignment]
            cleaf.keys.append(rleaf.keys.pop(0))
            cleaf.values.append(rleaf.values.pop(0))  # type: ignore[attr-defined]
            parent.keys[idx] = rleaf.keys[0]
        else:
            cint, rint = child, right  # type: ignore[assignment]
            cint.keys.append(parent.keys[idx])
            parent.keys[idx] = rint.keys.pop(0)
            cint.children.append(rint.children.pop(0))  # type: ignore[attr-defined]

    def _merge(self, parent: _Internal, left_idx: int) -> None:
        left = parent.children[left_idx]
        right = parent.children[left_idx + 1]
        if left.is_leaf:
            lleaf, rleaf = left, right  # type: ignore[assignment]
            lleaf.keys.extend(rleaf.keys)
            lleaf.values.extend(rleaf.values)  # type: ignore[attr-defined]
            lleaf.next = rleaf.next  # type: ignore[attr-defined]
        else:
            lint, rint = left, right  # type: ignore[assignment]
            lint.keys.append(parent.keys[left_idx])
            lint.keys.extend(rint.keys)
            lint.children.extend(rint.children)  # type: ignore[attr-defined]
        parent.keys.pop(left_idx)
        parent.children.pop(left_idx + 1)
