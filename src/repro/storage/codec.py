"""Self-describing binary codec for row values.

Heap tables store rows as byte strings; this codec defines the format.  It
is a compact tag-length-value encoding covering every type the engine's
rows can contain, including geometries (stored in their SDO array form, the
same flattening the original system keeps on disk).

The format is deliberately independent of ``pickle`` so that on-disk bytes
are stable across Python versions and safe to read back.
"""

from __future__ import annotations

import struct
import sys
from array import array
from typing import Any, List, Sequence, Tuple

from repro.errors import StorageError
from repro.geometry.geometry import Geometry
from repro.geometry.mbr import MBR
from repro.geometry.sdo import SdoGeometry, from_sdo, to_sdo
from repro.storage.heap import RowId

__all__ = [
    "encode_row",
    "decode_row",
    "encode_value",
    "decode_value",
    "encode_f64_array",
    "decode_f64_array",
    "encode_u32_array",
    "decode_u32_array",
]

_TAG_NONE = 0
_TAG_FALSE = 1
_TAG_TRUE = 2
_TAG_INT = 3
_TAG_FLOAT = 4
_TAG_STR = 5
_TAG_BYTES = 6
_TAG_TUPLE = 7
_TAG_GEOMETRY = 8
_TAG_MBR = 9
_TAG_ROWID = 10

_U32 = struct.Struct("<I")
_F64 = struct.Struct("<d")
_I64 = struct.Struct("<q")


def encode_row(values: Sequence[Any]) -> bytes:
    """Encode a row (sequence of values) to bytes."""
    out = bytearray()
    out += _U32.pack(len(values))
    for value in values:
        _encode_into(out, value)
    return bytes(out)


def decode_row(data: bytes) -> Tuple[Any, ...]:
    """Decode bytes produced by :func:`encode_row`."""
    (count,) = _U32.unpack_from(data, 0)
    offset = _U32.size
    values: List[Any] = []
    for _ in range(count):
        value, offset = _decode_from(data, offset)
        values.append(value)
    if offset != len(data):
        raise StorageError(f"trailing bytes after row decode: {len(data) - offset}")
    return tuple(values)


def encode_value(value: Any) -> bytes:
    """Encode a single value (used for index keys stored out-of-line)."""
    out = bytearray()
    _encode_into(out, value)
    return bytes(out)


def decode_value(data: bytes) -> Any:
    """Decode bytes produced by :func:`encode_value`."""
    value, offset = _decode_from(data, 0)
    if offset != len(data):
        raise StorageError("trailing bytes after value decode")
    return value


# ----------------------------------------------------------------------
# Batch array fast paths
#
# The scalar encoder emits float64/uint32 sequences one ``struct.pack``
# call per value (the geometry ordinate/elem_info loops).  These helpers
# produce the *same bytes* in one C-level call — ``array('d')`` for the
# float plane, a single width-parameterised ``struct`` format for the
# uint plane — so the geometry codec and the columnar chunk writer pay
# O(1) Python overhead per array instead of O(n).  Byte-compatibility
# with the scalar loops is pinned by tests/storage/test_codec.py.
# ----------------------------------------------------------------------
def encode_f64_array(values: Sequence[float]) -> bytes:
    """Little-endian float64 concatenation, one call (== ``_F64.pack`` loop)."""
    arr = (
        values
        if isinstance(values, array) and values.typecode == "d"
        else array("d", values)
    )
    if sys.byteorder != "little":
        arr = array("d", arr)
        arr.byteswap()
    return arr.tobytes()


def decode_f64_array(data: bytes, offset: int, count: int) -> Tuple[array, int]:
    """Decode ``count`` little-endian float64s starting at ``offset``.

    Returns an ``array('d')`` (zero-copy-viewable by numpy) and the new
    offset.  Inverse of :func:`encode_f64_array`.
    """
    end = offset + 8 * count
    if end > len(data):
        raise StorageError(
            f"f64 array overruns buffer: need {end}, have {len(data)}"
        )
    arr = array("d")
    arr.frombytes(data[offset:end])
    if sys.byteorder != "little":
        arr.byteswap()
    return arr, end


def encode_u32_array(values: Sequence[int]) -> bytes:
    """Little-endian uint32 concatenation, one call (== ``_U32.pack`` loop)."""
    return struct.pack(f"<{len(values)}I", *values)


def decode_u32_array(data: bytes, offset: int, count: int) -> Tuple[List[int], int]:
    """Decode ``count`` little-endian uint32s; inverse of :func:`encode_u32_array`."""
    end = offset + 4 * count
    if end > len(data):
        raise StorageError(
            f"u32 array overruns buffer: need {end}, have {len(data)}"
        )
    return list(struct.unpack_from(f"<{count}I", data, offset)), end


def _encode_into(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(_TAG_NONE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif isinstance(value, int):
        out.append(_TAG_INT)
        out += _I64.pack(value)
    elif isinstance(value, float):
        out.append(_TAG_FLOAT)
        out += _F64.pack(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_TAG_STR)
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, bytes):
        out.append(_TAG_BYTES)
        out += _U32.pack(len(value))
        out += value
    elif isinstance(value, tuple):
        out.append(_TAG_TUPLE)
        out += _U32.pack(len(value))
        for item in value:
            _encode_into(out, item)
    elif isinstance(value, Geometry):
        sdo = to_sdo(value)
        out.append(_TAG_GEOMETRY)
        out += _U32.pack(sdo.gtype)
        out += _U32.pack(len(sdo.elem_info))
        out += encode_u32_array(sdo.elem_info)
        out += _U32.pack(len(sdo.ordinates))
        out += encode_f64_array(sdo.ordinates)
    elif isinstance(value, MBR):
        out.append(_TAG_MBR)
        out += _F64.pack(value.min_x)
        out += _F64.pack(value.min_y)
        out += _F64.pack(value.max_x)
        out += _F64.pack(value.max_y)
    elif isinstance(value, RowId):
        out.append(_TAG_ROWID)
        out += _U32.pack(value.page)
        out += _U32.pack(value.slot)
    else:
        raise StorageError(f"cannot encode value of type {type(value).__name__}")


def _decode_from(data: bytes, offset: int) -> Tuple[Any, int]:
    tag = data[offset]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_INT:
        (v,) = _I64.unpack_from(data, offset)
        return v, offset + _I64.size
    if tag == _TAG_FLOAT:
        (f,) = _F64.unpack_from(data, offset)
        return f, offset + _F64.size
    if tag == _TAG_STR:
        (n,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        return data[offset : offset + n].decode("utf-8"), offset + n
    if tag == _TAG_BYTES:
        (n,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        return bytes(data[offset : offset + n]), offset + n
    if tag == _TAG_TUPLE:
        (n,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        items: List[Any] = []
        for _ in range(n):
            item, offset = _decode_from(data, offset)
            items.append(item)
        return tuple(items), offset
    if tag == _TAG_GEOMETRY:
        (gtype,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        (n_elem,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        elem_info, offset = decode_u32_array(data, offset, n_elem)
        (n_ord,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        ord_arr, offset = decode_f64_array(data, offset, n_ord)
        return from_sdo(SdoGeometry(gtype, elem_info, list(ord_arr))), offset
    if tag == _TAG_MBR:
        vals = []
        for _ in range(4):
            (f,) = _F64.unpack_from(data, offset)
            vals.append(f)
            offset += _F64.size
        return MBR(*vals), offset
    if tag == _TAG_ROWID:
        (page,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        (slot,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        return RowId(page, slot), offset
    raise StorageError(f"unknown codec tag {tag} at offset {offset - 1}")
