"""The database catalog.

Keeps metadata for tables and domain indexes.  :class:`IndexMeta` is the
reproduction of the paper's spatial-index *metadata table* row: the name of
the index table that stores the index content, the indexed table/column,
dimensionality, the root pointer and fanout for an R-tree, or the tiling
level for a quadtree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import CatalogError

__all__ = ["ColumnMeta", "TableMeta", "IndexMeta", "Catalog"]


@dataclass
class ColumnMeta:
    """One column: a name and a type tag.

    Type tags are strings ('NUMBER', 'VARCHAR', 'SDO_GEOMETRY', 'ROWID')
    rather than Python classes so catalog rows themselves remain plain data.
    """

    name: str
    type_tag: str


@dataclass
class TableMeta:
    """Catalog entry for one heap table."""

    name: str
    columns: List[ColumnMeta]
    heap_name: str

    def column_index(self, name: str) -> int:
        for i, col in enumerate(self.columns):
            if col.name.upper() == name.upper():
                return i
        raise CatalogError(f"table {self.name!r} has no column {name!r}")

    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]


@dataclass
class IndexMeta:
    """Catalog entry for one index (the paper's metadata-table row).

    ``index_kind`` is 'RTREE', 'QUADTREE' or 'BTREE'.  ``parameters`` holds
    kind-specific settings: R-trees record ``fanout`` and ``root`` (a root
    pointer into the index table); quadtrees record ``tiling_level``;
    B-trees record ``order``.
    """

    name: str
    table_name: str
    column_name: str
    index_kind: str
    index_table_name: str
    dimensionality: int = 2
    parameters: Dict[str, Any] = field(default_factory=dict)
    parallel_degree: int = 1


class Catalog:
    """In-memory catalog of tables and indexes.

    Lookups are case-insensitive on names, matching SQL identifier rules.
    """

    def __init__(self) -> None:
        self._tables: Dict[str, TableMeta] = {}
        self._indexes: Dict[str, IndexMeta] = {}

    # -- tables ----------------------------------------------------------
    def register_table(self, meta: TableMeta) -> None:
        key = meta.name.upper()
        if key in self._tables:
            raise CatalogError(f"table {meta.name!r} already exists")
        self._tables[key] = meta

    def drop_table(self, name: str) -> None:
        key = name.upper()
        if key not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        for index in self.indexes_on(name):
            del self._indexes[index.name.upper()]
        del self._tables[key]

    def table(self, name: str) -> TableMeta:
        try:
            return self._tables[name.upper()]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.upper() in self._tables

    def tables(self) -> List[TableMeta]:
        return list(self._tables.values())

    # -- indexes ---------------------------------------------------------
    def register_index(self, meta: IndexMeta) -> None:
        key = meta.name.upper()
        if key in self._indexes:
            raise CatalogError(f"index {meta.name!r} already exists")
        if meta.table_name.upper() not in self._tables:
            raise CatalogError(
                f"cannot index unknown table {meta.table_name!r}"
            )
        self._indexes[key] = meta

    def drop_index(self, name: str) -> None:
        key = name.upper()
        if key not in self._indexes:
            raise CatalogError(f"unknown index {name!r}")
        del self._indexes[key]

    def index(self, name: str) -> IndexMeta:
        try:
            return self._indexes[name.upper()]
        except KeyError:
            raise CatalogError(f"unknown index {name!r}") from None

    def has_index(self, name: str) -> bool:
        return name.upper() in self._indexes

    def indexes(self) -> List[IndexMeta]:
        return list(self._indexes.values())

    def indexes_on(self, table_name: str) -> List[IndexMeta]:
        key = table_name.upper()
        return [m for m in self._indexes.values() if m.table_name.upper() == key]

    def spatial_index_on(
        self, table_name: str, column_name: str
    ) -> Optional[IndexMeta]:
        """Find the spatial (R-tree or quadtree) index on a geometry column."""
        for meta in self.indexes_on(table_name):
            if (
                meta.column_name.upper() == column_name.upper()
                and meta.index_kind in ("RTREE", "QUADTREE")
            ):
                return meta
        return None
