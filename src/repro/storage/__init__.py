"""Storage substrate: pages, buffer cache, heaps, B+-tree, catalog, WAL."""

from repro.storage.btree import BPlusTree
from repro.storage.buffer import BufferPool, BufferStats
from repro.storage.catalog import Catalog, ColumnMeta, IndexMeta, TableMeta
from repro.storage.checksum import crc32c, mask_crc, unmask_crc
from repro.storage.codec import decode_row, decode_value, encode_row, encode_value
from repro.storage.fault import (
    CrashPoint,
    FaultPlan,
    FaultyFile,
    FaultyPager,
    InjectedIOError,
)
from repro.storage.heap import HeapFile, RowId
from repro.storage.pager import (
    PAGE_SIZE,
    FilePager,
    MemoryPager,
    Pager,
    PagerStats,
    fsync_file,
)
from repro.storage.wal import RecoveryInfo, WalPager, WriteAheadLog

__all__ = [
    "PAGE_SIZE",
    "Pager",
    "MemoryPager",
    "FilePager",
    "PagerStats",
    "fsync_file",
    "BufferPool",
    "BufferStats",
    "HeapFile",
    "RowId",
    "BPlusTree",
    "encode_row",
    "decode_row",
    "encode_value",
    "decode_value",
    "Catalog",
    "ColumnMeta",
    "TableMeta",
    "IndexMeta",
    "crc32c",
    "mask_crc",
    "unmask_crc",
    "WriteAheadLog",
    "WalPager",
    "RecoveryInfo",
    "CrashPoint",
    "InjectedIOError",
    "FaultPlan",
    "FaultyFile",
    "FaultyPager",
]
