"""Storage substrate: pages, buffer cache, heaps, B+-tree, catalog."""

from repro.storage.btree import BPlusTree
from repro.storage.buffer import BufferPool, BufferStats
from repro.storage.catalog import Catalog, ColumnMeta, IndexMeta, TableMeta
from repro.storage.codec import decode_row, decode_value, encode_row, encode_value
from repro.storage.heap import HeapFile, RowId
from repro.storage.pager import PAGE_SIZE, FilePager, MemoryPager, Pager, PagerStats

__all__ = [
    "PAGE_SIZE",
    "Pager",
    "MemoryPager",
    "FilePager",
    "PagerStats",
    "BufferPool",
    "BufferStats",
    "HeapFile",
    "RowId",
    "BPlusTree",
    "encode_row",
    "decode_row",
    "encode_value",
    "decode_value",
    "Catalog",
    "ColumnMeta",
    "TableMeta",
    "IndexMeta",
]
