"""LRU buffer cache over a :class:`~repro.storage.pager.Pager`.

The buffer cache is where the simulated cost model hooks in: every *logical*
page access is visible here, whether or not it hits the cache, so the
executor can charge buffer-get vs physical-read costs the way a real server
distinguishes logical and physical I/O.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import StorageError
from repro.obs import trace
from repro.storage.pager import Pager

__all__ = ["BufferStats", "BufferPool"]


@dataclass
class BufferStats:
    """Logical/physical access counters for one buffer pool."""

    gets: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_writebacks: int = 0
    prefetches: int = 0
    prefetch_hits: int = 0

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.gets if self.gets else 0.0

    def reset(self) -> None:
        self.gets = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_writebacks = 0
        self.prefetches = 0
        self.prefetch_hits = 0


class _Frame:
    __slots__ = ("data", "dirty")

    def __init__(self, data: bytearray):
        self.data = data
        self.dirty = False


class BufferPool:
    """Fixed-capacity LRU page cache.

    ``get`` returns the cached page bytes; ``put`` installs new content and
    marks the frame dirty.  Dirty frames are written back on eviction and on
    :meth:`flush`.  An optional ``access_hook`` is called with
    ``(page_id, hit)`` on every logical get — the simulated-time executor
    registers its cost-charging callback there.
    """

    def __init__(
        self,
        pager: Pager,
        capacity: int = 256,
        access_hook: Optional[Callable[[int, bool], None]] = None,
    ):
        if capacity < 1:
            raise StorageError(f"buffer capacity must be >= 1, got {capacity}")
        self._pager = pager
        self._capacity = capacity
        self._frames: "OrderedDict[int, _Frame]" = OrderedDict()
        self._prefetched: set = set()
        self.stats = BufferStats()
        self.access_hook = access_hook

    @property
    def pager(self) -> Pager:
        return self._pager

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def page_size(self) -> int:
        return self._pager.page_size

    # ------------------------------------------------------------------
    def allocate(self) -> int:
        """Allocate a fresh page and cache its (zeroed) frame."""
        page_id = self._pager.allocate()
        self._install(page_id, bytearray(self._pager.page_size), dirty=False)
        return page_id

    def get(self, page_id: int, scan: bool = False) -> bytes:
        """Read a page through the cache.

        ``scan=True`` marks a sequential-scan touch: the frame is *not*
        promoted to the hot end of the LRU (a miss is installed at the
        cold end), so a full-table sweep recycles its own frames instead
        of evicting the working set — hot index interior pages survive a
        columnar scan of any length.
        """
        self.stats.gets += 1
        frame = self._frames.get(page_id)
        hit = frame is not None
        if hit:
            self.stats.hits += 1
            if page_id in self._prefetched:
                self._prefetched.discard(page_id)
                self.stats.prefetch_hits += 1
            if not scan:
                self._frames.move_to_end(page_id)
        else:
            self.stats.misses += 1
            if trace.ENABLED:
                trace.instant("buffer.miss", page=page_id)
            data = bytearray(self._pager.read(page_id))
            frame = self._install(page_id, data, dirty=False)
            if scan:
                self._frames.move_to_end(page_id, last=False)
        if self.access_hook is not None:
            self.access_hook(page_id, hit)
        assert frame is not None
        return bytes(frame.data)

    def prefetch(self, page_ids) -> int:
        """Readahead hint: pull ``page_ids`` into the cache ahead of use.

        Pages already resident are untouched.  Fetched pages are installed
        *scan-resistantly* (at the cold end of the LRU) so a long readahead
        run cannot evict the hot working set; a later :meth:`get` of a
        prefetched page counts as a ``prefetch_hit``.  Not a logical get:
        no access-hook callback, no ``gets`` counted.  Returns the number
        of pages actually fetched.
        """
        fetched = 0
        for page_id in page_ids:
            if page_id in self._frames:
                continue
            data = bytearray(self._pager.read(page_id))
            self._install(page_id, data, dirty=False)
            self._frames.move_to_end(page_id, last=False)
            self._prefetched.add(page_id)
            self.stats.prefetches += 1
            fetched += 1
        return fetched

    def put(self, page_id: int, data: bytes) -> None:
        """Write new page content through the cache (write-back)."""
        if len(data) != self._pager.page_size:
            raise StorageError(
                f"page payload must be {self._pager.page_size} bytes, got {len(data)}"
            )
        frame = self._frames.get(page_id)
        if frame is None:
            frame = self._install(page_id, bytearray(data), dirty=True)
        else:
            frame.data[:] = data
            frame.dirty = True
            self._frames.move_to_end(page_id)

    def flush(self) -> None:
        """Write every dirty frame back to the pager.

        Dirty pages are written in ascending page-id order (not LRU order)
        so the physical write sequence is a pure function of the dirty set:
        fault-injection replay counts on write N of a flush always being
        the same page, and a sequential sweep is the friendlier pattern for
        a real disk anyway.
        """
        for page_id in sorted(self._frames):
            frame = self._frames[page_id]
            if frame.dirty:
                self._pager.write(page_id, bytes(frame.data))
                frame.dirty = False
                self.stats.dirty_writebacks += 1

    def invalidate(self) -> None:
        """Flush then drop every frame (used between benchmark runs)."""
        self.flush()
        self._frames.clear()
        self._prefetched.clear()

    def cached_page_ids(self) -> List[int]:
        return list(self._frames.keys())

    # ------------------------------------------------------------------
    def _install(self, page_id: int, data: bytearray, dirty: bool) -> _Frame:
        while len(self._frames) >= self._capacity:
            self._evict_one()
        frame = _Frame(data)
        frame.dirty = dirty
        self._frames[page_id] = frame
        return frame

    def _evict_one(self) -> None:
        victim_id, victim = self._frames.popitem(last=False)
        self._prefetched.discard(victim_id)
        self.stats.evictions += 1
        if victim.dirty:
            self._pager.write(victim_id, bytes(victim.data))
            self.stats.dirty_writebacks += 1
