"""Heap tables: slotted pages, stable rowids, overflow chains.

A :class:`HeapFile` stores variable-length records (already encoded to
bytes by :mod:`repro.storage.codec`) and hands out :class:`RowId` values
that stay stable for the life of the record — updates never move a rowid.
Rowids order by ``(page, slot)``, i.e. physical order; the spatial join
sorts its candidate pairs by first rowid precisely because that makes the
secondary filter's fetches sweep the heap sequentially (paper §4.2).

Records larger than a page spill into an overflow chain, which is what
lets block-group polygons with thousands of vertices live in ordinary
tables.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import PageError, RowIdError, StorageError
from repro.storage.buffer import BufferPool

__all__ = ["RowId", "HeapFile"]

_HDR = struct.Struct("<HH")  # num_slots, free_offset
_SLOT = struct.Struct("<HH")  # record offset, record length
_OVF_HDR = struct.Struct("<IH")  # next page id (0xFFFFFFFF = none), chunk length
_OVF_PTR = struct.Struct("<II")  # first overflow page, total record length
_INLINE_LEN = struct.Struct("<H")  # actual record length inside an inline payload

# Every slot payload is at least overflow-pointer sized, so any record can
# later be converted to an overflow chain *in place* — the guarantee that
# keeps rowids stable under growth on an otherwise-full page.
_MIN_PAYLOAD = 1 + _OVF_PTR.size

_DEAD = 0xFFFF
_NO_PAGE = 0xFFFFFFFF

_FLAG_INLINE = 0
_FLAG_OVERFLOW = 1


@dataclass(frozen=True, order=True, slots=True)
class RowId:
    """Physical row address: (page, slot).  Totally ordered, hashable."""

    page: int
    slot: int

    def __repr__(self) -> str:
        return f"RowId({self.page}:{self.slot})"


class HeapFile:
    """A heap of variable-length records over a buffer pool.

    One HeapFile owns a set of page ids inside the pool's pager; several
    heaps can share a pool (that is how a database keeps base tables and
    index tables in one buffer cache, as the paper's system does).
    """

    def __init__(self, pool: BufferPool, name: str = "heap"):
        self._pool = pool
        self.name = name
        self._pages: List[int] = []  # heap data pages, in allocation order
        self._page_index: dict[int, int] = {}  # page id -> position in _pages
        self._free_candidates: Set[int] = set()  # pages with reclaimed space
        self._row_count = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def row_count(self) -> int:
        return self._row_count

    @property
    def page_count(self) -> int:
        return len(self._pages)

    @property
    def pool(self) -> BufferPool:
        return self._pool

    def insert(self, record: bytes) -> RowId:
        """Store a record, returning its stable rowid."""
        payload = self._make_payload(record)
        page_id, slot = self._place_payload(payload)
        self._row_count += 1
        return RowId(page_id, slot)

    def read(self, rowid: RowId) -> bytes:
        """Fetch the record bytes for a live rowid."""
        page = bytearray(self._pool.get(self._check_page(rowid)))
        offset, length = self._slot_entry(page, rowid)
        payload = bytes(page[offset : offset + length])
        return self._resolve_payload(payload)

    def delete(self, rowid: RowId) -> None:
        """Remove a record; its rowid becomes invalid."""
        page_id = self._check_page(rowid)
        page = bytearray(self._pool.get(page_id))
        offset, length = self._slot_entry(page, rowid)
        payload = bytes(page[offset : offset + length])
        if payload and payload[0] == _FLAG_OVERFLOW:
            first, _total = _OVF_PTR.unpack_from(payload, 1)
            self._free_overflow_chain(first)
        _SLOT.pack_into(page, self._slot_dir_offset(rowid.slot), _DEAD, 0)
        self._pool.put(page_id, bytes(page))
        self._free_candidates.add(page_id)
        self._row_count -= 1

    def update(self, rowid: RowId, record: bytes) -> None:
        """Replace a record in place; the rowid remains valid."""
        page_id = self._check_page(rowid)
        page = bytearray(self._pool.get(page_id))
        offset, old_length = self._slot_entry(page, rowid)
        old_payload = bytes(page[offset : offset + old_length])
        if old_payload and old_payload[0] == _FLAG_OVERFLOW:
            first, _total = _OVF_PTR.unpack_from(old_payload, 1)
            self._free_overflow_chain(first)

        payload = self._make_payload(record)
        if len(payload) <= old_length:
            page[offset : offset + len(payload)] = payload
            _SLOT.pack_into(
                page, self._slot_dir_offset(rowid.slot), offset, len(payload)
            )
            self._pool.put(page_id, bytes(page))
            return
        # Doesn't fit in the old hole: compact the page and retry, spilling
        # to an overflow chain if the compacted page still lacks room.
        if not self._replace_with_compaction(page_id, rowid.slot, payload):
            overflow = self._spill(record)
            if not self._replace_with_compaction(page_id, rowid.slot, overflow):
                raise StorageError(
                    f"page {page_id} cannot hold even an overflow pointer"
                )

    def scan(self) -> Iterator[Tuple[RowId, bytes]]:
        """Yield every live record in physical (rowid) order."""
        for page_id in self._pages:
            page = self._pool.get(page_id)
            num_slots, _free = _HDR.unpack_from(page, 0)
            for slot in range(num_slots):
                offset, length = _SLOT.unpack_from(
                    page, len(page) - _SLOT.size * (slot + 1)
                )
                if offset == _DEAD:
                    continue
                payload = bytes(page[offset : offset + length])
                yield RowId(page_id, slot), self._resolve_payload(payload)

    def rowids(self) -> Iterator[RowId]:
        for rowid, _record in self.scan():
            yield rowid

    # ------------------------------------------------------------------
    # Persistence (page-list snapshot)
    # ------------------------------------------------------------------
    def pages_snapshot(self) -> Tuple[Tuple[int, ...], int]:
        """The heap's durable identity: its page list and row count.

        A heap is fully described by which pager pages it owns (overflow
        pages are reachable from pointers inside those pages); the
        database's checkpoint stores this tuple in its meta snapshot so
        :meth:`restore_pages` can rebind the heap after reopening.
        """
        return tuple(self._pages), self._row_count

    def restore_pages(self, pages: Sequence[int], row_count: int) -> None:
        """Rebind this (empty) heap to an existing page list."""
        if self._pages:
            raise StorageError(
                f"heap {self.name!r} already owns pages; restore needs a fresh heap"
            )
        self._pages = list(pages)
        self._page_index = {pid: i for i, pid in enumerate(self._pages)}
        self._free_candidates = set()
        self._row_count = row_count

    # ------------------------------------------------------------------
    # Payload framing (inline vs overflow)
    # ------------------------------------------------------------------
    def _max_inline(self) -> int:
        # one slot entry + header must also fit on an otherwise empty page
        return self._pool.page_size - _HDR.size - _SLOT.size - 1 - _INLINE_LEN.size

    def _make_payload(self, record: bytes) -> bytes:
        if len(record) <= self._max_inline():
            payload = (
                bytes((_FLAG_INLINE,)) + _INLINE_LEN.pack(len(record)) + record
            )
            if len(payload) < _MIN_PAYLOAD:
                payload += bytes(_MIN_PAYLOAD - len(payload))
            return payload
        return self._spill(record)

    def _spill(self, record: bytes) -> bytes:
        """Write ``record`` to an overflow chain; return the pointer payload."""
        chunk_cap = self._pool.page_size - _OVF_HDR.size
        chunks = [record[i : i + chunk_cap] for i in range(0, len(record), chunk_cap)]
        next_page = _NO_PAGE
        # Build the chain back-to-front so each page knows its successor.
        for chunk in reversed(chunks):
            page_id = self._pool.allocate()
            page = bytearray(self._pool.page_size)
            _OVF_HDR.pack_into(page, 0, next_page, len(chunk))
            page[_OVF_HDR.size : _OVF_HDR.size + len(chunk)] = chunk
            self._pool.put(page_id, bytes(page))
            next_page = page_id
        return bytes((_FLAG_OVERFLOW,)) + _OVF_PTR.pack(next_page, len(record))

    def _resolve_payload(self, payload: bytes) -> bytes:
        if not payload:
            raise StorageError("empty payload in live slot")
        flag = payload[0]
        if flag == _FLAG_INLINE:
            (length,) = _INLINE_LEN.unpack_from(payload, 1)
            return payload[1 + _INLINE_LEN.size : 1 + _INLINE_LEN.size + length]
        if flag == _FLAG_OVERFLOW:
            first, total = _OVF_PTR.unpack_from(payload, 1)
            return self._read_overflow_chain(first, total)
        raise StorageError(f"bad payload flag {flag}")

    def _read_overflow_chain(self, first: int, total: int) -> bytes:
        out = bytearray()
        page_id = first
        while page_id != _NO_PAGE:
            page = self._pool.get(page_id)
            next_page, chunk_len = _OVF_HDR.unpack_from(page, 0)
            out += page[_OVF_HDR.size : _OVF_HDR.size + chunk_len]
            page_id = next_page
        if len(out) != total:
            raise StorageError(
                f"overflow chain length mismatch: expected {total}, got {len(out)}"
            )
        return bytes(out)

    def _free_overflow_chain(self, first: int) -> None:
        # Pages are not returned to the pager (no global free list); they are
        # simply orphaned.  Space reclamation is out of scope, as it is for
        # the paper's experiments (bulk-loaded, append-mostly workloads).
        _ = first

    # ------------------------------------------------------------------
    # Slotted-page mechanics
    # ------------------------------------------------------------------
    def _place_payload(self, payload: bytes) -> Tuple[int, int]:
        need = len(payload) + _SLOT.size
        # Try the newest page first (append-friendly), then pages known to
        # have reclaimed space, then allocate.
        candidates: List[int] = []
        if self._pages:
            candidates.append(self._pages[-1])
        candidates.extend(list(self._free_candidates)[:8])
        for page_id in candidates:
            slot = self._try_append(page_id, payload, need)
            if slot is not None:
                return page_id, slot
        page_id = self._new_heap_page()
        slot = self._try_append(page_id, payload, need)
        if slot is None:
            raise PageError(
                f"record payload of {len(payload)} bytes cannot fit on a fresh page"
            )
        return page_id, slot

    def _new_heap_page(self) -> int:
        page_id = self._pool.allocate()
        page = bytearray(self._pool.page_size)
        _HDR.pack_into(page, 0, 0, _HDR.size)
        self._pool.put(page_id, bytes(page))
        self._page_index[page_id] = len(self._pages)
        self._pages.append(page_id)
        return page_id

    def _try_append(
        self, page_id: int, payload: bytes, need: int
    ) -> Optional[int]:
        page = bytearray(self._pool.get(page_id))
        num_slots, free_offset = _HDR.unpack_from(page, 0)
        dir_top = len(page) - _SLOT.size * num_slots
        # Prefer recycling a dead slot (no new directory entry needed).
        reuse_slot = None
        for slot in range(num_slots):
            offset, _length = _SLOT.unpack_from(
                page, len(page) - _SLOT.size * (slot + 1)
            )
            if offset == _DEAD:
                reuse_slot = slot
                break
        extra_dir = 0 if reuse_slot is not None else _SLOT.size
        if free_offset + len(payload) > dir_top - extra_dir:
            contiguous_ok = self._compact_in(page)
            num_slots, free_offset = _HDR.unpack_from(page, 0)
            dir_top = len(page) - _SLOT.size * num_slots
            if not contiguous_ok or free_offset + len(payload) > dir_top - extra_dir:
                self._free_candidates.discard(page_id)
                return None
        if reuse_slot is None:
            slot = num_slots
            num_slots += 1
        else:
            slot = reuse_slot
        page[free_offset : free_offset + len(payload)] = payload
        _SLOT.pack_into(
            page, len(page) - _SLOT.size * (slot + 1), free_offset, len(payload)
        )
        _HDR.pack_into(page, 0, num_slots, free_offset + len(payload))
        self._pool.put(page_id, bytes(page))
        return slot

    def _compact_in(self, page: bytearray) -> bool:
        """Slide live records together, rewriting the slot directory."""
        num_slots, _free = _HDR.unpack_from(page, 0)
        entries = []
        for slot in range(num_slots):
            offset, length = _SLOT.unpack_from(
                page, len(page) - _SLOT.size * (slot + 1)
            )
            if offset == _DEAD:
                entries.append((slot, None))
            else:
                entries.append((slot, bytes(page[offset : offset + length])))
        write_at = _HDR.size
        for slot, payload in entries:
            if payload is None:
                _SLOT.pack_into(page, len(page) - _SLOT.size * (slot + 1), _DEAD, 0)
                continue
            page[write_at : write_at + len(payload)] = payload
            _SLOT.pack_into(
                page, len(page) - _SLOT.size * (slot + 1), write_at, len(payload)
            )
            write_at += len(payload)
        _HDR.pack_into(page, 0, num_slots, write_at)
        return True

    def _replace_with_compaction(
        self, page_id: int, slot: int, payload: bytes
    ) -> bool:
        """Rewrite the page with ``slot`` holding ``payload``; False if too big."""
        page = bytearray(self._pool.get(page_id))
        num_slots, _free = _HDR.unpack_from(page, 0)
        entries = []
        for s in range(num_slots):
            offset, length = _SLOT.unpack_from(page, len(page) - _SLOT.size * (s + 1))
            if s == slot:
                entries.append((s, payload))
            elif offset == _DEAD:
                entries.append((s, None))
            else:
                entries.append((s, bytes(page[offset : offset + length])))
        live_bytes = sum(len(p) for _s, p in entries if p is not None)
        if _HDR.size + live_bytes > len(page) - _SLOT.size * num_slots:
            return False
        fresh = bytearray(len(page))
        _HDR.pack_into(fresh, 0, num_slots, _HDR.size)
        write_at = _HDR.size
        for s, pay in entries:
            if pay is None:
                _SLOT.pack_into(fresh, len(fresh) - _SLOT.size * (s + 1), _DEAD, 0)
                continue
            fresh[write_at : write_at + len(pay)] = pay
            _SLOT.pack_into(
                fresh, len(fresh) - _SLOT.size * (s + 1), write_at, len(pay)
            )
            write_at += len(pay)
        _HDR.pack_into(fresh, 0, num_slots, write_at)
        self._pool.put(page_id, bytes(fresh))
        return True

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def _check_page(self, rowid: RowId) -> int:
        if rowid.page not in self._page_index:
            raise RowIdError(f"{rowid} does not belong to heap {self.name!r}")
        return rowid.page

    def _slot_entry(self, page: bytearray, rowid: RowId) -> Tuple[int, int]:
        num_slots, _free = _HDR.unpack_from(page, 0)
        if not 0 <= rowid.slot < num_slots:
            raise RowIdError(f"{rowid}: slot out of range (page has {num_slots})")
        offset, length = _SLOT.unpack_from(page, self._slot_dir_offset(rowid.slot))
        if offset == _DEAD:
            raise RowIdError(f"{rowid} refers to a deleted row")
        return offset, length

    def _slot_dir_offset(self, slot: int) -> int:
        return self._pool.page_size - _SLOT.size * (slot + 1)
