"""CRC32C (Castagnoli) checksums for pages and WAL records.

The durability layer checksums every page image (in the main file's
sidecar table and in every WAL record) so torn writes are *detected*
rather than silently read back as data.  CRC32C is the polynomial real
storage engines use for this job (iSCSI, ext4, Ceph, LevelDB); the
implementation here is the classic reflected table-driven one, kept in
pure Python so the reproduction stays dependency-free.
"""

from __future__ import annotations

__all__ = ["crc32c", "mask_crc", "unmask_crc"]

_POLY = 0x82F63B78  # reflected CRC-32C polynomial


def _make_table() -> list:
    table = []
    for i in range(256):
        crc = i
        for _ in range(8):
            crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
        table.append(crc)
    return table


_TABLE = _make_table()


def crc32c(data: bytes, crc: int = 0) -> int:
    """CRC-32C of ``data``, optionally continuing from a prior value."""
    crc ^= 0xFFFFFFFF
    table = _TABLE
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


# LevelDB-style masking: a CRC stored alongside the very bytes it covers
# is itself vulnerable to systematic corruption (e.g. a zeroed sector has
# CRC 0 over zeros).  Storing a masked CRC makes "data and checksum both
# wiped the same way" detectable.
_MASK_DELTA = 0xA282EAD8


def mask_crc(crc: int) -> int:
    return (((crc >> 15) | (crc << 17)) + _MASK_DELTA) & 0xFFFFFFFF


def unmask_crc(masked: int) -> int:
    rot = (masked - _MASK_DELTA) & 0xFFFFFFFF
    return ((rot >> 17) | (rot << 15)) & 0xFFFFFFFF
