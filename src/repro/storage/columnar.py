"""Columnar geometry storage: chunked coordinate columns with zone maps.

The slotted heap (:mod:`repro.storage.heap`) stays the write/update
format; this module adds a *derived read format* a table can be
compacted into — the same split Oracle's In-Memory column store makes
between the buffer-cache row store and its IMCUs.  A
:class:`ColumnarSegment` holds the table's rows as a sequence of
**column chunks**, each a few hundred rows wide:

* every geometry's vertices laid out as one contiguous little-endian
  float64 ``x,y`` plane (in :meth:`~repro.geometry.geometry.Geometry.
  vertices` order), so a whole chunk's coordinates decode with a single
  buffer read and per-row access is pointer arithmetic — the
  "zero per-row decode" path: :meth:`ColumnarChunk.coords_view` returns
  an ndarray **aliasing** the chunk buffer and is pre-seeded into each
  rebuilt geometry's ``_coords_array`` cache, so the numpy batch kernels
  never rebuild per-geometry arrays;
* ring structure as per-ring role codes + delta/varint-encoded lengths,
  and a dictionary for the (few distinct) SDO gtypes — the lightweight
  compression layer;
* per-row MBR planes (ready for :func:`repro.geometry.kernels.
  mbr_filter_indices`), the row's heap rowid (delta-encoded), and the
  non-geometry remainder of the row as codec bytes;
* a **zone map**: the union MBR of the chunk's rows plus the row count,
  kept in the in-memory chunk directory so the primary filter can skip
  a whole chunk — charging only the ``zone_skip`` cost kind and emitting
  a ``buffer.zone_prune`` trace instant — without touching any of its
  pages.

Chunk blobs live on ordinary buffer-pool pages, so WAL durability
(page-image records, checksums, replay) covers them exactly like heap
pages.  DML after compaction goes to the heap as always and is journaled
against the segment (``stale`` / ``dead`` / ``fresh`` rowid sets) so
reads merge chunk rows with heap truth; results are bit-identical
between formats on both kernel backends because rebuilt geometries pass
through the same normalisation the heap codec applies.
"""

from __future__ import annotations

import struct
from array import array
from bisect import bisect_right
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import StorageError
from repro.geometry import kernels
from repro.geometry.geometry import Geometry, GeometryType, Ring
from repro.geometry.mbr import MBR
from repro.obs import trace
from repro.storage.codec import (
    decode_f64_array,
    decode_row,
    encode_f64_array,
    encode_row,
    encode_u32_array,
    decode_u32_array,
)
from repro.storage.heap import RowId

try:  # numpy is optional everywhere in this repo; views degrade to tuples
    import numpy as np
except ImportError:  # pragma: no cover - exercised via REPRO_KERNELS=python
    np = None

__all__ = [
    "DEFAULT_CHUNK_ROWS",
    "ChunkMeta",
    "ColumnarChunk",
    "ColumnarSegment",
    "build_segment",
    "segment_snapshot",
    "segment_from_snapshot",
    "MISSING",
]

_MAGIC = 0x31435052  # "RPC1"
_VERSION = 1
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_NULL_CODE = 0xFF

#: default chunk width; small enough that zone maps stay selective on
#: spatially coherent load orders, large enough to amortise decode.
DEFAULT_CHUNK_ROWS = 256

#: sentinel distinguishing "row not resident in the segment" from a
#: resident row whose geometry column is NULL.
MISSING = object()

_GTYPE_OF = {
    GeometryType.POINT: 2001,
    GeometryType.LINESTRING: 2002,
    GeometryType.POLYGON: 2003,
    GeometryType.MULTIPOINT: 2005,
    GeometryType.MULTILINESTRING: 2006,
    GeometryType.MULTIPOLYGON: 2007,
}

# per-ring structure roles
_ROLE_POINT = 0
_ROLE_CHAIN = 1
_ROLE_EXTERIOR = 2
_ROLE_HOLE = 3

_UNSET = object()


# ----------------------------------------------------------------------
# varints (LEB128, unsigned) — the delta layer of the offset compression
# ----------------------------------------------------------------------
def _write_uv(out: bytearray, value: int) -> None:
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_uv(data: bytes, offset: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


@dataclass
class ChunkMeta:
    """Directory entry for one chunk: everything pruning needs, zero pages.

    ``zone`` is the union MBR of the chunk's non-NULL geometries as a
    ``(min_x, min_y, max_x, max_y)`` tuple, or ``None`` when the chunk
    holds only NULL geometries (nothing to match — always prunable).
    """

    pages: Tuple[int, ...]
    length: int
    row_count: int
    zone: Optional[Tuple[float, float, float, float]]
    min_rowid: RowId
    max_rowid: RowId

    def zone_intersects(self, box: Tuple[float, float, float, float], distance: float) -> bool:
        """Closed-interval gap test, identical to the kernels' MBR filter."""
        if self.zone is None:
            return False
        zx0, zy0, zx1, zy1 = self.zone
        lo_x, lo_y, hi_x, hi_y = box
        d = distance
        return not (
            lo_x - zx1 > d or zx0 - hi_x > d or lo_y - zy1 > d or zy0 - hi_y > d
        )


class ColumnarChunk:
    """One decoded chunk: struct-of-arrays over a few hundred rows."""

    __slots__ = (
        "row_count",
        "geom_col",
        "gtype_dict",
        "codes",
        "ring_off",
        "ring_roles",
        "ring_lens",
        "vert_off",
        "xy",
        "plane_rows",
        "planes",
        "rowids",
        "rest",
        "_geoms",
        "_row_pos",
        "_xy_np",
    )

    def __init__(self) -> None:
        self.row_count = 0
        self.geom_col = 0
        self.gtype_dict: List[int] = []
        self.codes = b""
        self.ring_off: List[int] = [0]
        self.ring_roles = b""
        self.ring_lens: List[int] = []
        self.vert_off: List[int] = [0]
        self.xy = array("d")
        self.plane_rows: List[int] = []
        self.planes: Tuple[array, array, array, array] = (
            array("d"),
            array("d"),
            array("d"),
            array("d"),
        )
        self.rowids: List[RowId] = []
        self.rest: List[bytes] = []
        self._geoms: List[Any] = []
        self._row_pos: Optional[Dict[RowId, int]] = None
        self._xy_np = None

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def position_of(self, rowid: RowId) -> Optional[int]:
        pos = self._row_pos
        if pos is None:
            pos = self._row_pos = {rid: i for i, rid in enumerate(self.rowids)}
        return pos.get(rowid)

    def mbr_planes(self) -> Tuple[array, array, array, array]:
        """Per-row MBR planes (non-NULL rows only; see ``plane_rows``)."""
        return self.planes

    def mbr(self, i: int) -> Optional[MBR]:
        code = self.codes[i]
        if code == _NULL_CODE:
            return None
        k = self._plane_index(i)
        x0s, y0s, x1s, y1s = self.planes
        return MBR(x0s[k], y0s[k], x1s[k], y1s[k])

    def _plane_index(self, i: int) -> int:
        # plane_rows is ascending; binary search the dense-plane slot.
        lo = bisect_right(self.plane_rows, i) - 1
        if lo < 0 or self.plane_rows[lo] != i:
            raise StorageError(f"row {i} has no geometry plane")
        return lo

    def coords_view(self, i: int):
        """``(n, 2)`` float64 ndarray **aliasing** row *i*'s vertex span.

        No copy: the returned array shares memory with the chunk's
        coordinate plane (``view.base`` reaches the chunk buffer), which
        is what lets batch kernels read chunk slices with zero per-row
        decode.  Requires numpy.
        """
        if np is None:
            raise StorageError("coords_view requires numpy")
        start, end = self.vert_off[i], self.vert_off[i + 1]
        return self._xy_full()[2 * start : 2 * end].reshape(end - start, 2)

    def _xy_full(self):
        full = self._xy_np
        if full is None:
            full = self._xy_np = np.frombuffer(self.xy, dtype=np.float64)
        return full

    def _view(self, start: int, n: int):
        if np is None:
            return None
        return self._xy_full()[2 * start : 2 * (start + n)].reshape(n, 2)

    def row(self, i: int) -> Tuple[Any, ...]:
        """The full row tuple (geometry spliced back at ``geom_col``)."""
        others = decode_row(self.rest[i])
        g = self.geom_col
        return others[:g] + (self.geometry(i),) + others[g:]

    def geometry(self, i: int) -> Optional[Geometry]:
        """Row *i*'s geometry (``None`` for NULL), built lazily and cached.

        Rebuilt geometries get their ``_coords_array`` / ring caches
        pre-seeded with chunk-aliasing views, and ``_mbr`` seeded from the
        MBR plane, so downstream kernels do no per-row decode at all.
        """
        cached = self._geoms[i]
        if cached is not _UNSET:
            return cached
        geom = self._build_geometry(i)
        self._geoms[i] = geom
        return geom

    # ------------------------------------------------------------------
    def _build_geometry(self, i: int) -> Optional[Geometry]:
        code = self.codes[i]
        if code == _NULL_CODE:
            return None
        gtype = self.gtype_dict[code]
        xy = self.xy
        pos = self.vert_off[i]
        rings: List[Tuple[int, int, int]] = []  # (role, start, length)
        for r in range(self.ring_off[i], self.ring_off[i + 1]):
            ln = self.ring_lens[r]
            rings.append((self.ring_roles[r], pos, ln))
            pos += ln

        def coords(start: int, ln: int) -> List[Tuple[float, float]]:
            return [(xy[2 * k], xy[2 * k + 1]) for k in range(start, start + ln)]

        parts: List[Geometry] = []
        aligned = True  # every ring kept its stored vertex order
        r = 0
        while r < len(rings):
            role, start, ln = rings[r]
            if role == _ROLE_POINT:
                part = Geometry.point(xy[2 * start], xy[2 * start + 1])
                self._seed(part, start, 1)
                r += 1
            elif role == _ROLE_CHAIN:
                part = Geometry.linestring(coords(start, ln))
                self._seed(part, start, ln)
                r += 1
            elif role == _ROLE_EXTERIOR:
                outer = Ring(coords(start, ln)).oriented(ccw=True)
                self._seed_ring(outer, start, ln)
                part_start, nverts = start, ln
                holes: List[Ring] = []
                r += 1
                while r < len(rings) and rings[r][0] == _ROLE_HOLE:
                    _role, hstart, hln = rings[r]
                    hole = Ring(coords(hstart, hln)).oriented(ccw=False)
                    self._seed_ring(hole, hstart, hln)
                    holes.append(hole)
                    nverts += hln
                    r += 1
                part = Geometry(
                    GeometryType.POLYGON, exterior=outer, holes=tuple(holes)
                )
                ring_views = [outer._coords_array] + [h._coords_array for h in holes]
                if all(v is not None for v in ring_views):
                    self._seed(part, part_start, nverts)
                else:
                    aligned = False
            else:  # pragma: no cover - encoder never emits a dangling hole
                raise StorageError(f"orphan hole ring in chunk row {i}")
            parts.append(part)

        if gtype == 2001 or gtype == 2002 or gtype == 2003:
            geom = parts[0]
        elif gtype == 2005:
            geom = Geometry(GeometryType.MULTIPOINT, parts=tuple(parts))
        elif gtype == 2006:
            geom = Geometry(GeometryType.MULTILINESTRING, parts=tuple(parts))
        elif gtype == 2007:
            geom = Geometry(GeometryType.MULTIPOLYGON, parts=tuple(parts))
        else:
            raise StorageError(f"unknown columnar gtype {gtype}")
        geom._mbr = self.mbr(i)
        geom._nvertices = self.vert_off[i + 1] - self.vert_off[i]
        if aligned and geom._coords_array is None and np is not None:
            geom._coords_array = self._view(
                self.vert_off[i], geom._nvertices
            )
        return geom

    def _seed(self, geom: Geometry, start: int, n: int) -> None:
        if np is not None:
            geom._coords_array = self._view(start, n)

    def _seed_ring(self, ring: Ring, start: int, n: int) -> None:
        # A reversed ring (degenerate orientation) no longer matches the
        # stored vertex order — leave its cache lazy rather than alias
        # the wrong direction.
        if np is not None and len(ring.coords) == n and (
            ring.coords[0] == (self.xy[2 * start], self.xy[2 * start + 1])
        ):
            ring._coords_array = self._view(start, n)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    @classmethod
    def decode(cls, blob: bytes) -> "ColumnarChunk":
        chunk = cls()
        (magic,) = _U32.unpack_from(blob, 0)
        if magic != _MAGIC:
            raise StorageError(f"bad columnar chunk magic 0x{magic:08x}")
        (version,) = _U16.unpack_from(blob, 4)
        if version != _VERSION:
            raise StorageError(f"unsupported columnar chunk version {version}")
        (chunk.geom_col,) = _U16.unpack_from(blob, 6)
        (n,) = _U32.unpack_from(blob, 8)
        chunk.row_count = n
        offset = 12
        n_dict = blob[offset]
        offset += 1
        chunk.gtype_dict, offset = decode_u32_array(blob, offset, n_dict)
        chunk.codes = blob[offset : offset + n]
        offset += n
        total_rings, offset = _read_uv(blob, offset)
        ring_off = [0]
        for _ in range(n):
            count, offset = _read_uv(blob, offset)
            ring_off.append(ring_off[-1] + count)
        chunk.ring_off = ring_off
        if ring_off[-1] != total_rings:
            raise StorageError("columnar chunk ring counts disagree")
        chunk.ring_roles = blob[offset : offset + total_rings]
        offset += total_rings
        lens: List[int] = []
        for _ in range(total_rings):
            ln, offset = _read_uv(blob, offset)
            lens.append(ln)
        chunk.ring_lens = lens
        total_verts, offset = _read_uv(blob, offset)
        vert_off = [0]
        ring_idx = 0
        for i in range(n):
            count = 0
            for r in range(ring_off[i], ring_off[i + 1]):
                count += lens[r]
            vert_off.append(vert_off[-1] + count)
        chunk.vert_off = vert_off
        if vert_off[-1] != total_verts:
            raise StorageError("columnar chunk vertex counts disagree")
        chunk.xy, offset = decode_f64_array(blob, offset, 2 * total_verts)
        chunk.plane_rows = [i for i in range(n) if chunk.codes[i] != _NULL_CODE]
        n_geom = len(chunk.plane_rows)
        planes = []
        for _ in range(4):
            plane, offset = decode_f64_array(blob, offset, n_geom)
            planes.append(plane)
        chunk.planes = tuple(planes)
        rowids: List[RowId] = []
        prev_page = 0
        for _ in range(n):
            dpage, offset = _read_uv(blob, offset)
            slot, offset = _read_uv(blob, offset)
            prev_page += dpage
            rowids.append(RowId(prev_page, slot))
        chunk.rowids = rowids
        rest: List[bytes] = []
        for _ in range(n):
            ln, offset = _read_uv(blob, offset)
            rest.append(blob[offset : offset + ln])
            offset += ln
        chunk.rest = rest
        if offset != len(blob):
            raise StorageError(
                f"trailing bytes after chunk decode: {len(blob) - offset}"
            )
        chunk._geoms = [_UNSET] * n
        return chunk


def encode_chunk(
    rows: Sequence[Tuple[Any, ...]],
    rowids: Sequence[RowId],
    geom_col: int,
) -> Tuple[bytes, Optional[Tuple[float, float, float, float]]]:
    """Encode one chunk's rows; returns ``(blob, zone_map)``."""
    n = len(rows)
    gtype_dict: List[int] = []
    dict_index: Dict[int, int] = {}
    codes = bytearray()
    ring_counts: List[int] = []
    ring_roles = bytearray()
    ring_lens: List[int] = []
    xy = array("d")
    planes = (array("d"), array("d"), array("d"), array("d"))
    rest: List[bytes] = []
    zone: Optional[Tuple[float, float, float, float]] = None

    for row, _rowid in zip(rows, rowids):
        geom = row[geom_col]
        if geom is None:
            codes.append(_NULL_CODE)
            ring_counts.append(0)
        elif isinstance(geom, Geometry):
            gtype = _GTYPE_OF.get(geom.geom_type)
            if gtype is None:
                raise StorageError(
                    f"cannot columnarise geometry type {geom.geom_type.name}"
                )
            code = dict_index.get(gtype)
            if code is None:
                if len(gtype_dict) >= _NULL_CODE:
                    raise StorageError("gtype dictionary overflow")
                code = dict_index[gtype] = len(gtype_dict)
                gtype_dict.append(gtype)
            codes.append(code)
            rings_before = len(ring_lens)
            for part in geom.simple_parts():
                if part.geom_type is GeometryType.POINT:
                    ring_roles.append(_ROLE_POINT)
                    ring_lens.append(1)
                    chains = (part.coords,)
                elif part.geom_type is GeometryType.LINESTRING:
                    ring_roles.append(_ROLE_CHAIN)
                    ring_lens.append(len(part.coords))
                    chains = (part.coords,)
                else:
                    assert part.exterior is not None
                    ring_roles.append(_ROLE_EXTERIOR)
                    ring_lens.append(len(part.exterior.coords))
                    chains = [part.exterior.coords]
                    for hole in part.holes:
                        ring_roles.append(_ROLE_HOLE)
                        ring_lens.append(len(hole.coords))
                        chains.append(hole.coords)
                for chain in chains:
                    for x, y in chain:
                        xy.append(x)
                        xy.append(y)
            ring_counts.append(len(ring_lens) - rings_before)
            box = geom.mbr
            planes[0].append(box.min_x)
            planes[1].append(box.min_y)
            planes[2].append(box.max_x)
            planes[3].append(box.max_y)
            if zone is None:
                zone = (box.min_x, box.min_y, box.max_x, box.max_y)
            else:
                zone = (
                    min(zone[0], box.min_x),
                    min(zone[1], box.min_y),
                    max(zone[2], box.max_x),
                    max(zone[3], box.max_y),
                )
        else:
            raise StorageError(
                f"column {geom_col} holds {type(geom).__name__}, not a geometry"
            )
        rest.append(encode_row(row[:geom_col] + row[geom_col + 1 :]))

    out = bytearray()
    out += _U32.pack(_MAGIC)
    out += _U16.pack(_VERSION)
    out += _U16.pack(geom_col)
    out += _U32.pack(n)
    out.append(len(gtype_dict))
    out += encode_u32_array(gtype_dict)
    out += codes
    _write_uv(out, len(ring_lens))
    for count in ring_counts:
        _write_uv(out, count)
    out += ring_roles
    for ln in ring_lens:
        _write_uv(out, ln)
    _write_uv(out, len(xy) // 2)
    out += encode_f64_array(xy)
    for plane in planes:
        out += encode_f64_array(plane)
    prev_page = 0
    for rowid in rowids:
        _write_uv(out, rowid.page - prev_page)
        _write_uv(out, rowid.slot)
        prev_page = rowid.page
    for blob in rest:
        _write_uv(out, len(blob))
        out += blob
    return bytes(out), zone


class ColumnarSegment:
    """A table's columnar read image: chunk directory + DML journal.

    The heap stays authoritative; this segment is a frozen copy of the
    rows as of the last compaction.  Later DML is journaled:

    * ``stale`` — updated rowids; read them from the heap, skip the chunk copy
    * ``dead`` — deleted rowids; skip entirely
    * ``fresh`` — rowids inserted after compaction; heap-only

    ``journal_empty`` therefore means the segment covers the table
    exactly.  Re-compacting folds the journal back in.
    """

    def __init__(
        self,
        pool,
        geom_col: int,
        chunks: Sequence[ChunkMeta],
        stale: Sequence[RowId] = (),
        dead: Sequence[RowId] = (),
        fresh: Sequence[RowId] = (),
        cache_chunks: int = 1024,
    ):
        self.pool = pool
        self.geom_col = geom_col
        self.chunks: List[ChunkMeta] = list(chunks)
        self.stale: Set[RowId] = set(stale)
        self.dead: Set[RowId] = set(dead)
        self.fresh: Set[RowId] = set(fresh)
        self.zone_prunes = 0
        self.chunk_loads = 0
        self._cache_chunks = cache_chunks
        self._loaded: "OrderedDict[int, ColumnarChunk]" = OrderedDict()
        self._starts: List[RowId] = [m.min_rowid for m in self.chunks]

    # ------------------------------------------------------------------
    # Shape / stats
    # ------------------------------------------------------------------
    @property
    def row_count(self) -> int:
        return sum(m.row_count for m in self.chunks)

    @property
    def page_count(self) -> int:
        return sum(len(m.pages) for m in self.chunks)

    @property
    def byte_size(self) -> int:
        return sum(m.length for m in self.chunks)

    def journal_empty(self) -> bool:
        return not (self.stale or self.dead or self.fresh)

    def journal_size(self) -> int:
        return len(self.stale) + len(self.dead) + len(self.fresh)

    def stats(self) -> Dict[str, int]:
        return {
            "chunks": len(self.chunks),
            "rows": self.row_count,
            "pages": self.page_count,
            "bytes": self.byte_size,
            "journal": self.journal_size(),
            "zone_prunes": self.zone_prunes,
            "chunk_loads": self.chunk_loads,
        }

    def drop_chunk_cache(self) -> None:
        """Release every decoded chunk (memory pressure / cold-cache runs).

        The next access to any chunk reloads it from the buffer pool and
        charges the usual ``physical_read`` per page.
        """
        self._loaded.clear()

    # ------------------------------------------------------------------
    # Journal maintenance (called from Table DML)
    # ------------------------------------------------------------------
    def note_insert(self, rowid: RowId) -> None:
        self.dead.discard(rowid)
        self.stale.discard(rowid)
        self.fresh.add(rowid)

    def note_update(self, rowid: RowId) -> None:
        if rowid not in self.fresh:
            self.stale.add(rowid)

    def note_delete(self, rowid: RowId) -> None:
        if rowid in self.fresh:
            self.fresh.discard(rowid)
        else:
            self.stale.discard(rowid)
            self.dead.add(rowid)

    def excluded(self) -> Set[RowId]:
        """Chunk rows that must *not* be served from the segment."""
        return self.stale | self.dead | self.fresh

    # ------------------------------------------------------------------
    # Chunk access
    # ------------------------------------------------------------------
    def chunk(self, idx: int, ctx=None) -> ColumnarChunk:
        """The decoded chunk (LRU-cached); a load charges ``physical_read``
        per chunk page and reads pages scan-resistantly with readahead."""
        chunk = self._loaded.get(idx)
        if chunk is not None:
            self._loaded.move_to_end(idx)
            return chunk
        meta = self.chunks[idx]
        self.pool.prefetch(meta.pages)
        buf = bytearray()
        for pid in meta.pages:
            buf += self.pool.get(pid, scan=True)
        chunk = ColumnarChunk.decode(bytes(buf[: meta.length]))
        self.chunk_loads += 1
        if ctx is not None:
            ctx.charge("physical_read", len(meta.pages))
        if trace.ENABLED:
            trace.instant(
                "columnar.chunk_load", chunk=idx, pages=len(meta.pages)
            )
        while len(self._loaded) >= self._cache_chunks:
            self._loaded.popitem(last=False)
        self._loaded[idx] = chunk
        return chunk

    def _chunk_index_of(self, rowid: RowId) -> Optional[int]:
        idx = bisect_right(self._starts, rowid) - 1
        if idx < 0:
            return None
        if rowid > self.chunks[idx].max_rowid:
            return None
        return idx

    def resident_position(self, rowid: RowId, ctx=None) -> Optional[Tuple[ColumnarChunk, int]]:
        """Locate ``rowid``'s chunk slot, or ``None`` if the segment must
        not serve it (journaled, or outside every chunk's rowid range)."""
        if rowid in self.fresh or rowid in self.stale or rowid in self.dead:
            return None
        idx = self._chunk_index_of(rowid)
        if idx is None:
            return None
        chunk = self.chunk(idx, ctx)
        pos = chunk.position_of(rowid)
        if pos is None:
            return None
        return chunk, pos

    def geometry_at(self, rowid: RowId, ctx=None):
        """Row's geometry served from its chunk, charging the columnar way:
        amortised ``physical_read`` on chunk load + one ``chunk_row_view``.
        Returns :data:`MISSING` when the segment cannot serve the row."""
        located = self.resident_position(rowid, ctx)
        if located is None:
            return MISSING
        chunk, pos = located
        if ctx is not None:
            ctx.charge("chunk_row_view")
        return chunk.geometry(pos)

    def row_at(self, rowid: RowId, ctx=None):
        located = self.resident_position(rowid, ctx)
        if located is None:
            return MISSING
        chunk, pos = located
        if ctx is not None:
            ctx.charge("chunk_row_view")
        return chunk.row(pos)

    def coords_view(self, rowid: RowId, ctx=None):
        """Zero-copy ``(n, 2)`` view of the row's vertices (numpy)."""
        located = self.resident_position(rowid, ctx)
        if located is None:
            return None
        chunk, pos = located
        return chunk.coords_view(pos)

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------
    def chunk_rows(self, ctx=None) -> Iterator[Tuple[RowId, Tuple[Any, ...]]]:
        """All servable chunk rows in rowid order (journal rows excluded)."""
        skip = self.excluded()
        for idx in range(len(self.chunks)):
            chunk = self.chunk(idx, ctx)
            for pos, rowid in enumerate(chunk.rowids):
                if rowid in skip:
                    continue
                yield rowid, chunk.row(pos)

    def window_candidates(
        self,
        box: Tuple[float, float, float, float],
        distance: float = 0.0,
        ctx=None,
    ) -> Iterator[Tuple[RowId, Geometry]]:
        """Primary filter over the segment: consult zone maps, skip whole
        chunks without reading them, batch-MBR-filter the survivors.

        Yields ``(rowid, geometry)`` for chunk-resident rows whose MBR
        passes the window / within-distance test.  Journaled rows are the
        caller's business (they live in the heap).
        """
        skip = self.excluded()
        for idx, meta in enumerate(self.chunks):
            if not meta.zone_intersects(box, distance):
                self.zone_prunes += 1
                if ctx is not None:
                    ctx.charge("zone_skip")
                if trace.ENABLED:
                    trace.instant(
                        "buffer.zone_prune",
                        chunk=idx,
                        rows=meta.row_count,
                        pages=len(meta.pages),
                    )
                continue
            chunk = self.chunk(idx, ctx)
            if ctx is not None:
                ctx.charge("mbr_test", len(chunk.plane_rows))
            keep = kernels.mbr_filter_indices(chunk.mbr_planes(), box, distance)
            for k in keep:
                pos = chunk.plane_rows[k]
                rowid = chunk.rowids[pos]
                if rowid in skip:
                    continue
                if ctx is not None:
                    ctx.charge("chunk_row_view")
                yield rowid, chunk.geometry(pos)

    def all_zones_miss(
        self,
        box: Tuple[float, float, float, float],
        distance: float = 0.0,
        ctx=None,
    ) -> bool:
        """True when no chunk's zone map can intersect the query window.

        Sound as a query short-circuit only when ``journal_empty()`` —
        journaled rows have no zone coverage.  Charges one ``zone_skip``
        per consulted chunk either way.
        """
        hit = False
        for idx, meta in enumerate(self.chunks):
            if ctx is not None:
                ctx.charge("zone_skip")
            if meta.zone_intersects(box, distance):
                hit = True
                break
        if not hit and trace.ENABLED:
            trace.instant("buffer.zone_prune", chunk=-1, rows=self.row_count)
        return not hit

    # ------------------------------------------------------------------
    # Pickling (process-pool workers ship tables; caches stay local)
    # ------------------------------------------------------------------
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_loaded"] = OrderedDict()
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)


def build_segment(
    heap,
    pool,
    geom_col: int,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> ColumnarSegment:
    """Compact a heap's current rows into a fresh columnar segment.

    Scans the heap in rowid order, packs ``chunk_rows`` rows per chunk,
    writes each chunk blob across freshly allocated buffer-pool pages
    (write-back through the pool, so WAL page-image durability applies),
    and returns the attached-ready segment with an empty journal.
    """
    if chunk_rows < 1:
        raise StorageError(f"chunk_rows must be >= 1, got {chunk_rows}")
    metas: List[ChunkMeta] = []
    rows: List[Tuple[Any, ...]] = []
    rowids: List[RowId] = []

    def flush() -> None:
        if not rows:
            return
        blob, zone = encode_chunk(rows, rowids, geom_col)
        page_size = pool.page_size
        pages = []
        for off in range(0, len(blob), page_size):
            piece = blob[off : off + page_size]
            if len(piece) < page_size:
                piece = piece + b"\x00" * (page_size - len(piece))
            pid = pool.allocate()
            pool.put(pid, piece)
            pages.append(pid)
        metas.append(
            ChunkMeta(
                pages=tuple(pages),
                length=len(blob),
                row_count=len(rows),
                zone=zone,
                min_rowid=rowids[0],
                max_rowid=rowids[-1],
            )
        )
        rows.clear()
        rowids.clear()

    for rowid, data in heap.scan():
        rows.append(decode_row(data))
        rowids.append(rowid)
        if len(rows) >= chunk_rows:
            flush()
    flush()
    return ColumnarSegment(pool, geom_col, metas)


# ----------------------------------------------------------------------
# Snapshot round-trip (the database meta snapshot persists the directory;
# chunk payloads are ordinary pages and ride WAL/checkpoint as-is)
# ----------------------------------------------------------------------
def _pack_rowids(rowids) -> Tuple[int, ...]:
    flat: List[int] = []
    for rowid in sorted(rowids):
        flat.append(rowid.page)
        flat.append(rowid.slot)
    return tuple(flat)


def _unpack_rowids(flat: Sequence[int]) -> List[RowId]:
    return [RowId(flat[i], flat[i + 1]) for i in range(0, len(flat), 2)]


def segment_snapshot(seg: ColumnarSegment) -> Tuple:
    """A codec-encodable tuple capturing the directory + journal."""
    chunks = tuple(
        (
            m.pages,
            m.length,
            m.row_count,
            m.zone,
            m.min_rowid.page,
            m.min_rowid.slot,
            m.max_rowid.page,
            m.max_rowid.slot,
        )
        for m in seg.chunks
    )
    return (
        seg.geom_col,
        chunks,
        _pack_rowids(seg.stale),
        _pack_rowids(seg.dead),
        _pack_rowids(seg.fresh),
    )


def segment_from_snapshot(pool, snap: Sequence) -> ColumnarSegment:
    geom_col, chunks, stale, dead, fresh = snap
    metas = [
        ChunkMeta(
            pages=tuple(pages),
            length=length,
            row_count=row_count,
            zone=tuple(zone) if zone is not None else None,
            min_rowid=RowId(minp, mins),
            max_rowid=RowId(maxp, maxs),
        )
        for pages, length, row_count, zone, minp, mins, maxp, maxs in chunks
    ]
    return ColumnarSegment(
        pool,
        geom_col,
        metas,
        stale=_unpack_rowids(stale),
        dead=_unpack_rowids(dead),
        fresh=_unpack_rowids(fresh),
    )
