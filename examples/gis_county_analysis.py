"""GIS scenario: neighbourhood analysis on a county layer.

Run with::

    python examples/gis_county_analysis.py

Loads a synthetic county tessellation (the Table 1 stand-in), builds both
index kinds, and answers classic GIS questions: which counties border a
given one, which fall inside a study window, which lie within a buffer
distance — comparing the nested-loop and table-function join plans the
paper contrasts.
"""

from __future__ import annotations

from repro import Database, Geometry
from repro.datasets import counties, load_geometries

N_COUNTIES = 300


def main() -> None:
    db = Database()
    layer = counties(N_COUNTIES, seed=42, extent=(0.0, 0.0, 18.0, 8.0))
    load_geometries(db, "counties", layer)
    print(f"loaded {N_COUNTIES} counties "
          f"({sum(g.num_vertices for g in layer)} vertices total)")

    _ridx, r_report = db.create_spatial_index(
        "counties_ridx", "counties", "geom", kind="RTREE", parallel=2
    )
    qidx, q_report = db.create_spatial_index(
        "counties_qidx", "counties", "geom", kind="QUADTREE",
        tiling_level=7, parallel=2,
    )
    print(f"R-tree built in {r_report.makespan_seconds:.2f}s simulated, "
          f"quadtree ({qidx.tile_count()} tiles) in "
          f"{q_report.makespan_seconds:.2f}s simulated")

    # ------------------------------------------------------------------
    # Who borders county 42?  (point query through the R-tree operator)
    # ------------------------------------------------------------------
    target_rowid, target_row = next(
        (rid, row) for rid, row in db.table("counties").scan() if row[0] == 42
    )
    target_geom: Geometry = target_row[1]
    neighbours = [
        db.table("counties").fetch(rid)[0]
        for rid in db.select_rowids(
            "counties", "geom", "SDO_RELATE", (target_geom, "ANYINTERACT")
        )
        if rid != target_rowid
    ]
    print(f"county 42 borders {len(neighbours)} counties: {sorted(neighbours)}")

    # ------------------------------------------------------------------
    # Study window: R-tree and quadtree must agree.
    # ------------------------------------------------------------------
    window = Geometry.rectangle(4.0, 2.0, 9.0, 5.0)
    r_hits = sorted(
        db.spatial_index("counties_ridx").fetch("SDO_RELATE", (window, "ANYINTERACT"))
    )
    q_hits = sorted(
        db.spatial_index("counties_qidx").fetch("SDO_RELATE", (window, "ANYINTERACT"))
    )
    assert r_hits == q_hits
    print(f"{len(r_hits)} counties intersect the study window "
          f"(R-tree and quadtree agree)")

    # ------------------------------------------------------------------
    # Self-join: adjacency graph of the whole layer, three ways.
    # ------------------------------------------------------------------
    serial = db.spatial_join("counties", "geom", "counties", "geom")
    parallel = db.spatial_join("counties", "geom", "counties", "geom", parallel=4)
    nested = db.nested_loop_join("counties", "geom", "counties", "geom")
    assert sorted(serial.pairs) == sorted(parallel.pairs) == sorted(nested.pairs)
    adjacency = len(serial.pairs) - N_COUNTIES  # drop self pairs
    print(f"adjacency pairs: {adjacency}")
    print(f"  nested loop          {nested.makespan_seconds:7.2f}s simulated")
    print(f"  spatial_join (1 cpu) {serial.makespan_seconds:7.2f}s simulated")
    print(f"  spatial_join (4 cpu) {parallel.makespan_seconds:7.2f}s simulated "
          f"(descent levels {parallel.descent_levels})")

    # ------------------------------------------------------------------
    # Buffer analysis: counties within 0.5 degrees of a river.
    # ------------------------------------------------------------------
    river = Geometry.linestring([(0.0, 1.0), (6.0, 4.0), (12.0, 3.0), (18.0, 7.0)])
    within = list(
        db.spatial_index("counties_ridx").fetch("SDO_WITHIN_DISTANCE", (river, 0.5))
    )
    print(f"{len(within)} counties lie within 0.5 degrees of the river")


if __name__ == "__main__":
    main()
