"""Quickstart: create tables, load geometry, index, query and join.

Run with::

    python examples/quickstart.py

Walks the paper's core workflow end to end on a toy city/river layer:
spatial index creation, window queries through the extensible-indexing
operators, and the spatial join in both its API and SQL forms.
"""

from __future__ import annotations

from repro import Database, Geometry


def main() -> None:
    db = Database()

    # ------------------------------------------------------------------
    # 1. Tables: plain DDL through the SQL front-end.
    # ------------------------------------------------------------------
    db.sql("create table cities (id number, name varchar, geom sdo_geometry)")
    db.sql("create table rivers (id number, name varchar, geom sdo_geometry)")

    cities = [
        (1, "Aton", "POLYGON ((1 1, 4 1, 4 4, 1 4, 1 1))"),
        (2, "Bexley", "POLYGON ((6 2, 9 2, 9 5, 6 5, 6 2))"),
        (3, "Corwen", "POLYGON ((12 8, 15 8, 15 11, 12 11, 12 8))"),
        (4, "Dunmore", "POLYGON ((3 9, 6 9, 6 12, 3 12, 3 9))"),
    ]
    rivers = [
        (1, "Green", "LINESTRING (0 0, 5 5, 10 4, 16 9)"),
        (2, "Stone", "LINESTRING (2 14, 4 10, 5 6)"),
    ]
    for cid, name, wkt in cities:
        db.sql(f"insert into cities values ({cid}, '{name}', sdo_geometry('{wkt}'))")
    for rid, name, wkt in rivers:
        db.sql(f"insert into rivers values ({rid}, '{name}', sdo_geometry('{wkt}'))")

    # ------------------------------------------------------------------
    # 2. Spatial indexes: the extensible-indexing DDL of the paper.
    # ------------------------------------------------------------------
    print(db.sql(
        "create index cities_sidx on cities(geom) "
        "indextype is spatial_index parameters ('kind=RTREE fanout=8')"
    ).message)
    print(db.sql(
        "create index rivers_sidx on rivers(geom) "
        "indextype is spatial_index parameters ('kind=RTREE fanout=8')"
    ).message)

    # ------------------------------------------------------------------
    # 3. Window query through the sdo_relate operator.
    # ------------------------------------------------------------------
    result = db.sql(
        "select name from cities where sdo_relate(geom, "
        "sdo_geometry('POLYGON ((0 0, 10 0, 10 6, 0 6, 0 0))'), "
        "'ANYINTERACT') = 'TRUE'"
    )
    print("cities in the south-west window:", [r[0] for r in result.rows])

    # ------------------------------------------------------------------
    # 4. The paper's spatial join, exactly as §4 writes it.
    # ------------------------------------------------------------------
    result = db.sql(
        "select a.name, b.name from cities a, rivers b "
        "where (a.rowid, b.rowid) in "
        "(select rid1, rid2 from TABLE(spatial_join("
        "'cities', 'geom', 'rivers', 'geom', 'intersect')))"
    )
    print("city/river intersections:")
    for city, river in sorted(result.rows):
        print(f"  {city} <- {river}")

    # ------------------------------------------------------------------
    # 5. Same join through the Python API, with execution detail.
    # ------------------------------------------------------------------
    join = db.spatial_join("cities", "geom", "rivers", "geom")
    print(f"API join: {len(join.pairs)} pairs, "
          f"{join.makespan_seconds:.3f}s simulated")

    nested = db.nested_loop_join("cities", "geom", "rivers", "geom")
    assert sorted(nested.pairs) == sorted(join.pairs)
    print(f"nested-loop baseline: {nested.makespan_seconds:.3f}s simulated "
          f"(same result, pre-9i plan)")


if __name__ == "__main__":
    main()
