"""Data-pipeline scenario: ingest GeoJSON, analyze, plan, back up, restore.

Run with::

    python examples/data_pipeline.py

Shows the operational surface around the core engine: GeoJSON ingest,
optimizer statistics + EXPLAIN, the logical export/import utility, and a
consistency check that the restored database answers identically.
"""

from __future__ import annotations

import os
import tempfile

from repro import Database
from repro.datasets import counties
from repro.engine.dump import export_database, import_database
from repro.geometry import from_geojson, to_geojson_str


def main() -> None:
    db = Database()
    db.sql("create table parcels (id number, geom sdo_geometry)")

    # ------------------------------------------------------------------
    # 1. Ingest: features arrive as GeoJSON (as they would from a web API).
    # ------------------------------------------------------------------
    layer = counties(150, seed=77, extent=(0.0, 0.0, 12.0, 6.0))
    table = db.table("parcels")
    for i, geom in enumerate(layer):
        feature_text = to_geojson_str(geom)  # the wire format...
        table.insert((i, from_geojson(__import__("json").loads(feature_text))))
    print(f"ingested {table.row_count} parcels from GeoJSON features")

    db.sql(
        "create index parcels_sidx on parcels(geom) "
        "indextype is spatial_index parameters ('kind=RTREE') parallel 2"
    )

    # ------------------------------------------------------------------
    # 2. Statistics and plans.
    # ------------------------------------------------------------------
    print(db.sql("analyze table parcels compute statistics").message)
    plan = db.sql(
        "explain select id from parcels where sdo_relate(geom, "
        "sdo_geometry('POLYGON ((2 2, 8 2, 8 5, 2 5, 2 2))'), "
        "'ANYINTERACT') = 'TRUE'"
    )
    print("query plan:")
    for (line,) in plan.rows:
        print(f"  {line}")

    window_count = db.sql(
        "select count(*) from parcels where sdo_relate(geom, "
        "sdo_geometry('POLYGON ((2 2, 8 2, 8 5, 2 5, 2 2))'), "
        "'ANYINTERACT') = 'TRUE'"
    ).scalar()
    print(f"actual rows in window: {window_count}")

    # ------------------------------------------------------------------
    # 3. Logical backup and restore.
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        dump_path = os.path.join(tmp, "parcels.dmp")
        stats = export_database(db, dump_path)
        size_kb = os.path.getsize(dump_path) / 1024
        print(f"exported {stats['rows']} rows + {stats['indexes']} index(es) "
              f"({size_kb:.0f} KiB)")

        restored = import_database(dump_path)
        original = db.sql(
            "select count(*) from TABLE(spatial_join("
            "'parcels','geom','parcels','geom','intersect'))"
        ).scalar()
        recovered = restored.sql(
            "select count(*) from TABLE(spatial_join("
            "'parcels','geom','parcels','geom','intersect'))"
        ).scalar()
        assert original == recovered
        print(f"restored database reproduces the self-join: "
              f"{recovered} pairs (matches original)")


if __name__ == "__main__":
    main()
