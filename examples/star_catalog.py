"""Astronomy scenario: cross-matching star catalogues (the Table 2 workload).

Run with::

    python examples/star_catalog.py

Two epochs of a clustered star catalogue are cross-matched with a
within-distance spatial join — the observational astronomy task behind the
paper's 250K "star locations/clusters" dataset.  Shows the parallel
subtree-decomposed join and the pipelined (streaming) consumption of the
table function.
"""

from __future__ import annotations

import random

from repro import Database
from repro.datasets import load_geometries, stars
from repro.engine.parallel import WorkerContext
from repro.engine.table_function import pipeline
from repro.core.secondary_filter import JoinPredicate
from repro.core.spatial_join import SpatialJoinFunction

N_STARS = 2000
MATCH_RADIUS = 0.15  # degrees


def jitter_epoch(geoms, seed: int):
    """Second-epoch positions: each star nudged by measurement noise."""
    from repro.geometry.geometry import Geometry

    rng = random.Random(seed)
    out = []
    for geom in geoms:
        dx = rng.gauss(0, 0.02)
        dy = rng.gauss(0, 0.02)
        ring = [(x + dx, y + dy) for x, y in geom.exterior.coords]
        out.append(Geometry.polygon(ring))
    return out


def main() -> None:
    epoch1 = stars(N_STARS, seed=1234)
    epoch2 = jitter_epoch(epoch1, seed=99)

    db = Database()
    load_geometries(db, "epoch1", epoch1)
    load_geometries(db, "epoch2", epoch2)
    db.create_spatial_index("e1_sidx", "epoch1", "geom", kind="RTREE", parallel=2)
    db.create_spatial_index("e2_sidx", "epoch2", "geom", kind="RTREE", parallel=2)
    print(f"indexed two epochs of {N_STARS} stars")

    # ------------------------------------------------------------------
    # Cross-match: stars within MATCH_RADIUS across epochs.
    # ------------------------------------------------------------------
    serial = db.spatial_join(
        "epoch1", "geom", "epoch2", "geom", distance=MATCH_RADIUS
    )
    parallel = db.spatial_join(
        "epoch1", "geom", "epoch2", "geom", distance=MATCH_RADIUS, parallel=2
    )
    assert sorted(serial.pairs) == sorted(parallel.pairs)
    print(f"cross-match: {len(serial.pairs)} candidate identifications")
    print(f"  1 processor: {serial.makespan_seconds:6.2f}s simulated")
    print(f"  2 processors:{parallel.makespan_seconds:6.2f}s simulated "
          f"({serial.makespan_seconds / parallel.makespan_seconds:.2f}x)")

    # ------------------------------------------------------------------
    # Pipelined consumption: stream matches without materialising them.
    # The start/fetch/close protocol surfaces rows as they are produced —
    # here we stop after the first 50 matches and close early.
    # ------------------------------------------------------------------
    fn = SpatialJoinFunction(
        db.table("epoch1"), "geom", db.spatial_index("e1_sidx").tree,
        db.table("epoch2"), "geom", db.spatial_index("e2_sidx").tree,
        predicate=JoinPredicate(distance=MATCH_RADIUS),
    )
    stream = pipeline(fn, WorkerContext(0), fetch_size=16)
    first_matches = []
    for pair in stream:
        first_matches.append(pair)
        if len(first_matches) >= 50:
            stream.close()  # abandons the pipeline; close() still runs
            break
    print(f"streamed the first {len(first_matches)} matches "
          f"({fn.stats.fetch_calls} fetch calls) and closed early")

    # ------------------------------------------------------------------
    # How many stars moved out of identification range?
    # ------------------------------------------------------------------
    matched_epoch1 = {a for a, _b in serial.pairs}
    all_epoch1 = {rid for rid, _row in db.table("epoch1").scan()}
    lost = len(all_epoch1 - matched_epoch1)
    print(f"{lost} epoch-1 stars have no epoch-2 counterpart within "
          f"{MATCH_RADIUS} degrees")


if __name__ == "__main__":
    main()
