"""Index-creation scenario: parallel builds on complex polygons (Table 3).

Run with::

    python examples/parallel_index_build.py

Builds quadtree and R-tree indexes on a block-group-style layer at degrees
1/2/4 and prints the scaling table, the per-worker balance, and where the
time goes (the cost-model breakdown) — demonstrating the paper's §5
finding that tessellation dominates quadtree creation and parallelises
well.
"""

from __future__ import annotations

from repro import Database
from repro.datasets import blockgroups, load_geometries
from repro.engine.parallel import make_executor
from repro.geometry.mbr import MBR
from repro.core.index_build import create_quadtree_parallel, create_rtree_parallel
from repro.index.quadtree.quadtree import QuadtreeIndex
from repro.index.rtree.spatial_index import RTreeIndex

N_POLYGONS = 800


def main() -> None:
    db = Database()
    layer = blockgroups(N_POLYGONS, seed=7)
    load_geometries(db, "blockgroups", layer)
    vertices = sum(g.num_vertices for g in layer)
    print(f"loaded {N_POLYGONS} complex polygons ({vertices} vertices, "
          f"max {max(g.num_vertices for g in layer)} in one polygon)")

    print(f"\n{'procs':>5} | {'quadtree (sim s)':>17} | {'speedup':>7} | "
          f"{'rtree (sim s)':>14} | {'speedup':>7}")
    q_base = r_base = None
    for degree in (1, 2, 4):
        q_index = QuadtreeIndex(
            f"bg_q{degree}", db.table("blockgroups"), "geom",
            domain=MBR(0, 0, 58.0, 58.0), tiling_level=9,
        )
        q_report = create_quadtree_parallel(
            q_index, make_executor(degree, db.cost_model)
        )
        r_index = RTreeIndex(f"bg_r{degree}", db.table("blockgroups"), "geom")
        r_report = create_rtree_parallel(
            r_index, make_executor(degree, db.cost_model)
        )
        q_base = q_base or q_report.makespan_seconds
        r_base = r_base or r_report.makespan_seconds
        print(f"{degree:>5} | {q_report.makespan_seconds:>17.2f} | "
              f"{q_base / q_report.makespan_seconds:>6.2f}x | "
              f"{r_report.makespan_seconds:>14.2f} | "
              f"{r_base / r_report.makespan_seconds:>6.2f}x")
        if degree == 4:
            last_q, last_r = q_report, r_report

    # ------------------------------------------------------------------
    # Where does the time go?  (degree-4 quadtree build)
    # ------------------------------------------------------------------
    print("\ndegree-4 quadtree build cost breakdown (top work kinds):")
    meter = last_q.run.combined_meter()
    for kind, count, seconds in list(meter.breakdown())[:5]:
        print(f"  {kind:<24} x{count:>12,.0f}  {seconds:8.2f}s")
    print(f"  serial B-tree stitch tail          {last_q.serial_tail_seconds:8.2f}s")
    print(f"per-worker times: "
          f"{['%.2f' % t for t in last_q.run.worker_seconds]} "
          f"(imbalance {last_q.run.imbalance:.2f})")

    print(f"\nquadtree holds {last_q.tiles_created} tiles for "
          f"{N_POLYGONS} polygons; R-tree merge tail "
          f"{last_r.serial_tail_seconds:.3f}s")


if __name__ == "__main__":
    main()
